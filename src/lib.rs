//! Meta-crate for the LyriC reproduction workspace.
//!
//! Re-exports the user-facing crates so examples and integration tests can
//! depend on a single package. See the individual crates for the real
//! APIs:
//!
//! * [`lyric`] — the LyriC language (parser + evaluator) and the paper's
//!   running example;
//! * [`lyric_constraint`] — the linear-constraint engine (§3.1);
//! * [`lyric_oodb`] — the object-oriented data model (§2/§3.2);
//! * [`lyric_simplex`] — exact LP;
//! * [`lyric_flatrel`] — flat constraint relations (§5);
//! * [`lyric_arith`] — exact arithmetic.

pub use lyric;
pub use lyric_arith;
pub use lyric_constraint;
pub use lyric_flatrel;
pub use lyric_oodb;
pub use lyric_simplex;
