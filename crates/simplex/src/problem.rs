//! LP problem description and solution types.

use crate::tableau::Tableau;
use lyric_arith::{EpsRational, Rational};
use std::fmt;

/// Relational operator of a normalized LP constraint row.
///
/// `Ge`/`Gt` do not appear here: callers flip them to `Le`/`Lt` by negating
/// both sides (the constraint-engine layer does this during atom
/// normalization). Disequations (`≠`) are handled above the LP layer by the
/// convexity argument described in `lyric-constraint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relop {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ < b` (encoded internally as `≤ b − ε`)
    Lt,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

impl fmt::Display for Relop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relop::Le => write!(f, "<="),
            Relop::Lt => write!(f, "<"),
            Relop::Eq => write!(f, "="),
        }
    }
}

/// A single linear constraint `Σ coeffs[i]·xᵢ relop rhs` over the problem's
/// variables. `coeffs.len()` always equals the problem's variable count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Coefficient per problem variable (dense; length = variable count).
    pub coeffs: Vec<Rational>,
    /// The relational operator.
    pub relop: Relop,
    /// The right-hand-side constant.
    pub rhs: Rational,
}

impl Constraint {
    /// Margin `rhs − Σ coeffs·point` as an ε-polynomial, for a point whose
    /// coordinates may carry ε components.
    fn margin(&self, point: &[EpsRational]) -> EpsRational {
        let mut lhs = EpsRational::zero();
        for (c, x) in self.coeffs.iter().zip(point) {
            lhs += &x.scale(c);
        }
        EpsRational::from_rational(self.rhs.clone()) - lhs
    }

    /// Does a fully concrete point satisfy this constraint?
    pub fn satisfied_by(&self, point: &[Rational]) -> bool {
        let mut lhs = Rational::zero();
        for (c, x) in self.coeffs.iter().zip(point) {
            lhs += &(c * x);
        }
        match self.relop {
            Relop::Le => lhs <= self.rhs,
            Relop::Lt => lhs < self.rhs,
            Relop::Eq => lhs == self.rhs,
        }
    }
}

/// A linear program over `num_vars` **free** (unrestricted-sign) variables.
///
/// LyriC constraint variables range over all of ℝ, so the solver does not
/// assume non-negativity; internally each variable is split into a
/// difference of two non-negative ones.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    num_vars: usize,
    constraints: Vec<Constraint>,
}

/// Result of solving an [`LpProblem`].
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// The constraint system has no solution.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// A finite optimum (possibly an unattained supremum/infimum).
    Optimal(LpOptimum),
}

impl LpOutcome {
    /// Convenience accessor for tests and callers that expect an optimum.
    pub fn optimal(self) -> Option<LpOptimum> {
        match self {
            LpOutcome::Optimal(o) => Some(o),
            _ => None,
        }
    }
}

/// An optimal LP solution in ε-extended arithmetic.
#[derive(Debug, Clone)]
pub struct LpOptimum {
    /// Optimal objective value `p + q·ε`. For maximization `p` is the true
    /// supremum of the objective over the (possibly topologically open)
    /// feasible set and `q ≤ 0`; symmetrically for minimization.
    pub value: EpsRational,
    /// The optimal point, coordinates possibly carrying ε components.
    pub point: Vec<EpsRational>,
}

impl LpOptimum {
    /// The supremum (for `maximize`) / infimum (for `minimize`) of the
    /// objective as an ordinary rational.
    pub fn supremum(&self) -> &Rational {
        &self.value.real
    }

    /// Whether the bound is attained by an actual feasible point. `false`
    /// exactly when strict inequalities make the optimum an open bound.
    pub fn attained(&self) -> bool {
        self.value.is_exact()
    }

    /// A concrete rational feasible point witnessing feasibility (and, when
    /// [`attained`](Self::attained), optimality). Chooses a small positive
    /// value for ε that keeps every constraint of `problem` satisfied.
    pub fn concrete_point(&self, problem: &LpProblem) -> Vec<Rational> {
        let eps = problem.admissible_epsilon(&self.point);
        self.point.iter().map(|x| x.evaluate_at(&eps)).collect()
    }
}

impl LpProblem {
    /// A problem over `num_vars` free variables and no constraints yet.
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constraints added so far, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Add `Σ coeffs·x relop rhs`. Panics if `coeffs.len() != num_vars`.
    pub fn push(&mut self, coeffs: Vec<Rational>, relop: Relop, rhs: Rational) {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "constraint arity does not match problem variable count"
        );
        self.constraints.push(Constraint { coeffs, relop, rhs });
    }

    /// Phase-1 feasibility test. Unlike [`find_point`](Self::find_point)
    /// this never materializes the witness, so a warm solve on small
    /// coefficients stays entirely inside recycled arena buffers (the
    /// `zero_alloc_pivot` test pins this).
    pub fn is_feasible(&self) -> bool {
        let _span = lyric_engine::span(
            lyric_engine::SpanKind::LpSolve,
            || format!("feasibility ({} constraints)", self.constraints.len()),
            None,
        );
        lyric_engine::tally(|s| s.lp_runs += 1);
        Tableau::build(self).phase1()
    }

    /// A feasible point in ε-extended coordinates, if one exists.
    pub fn find_point(&self) -> Option<Vec<EpsRational>> {
        let _span = lyric_engine::span(
            lyric_engine::SpanKind::LpSolve,
            || format!("feasibility ({} constraints)", self.constraints.len()),
            None,
        );
        lyric_engine::tally(|s| s.lp_runs += 1);
        let mut t = Tableau::build(self);
        if !t.phase1() {
            return None;
        }
        Some(t.extract_point(self.num_vars))
    }

    /// A fully concrete rational feasible point, if one exists.
    pub fn find_concrete_point(&self) -> Option<Vec<Rational>> {
        let point = self.find_point()?;
        let eps = self.admissible_epsilon(&point);
        Some(point.iter().map(|x| x.evaluate_at(&eps)).collect())
    }

    /// Maximize `Σ objective·x` subject to the constraints.
    pub fn maximize(&self, objective: &[Rational]) -> LpOutcome {
        self.optimize(objective, true)
    }

    /// Minimize `Σ objective·x` subject to the constraints.
    pub fn minimize(&self, objective: &[Rational]) -> LpOutcome {
        self.optimize(objective, false)
    }

    fn optimize(&self, objective: &[Rational], maximize: bool) -> LpOutcome {
        let _span = lyric_engine::span(
            lyric_engine::SpanKind::LpSolve,
            || {
                format!(
                    "{} ({} constraints)",
                    if maximize { "maximize" } else { "minimize" },
                    self.constraints.len()
                )
            },
            None,
        );
        lyric_engine::tally(|s| s.lp_runs += 1);
        assert_eq!(
            objective.len(),
            self.num_vars,
            "objective arity does not match problem variable count"
        );
        let mut t = Tableau::build(self);
        if !t.phase1() {
            return LpOutcome::Infeasible;
        }
        // Internally minimize: negate the objective for maximization.
        let costs: Vec<Rational> = if maximize {
            objective.iter().map(|c| -c).collect()
        } else {
            objective.to_vec()
        };
        if !t.phase2(&costs) {
            return LpOutcome::Unbounded;
        }
        let point = t.extract_point(self.num_vars);
        let mut value = EpsRational::zero();
        for (c, x) in objective.iter().zip(&point) {
            value += &x.scale(c);
        }
        LpOutcome::Optimal(LpOptimum { value, point })
    }

    /// Largest step `ε₀ ∈ (0, 1]` such that replacing ε by ε₀ in `point`
    /// keeps every constraint satisfied. Assumes `point` is symbolically
    /// feasible (margins lexicographically correct), which every point
    /// produced by the solver is.
    fn admissible_epsilon(&self, point: &[EpsRational]) -> Rational {
        let mut eps = Rational::one();
        let half = Rational::from_pair(1, 2);
        for c in &self.constraints {
            let m = c.margin(point);
            match c.relop {
                // Equality margins are identically zero for solver points;
                // nothing to bound.
                Relop::Eq => {}
                Relop::Le | Relop::Lt => {
                    // Need m(ε₀) ≥ 0 (or > 0). Symbolic feasibility gives
                    // m ⪰ 0 lexicographically; the only risk is
                    // real > 0 with a negative ε-slope.
                    if m.real.is_positive() && m.inf.is_negative() {
                        let bound = &(&m.real / &m.inf.abs()) * &half;
                        if bound < eps {
                            eps = bound;
                        }
                    }
                }
            }
        }
        eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rational {
        Rational::from_int(v)
    }

    fn rp(n: i64, d: i64) -> Rational {
        Rational::from_pair(n, d)
    }

    #[test]
    fn trivial_feasible_empty() {
        let lp = LpProblem::new(2);
        assert!(lp.is_feasible());
    }

    #[test]
    fn basic_maximization() {
        // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x >= 0, y >= 0 → 12 at (4,0)
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(1), r(1)], Relop::Le, r(4));
        lp.push(vec![r(1), r(3)], Relop::Le, r(6));
        lp.push(vec![r(-1), r(0)], Relop::Le, r(0));
        lp.push(vec![r(0), r(-1)], Relop::Le, r(0));
        let opt = lp.maximize(&[r(3), r(2)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &r(12));
        assert!(opt.attained());
        let p = opt.concrete_point(&lp);
        assert_eq!(p, vec![r(4), r(0)]);
    }

    #[test]
    fn basic_minimization() {
        // min x + y s.t. x >= 1, y >= 2 → 3
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(-1), r(0)], Relop::Le, r(-1));
        lp.push(vec![r(0), r(-1)], Relop::Le, r(-2));
        let opt = lp.minimize(&[r(1), r(1)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &r(3));
        assert!(opt.attained());
    }

    #[test]
    fn infeasible_system() {
        let mut lp = LpProblem::new(1);
        lp.push(vec![r(1)], Relop::Le, r(0));
        lp.push(vec![r(-1)], Relop::Le, r(-1)); // x >= 1
        assert!(!lp.is_feasible());
        assert!(matches!(lp.maximize(&[r(1)]), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_objective() {
        let mut lp = LpProblem::new(1);
        lp.push(vec![r(-1)], Relop::Le, r(0)); // x >= 0
        assert!(matches!(lp.maximize(&[r(1)]), LpOutcome::Unbounded));
        // ...but bounded below.
        let opt = lp.minimize(&[r(1)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &r(0));
    }

    #[test]
    fn strict_inequality_supremum_not_attained() {
        // max x s.t. x < 1 → sup 1, not attained; witness strictly below 1.
        let mut lp = LpProblem::new(1);
        lp.push(vec![r(1)], Relop::Lt, r(1));
        lp.push(vec![r(-1)], Relop::Le, r(0));
        let opt = lp.maximize(&[r(1)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &r(1));
        assert!(!opt.attained());
        let p = opt.concrete_point(&lp);
        assert!(p[0] < r(1) && p[0] >= r(0));
        assert!(lp.constraints()[0].satisfied_by(&p));
    }

    #[test]
    fn strict_infeasibility_detected() {
        // x < 1 and x > 1 is infeasible; x <= 1 and x >= 1 is x = 1.
        let mut open = LpProblem::new(1);
        open.push(vec![r(1)], Relop::Lt, r(1));
        open.push(vec![r(-1)], Relop::Lt, r(-1));
        assert!(!open.is_feasible());

        let mut closed = LpProblem::new(1);
        closed.push(vec![r(1)], Relop::Le, r(1));
        closed.push(vec![r(-1)], Relop::Le, r(-1));
        let p = closed.find_concrete_point().unwrap();
        assert_eq!(p, vec![r(1)]);
    }

    #[test]
    fn strict_point_vs_closed_point() {
        // x <= 1, x >= 1, x < 1 → infeasible (closed point excluded by strict).
        let mut lp = LpProblem::new(1);
        lp.push(vec![r(1)], Relop::Le, r(1));
        lp.push(vec![r(-1)], Relop::Le, r(-1));
        lp.push(vec![r(1)], Relop::Lt, r(1));
        assert!(!lp.is_feasible());
    }

    #[test]
    fn equality_constraints() {
        // x + y = 2, x - y = 0 → x = y = 1
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(1), r(1)], Relop::Eq, r(2));
        lp.push(vec![r(1), r(-1)], Relop::Eq, r(0));
        let p = lp.find_concrete_point().unwrap();
        assert_eq!(p, vec![r(1), r(1)]);
    }

    #[test]
    fn free_variables_take_negative_values() {
        // min x s.t. x >= -5 → -5
        let mut lp = LpProblem::new(1);
        lp.push(vec![r(-1)], Relop::Le, r(5));
        let opt = lp.minimize(&[r(1)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &r(-5));
    }

    #[test]
    fn fractional_optimum() {
        // max x + y s.t. 2x + y <= 2, x + 2y <= 2, nonneg → 4/3 at (2/3, 2/3)
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(2), r(1)], Relop::Le, r(2));
        lp.push(vec![r(1), r(2)], Relop::Le, r(2));
        lp.push(vec![r(-1), r(0)], Relop::Le, r(0));
        lp.push(vec![r(0), r(-1)], Relop::Le, r(0));
        let opt = lp.maximize(&[r(1), r(1)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &rp(4, 3));
        assert_eq!(opt.concrete_point(&lp), vec![rp(2, 3), rp(2, 3)]);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(1), r(0)], Relop::Le, r(1));
        lp.push(vec![r(0), r(1)], Relop::Le, r(1));
        lp.push(vec![r(1), r(1)], Relop::Le, r(2));
        lp.push(vec![r(1), r(-1)], Relop::Le, r(0));
        lp.push(vec![r(-1), r(0)], Relop::Le, r(0));
        lp.push(vec![r(0), r(-1)], Relop::Le, r(0));
        let opt = lp.maximize(&[r(1), r(1)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &r(2));
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        // x = 1 stated twice plus implied sum.
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(1), r(0)], Relop::Eq, r(1));
        lp.push(vec![r(1), r(0)], Relop::Eq, r(1));
        lp.push(vec![r(2), r(0)], Relop::Eq, r(2));
        lp.push(vec![r(0), r(1)], Relop::Eq, r(7));
        let p = lp.find_concrete_point().unwrap();
        assert_eq!(p, vec![r(1), r(7)]);
    }

    #[test]
    fn open_polytope_witness_satisfies_all_strict_constraints() {
        // 0 < x < 1, 0 < y < 1, x + y < 1
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(1), r(0)], Relop::Lt, r(1));
        lp.push(vec![r(-1), r(0)], Relop::Lt, r(0));
        lp.push(vec![r(0), r(1)], Relop::Lt, r(1));
        lp.push(vec![r(0), r(-1)], Relop::Lt, r(0));
        lp.push(vec![r(1), r(1)], Relop::Lt, r(1));
        let p = lp.find_concrete_point().unwrap();
        for c in lp.constraints() {
            assert!(c.satisfied_by(&p), "violated: {c:?} at {p:?}");
        }
    }

    #[test]
    fn objective_with_strict_binding_constraint() {
        // max 2x + 3y s.t. x < 2, y <= 1, x >= 0, y >= 0 → sup 7 unattained.
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(1), r(0)], Relop::Lt, r(2));
        lp.push(vec![r(0), r(1)], Relop::Le, r(1));
        lp.push(vec![r(-1), r(0)], Relop::Le, r(0));
        lp.push(vec![r(0), r(-1)], Relop::Le, r(0));
        let opt = lp.maximize(&[r(2), r(3)]).optimal().unwrap();
        assert_eq!(opt.supremum(), &r(7));
        assert!(!opt.attained());
        let p = opt.concrete_point(&lp);
        for c in lp.constraints() {
            assert!(c.satisfied_by(&p));
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut lp = LpProblem::new(2);
        lp.push(vec![r(1)], Relop::Le, r(1));
    }
}
