//! Exact linear programming for the LyriC constraint engine.
//!
//! This crate implements a two-phase primal simplex solver working entirely
//! in exact arithmetic ([`lyric_arith::Rational`] coefficients,
//! [`lyric_arith::EpsRational`] right-hand sides and solution values). It is
//! the computational core behind:
//!
//! * the **satisfiability predicate** of LyriC WHERE clauses (§4.2 of the
//!   paper): a conjunction of linear constraints is satisfiable iff phase 1
//!   finds a feasible basis;
//! * the **entailment predicate `|=`**: `P |= (e ≤ c)` iff the maximum of
//!   `e` over `P` is at most `c`;
//! * the **`MAX`/`MIN`/`MAX_POINT`/`MIN_POINT … SUBJECT TO`** operators of
//!   LyriC SELECT clauses, the paper's generalization of classical linear
//!   programming to constraint databases;
//! * **canonical forms**: LP-based redundant-atom removal (BJM93).
//!
//! # Strict inequalities
//!
//! The paper's linear arithmetic constraints allow `<` and `>`. Rather than
//! case-splitting, strict constraints are encoded with a symbolic
//! infinitesimal: `e < c` becomes `e ≤ c − ε`. The solver pivots over
//! `a + b·ε` values; an optimum whose ε-coefficient is nonzero is a
//! **supremum that is not attained** (e.g. `MAX x SUBJECT TO x < 1` reports
//! supremum 1, `attained = false`). [`LpOptimum::concrete_point`] recovers
//! an ordinary rational witness by choosing a concrete, sufficiently small
//! positive ε.
//!
//! # Anti-cycling
//!
//! Pivot selection uses Bland's rule, so termination is guaranteed even on
//! degenerate problems.
//!
//! # Example
//!
//! ```
//! use lyric_arith::Rational;
//! use lyric_simplex::{LpProblem, LpOutcome, Relop};
//!
//! // max x + y  s.t.  x + 2y <= 4,  x <= 3,  x >= 0, y >= 0.
//! // (Variables are free by default, so bounds are explicit constraints.)
//! let mut lp = LpProblem::new(2);
//! let r = |v: i64| Rational::from_int(v);
//! lp.push(vec![r(1), r(2)], Relop::Le, r(4));
//! lp.push(vec![r(1), r(0)], Relop::Le, r(3));
//! lp.push(vec![r(-1), r(0)], Relop::Le, r(0)); // x >= 0
//! lp.push(vec![r(0), r(-1)], Relop::Le, r(0)); // y >= 0
//! match lp.maximize(&[r(1), r(1)]) {
//!     LpOutcome::Optimal(opt) => {
//!         assert_eq!(opt.supremum(), &Rational::from_pair(7, 2));
//!         assert!(opt.attained());
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

mod problem;
mod tableau;

pub use problem::{Constraint, LpOptimum, LpOutcome, LpProblem, Relop};
