//! Dense two-phase simplex tableau over exact arithmetic.
//!
//! Column layout: `2·num_vars` structural columns (each free variable `xⱼ`
//! is the difference of the non-negative pair at columns `2j`, `2j+1`),
//! followed by one slack column per inequality row, followed by phase-1
//! artificial columns. Right-hand sides are [`EpsRational`] so strict
//! inequalities participate as `b − ε`; all tableau coefficients stay
//! ordinary rationals (pivoting never multiplies two ε values).
//!
//! Storage is *arena-backed*: the coefficient matrix is one flat
//! row-major `Vec<Rational>` (stride = the column count at build time)
//! plus side vectors for RHS, basis, and scratch rows, all held in a
//! thread-local [`Pool`](lyric_arith::Pool) and recycled across solves.
//! After warm-up, a solve whose coefficients stay on the small-rational
//! fast path performs **zero** global allocations in the pivot loop (the
//! `zero_alloc_pivot` integration test pins this). Removing artificial
//! columns after phase 1 only shrinks the *logical* column count — the
//! stale tail of each row chunk is simply never read again.

use crate::problem::{LpProblem, Relop};
use lyric_arith::{EpsRational, Lease, Pool, Rational, Recycle};

/// The recyclable buffers of one tableau. Everything is `clear()`ed on
/// release; capacity survives in the pool.
#[derive(Debug, Default)]
pub(crate) struct TableauBufs {
    /// Row-major coefficient matrix, `nrows × stride`.
    coeffs: Vec<Rational>,
    rhs: Vec<EpsRational>,
    basis: Vec<usize>,
    /// Pivot-row copy, so eliminating other rows needs no split borrow.
    scratch: Vec<Rational>,
    /// Reduced-cost row, reused across `optimize` calls.
    reduced: Vec<Rational>,
    /// Cost vector for phase 1 / phase 2.
    costs: Vec<Rational>,
}

impl Recycle for TableauBufs {
    fn recycle(&mut self) {
        self.coeffs.clear();
        self.rhs.clear();
        self.basis.clear();
        self.scratch.clear();
        self.reduced.clear();
        self.costs.clear();
    }

    fn retained_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.coeffs.capacity()
            + self.scratch.capacity()
            + self.reduced.capacity()
            + self.costs.capacity())
            * size_of::<Rational>()
            + self.rhs.capacity() * size_of::<EpsRational>()
            + self.basis.capacity() * size_of::<usize>()
    }
}

thread_local! {
    static TABLEAU_POOL: Pool<TableauBufs> = Pool::new();
}

pub(crate) struct Tableau {
    bufs: Lease<TableauBufs>,
    nrows: usize,
    /// Live column count; shrinks when artificials are evicted.
    ncols: usize,
    /// Allocated row width (the column count at build time).
    stride: usize,
    /// Columns `0..n_nonartificial` are structural + slack; the rest are
    /// phase-1 artificials.
    n_nonartificial: usize,
}

impl Tableau {
    pub(crate) fn build(problem: &LpProblem) -> Tableau {
        let n = problem.num_vars();
        let nstruct = 2 * n;
        let constraints = problem.constraints();
        let nrows = constraints.len();
        let n_slacks = constraints.iter().filter(|c| c.relop != Relop::Eq).count();
        let n_nonartificial = nstruct + n_slacks;

        // A row needs an artificial variable when it cannot start with its
        // slack basic: equality rows have no slack, and rows normalized by
        // negation (negative RHS, where `0 − ε` counts as negative) flip
        // the slack coefficient to −1.
        let needs_artificial = |c: &crate::problem::Constraint| {
            c.relop == Relop::Eq || c.rhs.is_negative() || (c.rhs.is_zero() && c.relop == Relop::Lt)
        };
        let n_artificial = constraints.iter().filter(|c| needs_artificial(c)).count();
        let ncols = n_nonartificial + n_artificial;

        let mut bufs = TABLEAU_POOL.with(|p| p.acquire());
        {
            let b = &mut *bufs;
            b.coeffs.resize(nrows * ncols, Rational::zero());
            b.rhs.reserve(nrows);
            b.basis.reserve(nrows);

            let mut next_slack = nstruct;
            let mut next_art = n_nonartificial;
            for (i, c) in constraints.iter().enumerate() {
                let row = &mut b.coeffs[i * ncols..(i + 1) * ncols];
                for (j, a) in c.coeffs.iter().enumerate() {
                    if !a.is_zero() {
                        row[2 * j] = a.clone();
                        row[2 * j + 1] = -a;
                    }
                }
                let mut rhs = match c.relop {
                    Relop::Lt => EpsRational::new(c.rhs.clone(), -Rational::one()),
                    _ => EpsRational::from_rational(c.rhs.clone()),
                };
                let slack = if c.relop == Relop::Eq {
                    None
                } else {
                    let col = next_slack;
                    next_slack += 1;
                    row[col] = Rational::one();
                    Some(col)
                };
                let negate = rhs.is_negative();
                if negate {
                    for a in row.iter_mut() {
                        if !a.is_zero() {
                            *a = -&*a;
                        }
                    }
                    rhs = -rhs;
                }
                // The slack is a valid initial basic variable only when its
                // coefficient stayed +1 (row not negated).
                let basic = match slack {
                    Some(col) if !negate => col,
                    _ => {
                        debug_assert!(needs_artificial(c));
                        let col = next_art;
                        next_art += 1;
                        row[col] = Rational::one();
                        col
                    }
                };
                b.rhs.push(rhs);
                b.basis.push(basic);
            }
            debug_assert_eq!(next_art, ncols);
        }

        // Deterministic arena accounting: the logical bytes this solve
        // placed in pooled buffers (requested sizes, not capacity).
        let bytes = (nrows * ncols * std::mem::size_of::<Rational>()
            + nrows * (std::mem::size_of::<EpsRational>() + std::mem::size_of::<usize>()))
            as u64;
        lyric_engine::tally(|s| s.arena_bytes += bytes);

        Tableau {
            bufs,
            nrows,
            ncols,
            stride: ncols,
            n_nonartificial,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[Rational] {
        &self.bufs.coeffs[i * self.stride..i * self.stride + self.ncols]
    }

    /// Reduced-cost row `r_j = c_j − Σᵢ c_{basis[i]}·T[i][j]` for the given
    /// cost vector (padded with zeros beyond its length), written into
    /// `reduced`.
    fn reduced_costs(&self, costs: &[Rational], reduced: &mut Vec<Rational>) {
        let cost_of = |col: usize| costs.get(col).cloned().unwrap_or_else(Rational::zero);
        reduced.clear();
        reduced.extend((0..self.ncols).map(cost_of));
        for i in 0..self.nrows {
            let cb = cost_of(self.bufs.basis[i]);
            if cb.is_zero() {
                continue;
            }
            for (j, a) in self.row(i).iter().enumerate() {
                if !a.is_zero() {
                    reduced[j] -= &(&cb * a);
                }
            }
        }
    }

    /// Current objective value `Σᵢ c_{basis[i]}·rhsᵢ`.
    fn objective_value(&self, costs: &[Rational]) -> EpsRational {
        let mut z = EpsRational::zero();
        for i in 0..self.nrows {
            if let Some(c) = costs.get(self.bufs.basis[i]) {
                if !c.is_zero() {
                    z += &self.bufs.rhs[i].scale(c);
                }
            }
        }
        z
    }

    fn pivot(&mut self, r: usize, q: usize, reduced: &mut [Rational]) {
        let stride = self.stride;
        let ncols = self.ncols;
        // Copy the (scaled) pivot row into the scratch buffer: eliminating
        // the other rows then needs no split borrow and, once warm, no
        // allocation.
        let mut scratch = std::mem::take(&mut self.bufs.scratch);
        {
            let b = &mut *self.bufs;
            let row = &mut b.coeffs[r * stride..r * stride + ncols];
            let piv = row[q].clone();
            debug_assert!(!piv.is_zero());
            if piv != Rational::one() {
                let inv = piv.recip();
                for a in row.iter_mut() {
                    if !a.is_zero() {
                        *a *= &inv;
                    }
                }
                b.rhs[r] = b.rhs[r].scale(&inv);
            }
            scratch.clear();
            scratch.extend_from_slice(row);
        }
        // Eliminate the pivot column from all other rows.
        for i in 0..self.nrows {
            if i == r {
                continue;
            }
            let b = &mut *self.bufs;
            let row = &mut b.coeffs[i * stride..i * stride + ncols];
            let f = row[q].clone();
            if f.is_zero() {
                continue;
            }
            for (a, p) in row.iter_mut().zip(scratch.iter()) {
                if !p.is_zero() {
                    *a -= &(&f * p);
                }
            }
            let delta_rhs = b.rhs[r].scale(&f);
            b.rhs[i] -= &delta_rhs;
        }
        // Update the reduced-cost row the same way.
        let f = reduced[q].clone();
        if !f.is_zero() {
            for (c, p) in reduced.iter_mut().zip(scratch.iter()) {
                if !p.is_zero() {
                    *c -= &(&f * p);
                }
            }
        }
        self.bufs.scratch = scratch;
        self.bufs.basis[r] = q;
    }

    /// Bland's-rule minimization over columns `0..allowed_cols`.
    /// Returns `false` on unboundedness.
    fn optimize(&mut self, costs: &[Rational], allowed_cols: usize) -> bool {
        let mut reduced = std::mem::take(&mut self.bufs.reduced);
        self.reduced_costs(costs, &mut reduced);
        let bounded = loop {
            // Entering column: smallest index with negative reduced cost.
            let Some(q) = (0..allowed_cols).find(|&j| reduced[j].is_negative()) else {
                break true;
            };
            // Leaving row: minimum ratio rhs/a over rows with a > 0;
            // ties broken by smallest basic column index (Bland).
            let mut best: Option<(usize, EpsRational)> = None;
            for i in 0..self.nrows {
                let a = &self.row(i)[q];
                if !a.is_positive() {
                    continue;
                }
                let ratio = self.bufs.rhs[i].scale(&a.recip());
                let better = match &best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < *br || (ratio == *br && self.bufs.basis[i] < self.bufs.basis[*bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
            let Some((r, _)) = best else {
                break false;
            };
            lyric_engine::note(lyric_engine::Resource::Pivots);
            self.pivot(r, q, &mut reduced);
        };
        self.bufs.reduced = reduced;
        bounded
    }

    /// Phase 1: drive artificial variables to zero. Returns `false` when the
    /// problem is infeasible. On success, artificial columns are removed.
    pub(crate) fn phase1(&mut self) -> bool {
        if self.ncols > self.n_nonartificial {
            let mut costs = std::mem::take(&mut self.bufs.costs);
            costs.clear();
            costs.resize(self.ncols, Rational::zero());
            for c in costs.iter_mut().skip(self.n_nonartificial) {
                *c = Rational::one();
            }
            // Sum of artificials is bounded below by 0: never unbounded.
            let bounded = self.optimize(&costs, self.ncols);
            debug_assert!(bounded);
            let feasible = !self.objective_value(&costs).is_positive();
            self.bufs.costs = costs;
            if !feasible {
                return false;
            }
            self.evict_artificials();
        }
        true
    }

    /// Pivot basic artificials (at value zero) out of the basis, dropping
    /// redundant rows, then shrink the live column count so the artificial
    /// tail of each row chunk is never read again.
    fn evict_artificials(&mut self) {
        // A zeroed cost row: with every entry zero the pivot's reduced-cost
        // update is a no-op, so one buffer serves all evictions.
        let mut zeros = std::mem::take(&mut self.bufs.reduced);
        zeros.clear();
        zeros.resize(self.ncols, Rational::zero());
        let mut i = 0;
        while i < self.nrows {
            if self.bufs.basis[i] >= self.n_nonartificial {
                let q = (0..self.n_nonartificial).find(|&j| !self.row(i)[j].is_zero());
                match q {
                    Some(q) => self.pivot(i, q, &mut zeros),
                    None => {
                        // Row is zero over real columns: redundant constraint.
                        debug_assert!(self.bufs.rhs[i].is_zero());
                        self.swap_remove_row(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
        self.bufs.reduced = zeros;
        self.ncols = self.n_nonartificial;
    }

    /// Remove row `i` by swapping the last row's chunk into its place.
    fn swap_remove_row(&mut self, i: usize) {
        let last = self.nrows - 1;
        let stride = self.stride;
        let b = &mut *self.bufs;
        if i != last {
            let (head, tail) = b.coeffs.split_at_mut(last * stride);
            head[i * stride..(i + 1) * stride].swap_with_slice(&mut tail[..stride]);
        }
        b.coeffs.truncate(last * stride);
        b.rhs.swap_remove(i);
        b.basis.swap_remove(i);
        self.nrows = last;
    }

    /// Phase 2: minimize the cost vector (over structural columns; slack
    /// columns cost zero). Returns `false` on unboundedness. `costs` is
    /// indexed by *original problem variable*, length `num_vars`.
    pub(crate) fn phase2(&mut self, costs: &[Rational]) -> bool {
        debug_assert_eq!(self.ncols, self.n_nonartificial, "phase1 must run first");
        let mut split = std::mem::take(&mut self.bufs.costs);
        split.clear();
        split.resize(self.ncols, Rational::zero());
        for (j, c) in costs.iter().enumerate() {
            split[2 * j] = c.clone();
            split[2 * j + 1] = -c;
        }
        let bounded = self.optimize(&split, self.ncols);
        self.bufs.costs = split;
        bounded
    }

    /// Read the current basic solution back as values of the original
    /// `num_vars` free variables.
    pub(crate) fn extract_point(&self, num_vars: usize) -> Vec<EpsRational> {
        let mut col_value = vec![EpsRational::zero(); self.ncols];
        for (i, &b) in self.bufs.basis.iter().enumerate() {
            col_value[b] = self.bufs.rhs[i].clone();
        }
        (0..num_vars)
            .map(|j| &col_value[2 * j] - &col_value[2 * j + 1])
            .collect()
    }
}
