//! Dense two-phase simplex tableau over exact arithmetic.
//!
//! Column layout: `2·num_vars` structural columns (each free variable `xⱼ`
//! is the difference of the non-negative pair at columns `2j`, `2j+1`),
//! followed by one slack column per inequality row, followed by phase-1
//! artificial columns. Right-hand sides are [`EpsRational`] so strict
//! inequalities participate as `b − ε`; all tableau coefficients stay
//! ordinary rationals (pivoting never multiplies two ε values).

use crate::problem::{LpProblem, Relop};
use lyric_arith::{EpsRational, Rational};

struct Row {
    coeffs: Vec<Rational>,
    rhs: EpsRational,
}

pub(crate) struct Tableau {
    rows: Vec<Row>,
    /// Column basic in each row.
    basis: Vec<usize>,
    /// Total column count including artificials.
    ncols: usize,
    /// Columns `0..n_nonartificial` are structural + slack; the rest are
    /// phase-1 artificials.
    n_nonartificial: usize,
}

impl Tableau {
    pub(crate) fn build(problem: &LpProblem) -> Tableau {
        let n = problem.num_vars();
        let nstruct = 2 * n;
        let n_slacks = problem
            .constraints()
            .iter()
            .filter(|c| c.relop != Relop::Eq)
            .count();
        let n_nonartificial = nstruct + n_slacks;

        // First pass: build rows with structural + slack coefficients,
        // normalizing to non-negative RHS.
        let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints().len());
        let mut basis: Vec<Option<usize>> = Vec::with_capacity(rows.capacity());
        let mut next_slack = nstruct;
        for c in problem.constraints() {
            let mut coeffs = vec![Rational::zero(); n_nonartificial];
            for (j, a) in c.coeffs.iter().enumerate() {
                if !a.is_zero() {
                    coeffs[2 * j] = a.clone();
                    coeffs[2 * j + 1] = -a;
                }
            }
            let mut rhs = match c.relop {
                Relop::Lt => EpsRational::new(c.rhs.clone(), -Rational::one()),
                _ => EpsRational::from_rational(c.rhs.clone()),
            };
            let slack = if c.relop == Relop::Eq {
                None
            } else {
                let col = next_slack;
                next_slack += 1;
                coeffs[col] = Rational::one();
                Some(col)
            };
            let negate = rhs.is_negative();
            if negate {
                for a in &mut coeffs {
                    if !a.is_zero() {
                        *a = -&*a;
                    }
                }
                rhs = -rhs;
            }
            // The slack is a valid initial basic variable only when its
            // coefficient stayed +1 (row not negated).
            let basic = match slack {
                Some(col) if !negate => Some(col),
                _ => None,
            };
            rows.push(Row { coeffs, rhs });
            basis.push(basic);
        }

        // Second pass: artificial columns for rows lacking a basic variable.
        let n_artificial = basis.iter().filter(|b| b.is_none()).count();
        let ncols = n_nonartificial + n_artificial;
        let mut next_art = n_nonartificial;
        let mut final_basis = Vec::with_capacity(rows.len());
        for (row, b) in rows.iter_mut().zip(&basis) {
            row.coeffs.resize(ncols, Rational::zero());
            match b {
                Some(col) => final_basis.push(*col),
                None => {
                    row.coeffs[next_art] = Rational::one();
                    final_basis.push(next_art);
                    next_art += 1;
                }
            }
        }

        Tableau {
            rows,
            basis: final_basis,
            ncols,
            n_nonartificial,
        }
    }

    /// Reduced-cost row `r_j = c_j − Σᵢ c_{basis[i]}·T[i][j]` for the given
    /// cost vector (padded with zeros beyond its length).
    fn reduced_costs(&self, costs: &[Rational]) -> Vec<Rational> {
        let cost_of = |col: usize| costs.get(col).cloned().unwrap_or_else(Rational::zero);
        let mut reduced: Vec<Rational> = (0..self.ncols).map(cost_of).collect();
        for (i, row) in self.rows.iter().enumerate() {
            let cb = cost_of(self.basis[i]);
            if cb.is_zero() {
                continue;
            }
            for (j, a) in row.coeffs.iter().enumerate() {
                if !a.is_zero() {
                    reduced[j] -= &(&cb * a);
                }
            }
        }
        reduced
    }

    /// Current objective value `Σᵢ c_{basis[i]}·rhsᵢ`.
    fn objective_value(&self, costs: &[Rational]) -> EpsRational {
        let mut z = EpsRational::zero();
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(c) = costs.get(self.basis[i]) {
                if !c.is_zero() {
                    z += &row.rhs.scale(c);
                }
            }
        }
        z
    }

    fn pivot(&mut self, r: usize, q: usize, reduced: &mut [Rational]) {
        // Scale pivot row to make the pivot 1.
        let piv = self.rows[r].coeffs[q].clone();
        debug_assert!(!piv.is_zero());
        if piv != Rational::one() {
            let inv = piv.recip();
            for a in &mut self.rows[r].coeffs {
                if !a.is_zero() {
                    *a *= &inv;
                }
            }
            self.rows[r].rhs = self.rows[r].rhs.scale(&inv);
        }
        // Eliminate the pivot column from all other rows.
        for i in 0..self.rows.len() {
            if i == r {
                continue;
            }
            let f = self.rows[i].coeffs[q].clone();
            if f.is_zero() {
                continue;
            }
            let delta_rhs = self.rows[r].rhs.scale(&f);
            // Split borrow: copy the pivot row coefficients we need.
            let pivot_coeffs: Vec<(usize, Rational)> = self.rows[r]
                .coeffs
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.is_zero())
                .map(|(j, a)| (j, a.clone()))
                .collect();
            for (j, a) in &pivot_coeffs {
                self.rows[i].coeffs[*j] -= &(&f * a);
            }
            self.rows[i].rhs -= &delta_rhs;
        }
        // Update the reduced-cost row the same way.
        let f = reduced[q].clone();
        if !f.is_zero() {
            for (j, a) in self.rows[r].coeffs.iter().enumerate() {
                if !a.is_zero() {
                    reduced[j] -= &(&f * a);
                }
            }
        }
        self.basis[r] = q;
    }

    /// Bland's-rule minimization over columns `0..allowed_cols`.
    /// Returns `false` on unboundedness.
    fn optimize(&mut self, costs: &[Rational], allowed_cols: usize) -> bool {
        let mut reduced = self.reduced_costs(costs);
        loop {
            // Entering column: smallest index with negative reduced cost.
            let Some(q) = (0..allowed_cols).find(|&j| reduced[j].is_negative()) else {
                return true;
            };
            // Leaving row: minimum ratio rhs/a over rows with a > 0;
            // ties broken by smallest basic column index (Bland).
            let mut best: Option<(usize, EpsRational)> = None;
            for (i, row) in self.rows.iter().enumerate() {
                let a = &row.coeffs[q];
                if !a.is_positive() {
                    continue;
                }
                let ratio = row.rhs.scale(&a.recip());
                let better = match &best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < *br || (ratio == *br && self.basis[i] < self.basis[*bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
            let Some((r, _)) = best else {
                return false;
            };
            lyric_engine::note(lyric_engine::Resource::Pivots);
            self.pivot(r, q, &mut reduced);
        }
    }

    /// Phase 1: drive artificial variables to zero. Returns `false` when the
    /// problem is infeasible. On success, artificial columns are removed.
    pub(crate) fn phase1(&mut self) -> bool {
        if self.ncols > self.n_nonartificial {
            let mut costs = vec![Rational::zero(); self.ncols];
            for c in costs.iter_mut().skip(self.n_nonartificial) {
                *c = Rational::one();
            }
            // Sum of artificials is bounded below by 0: never unbounded.
            let bounded = self.optimize(&costs, self.ncols);
            debug_assert!(bounded);
            if self.objective_value(&costs).is_positive() {
                return false;
            }
            self.evict_artificials();
        }
        true
    }

    /// Pivot basic artificials (at value zero) out of the basis, dropping
    /// redundant rows, then truncate artificial columns.
    fn evict_artificials(&mut self) {
        let mut i = 0;
        while i < self.rows.len() {
            if self.basis[i] >= self.n_nonartificial {
                let q = (0..self.n_nonartificial).find(|&j| !self.rows[i].coeffs[j].is_zero());
                match q {
                    Some(q) => {
                        // Reduced costs are irrelevant here; use a scratch row.
                        let mut scratch = vec![Rational::zero(); self.ncols];
                        self.pivot(i, q, &mut scratch);
                    }
                    None => {
                        // Row is zero over real columns: redundant constraint.
                        debug_assert!(self.rows[i].rhs.is_zero());
                        self.rows.swap_remove(i);
                        self.basis.swap_remove(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
        for row in &mut self.rows {
            row.coeffs.truncate(self.n_nonartificial);
        }
        self.ncols = self.n_nonartificial;
    }

    /// Phase 2: minimize the cost vector (over structural columns; slack
    /// columns cost zero). Returns `false` on unboundedness. `costs` is
    /// indexed by *original problem variable*, length `num_vars`.
    pub(crate) fn phase2(&mut self, costs: &[Rational]) -> bool {
        debug_assert_eq!(self.ncols, self.n_nonartificial, "phase1 must run first");
        let mut split = vec![Rational::zero(); self.ncols];
        for (j, c) in costs.iter().enumerate() {
            split[2 * j] = c.clone();
            split[2 * j + 1] = -c;
        }
        self.optimize(&split, self.ncols)
    }

    /// Read the current basic solution back as values of the original
    /// `num_vars` free variables.
    pub(crate) fn extract_point(&self, num_vars: usize) -> Vec<EpsRational> {
        let mut col_value = vec![EpsRational::zero(); self.ncols];
        for (i, &b) in self.basis.iter().enumerate() {
            col_value[b] = self.rows[i].rhs.clone();
        }
        (0..num_vars)
            .map(|j| &col_value[2 * j] - &col_value[2 * j + 1])
            .collect()
    }
}
