//! Stress and adversarial tests for the exact simplex solver: worst-case
//! pivoting paths (Klee–Minty), classic cycling examples (Beale), and
//! exactness under coefficient growth.

use lyric_arith::{BigInt, Rational};
use lyric_simplex::{LpOutcome, LpProblem, Relop};

fn r(v: i64) -> Rational {
    Rational::from_int(v)
}

/// The Klee–Minty cube in dimension `n`:
/// max Σ 2^(n-i) x_i  s.t.  2 Σ_{j<i} 2^(i-j) x_j + x_i ≤ 5^i, x ≥ 0.
/// Dantzig's rule visits all 2^n vertices; any correct solver must land
/// on the optimum 5^n.
fn klee_minty(n: usize) -> (LpProblem, Vec<Rational>, Rational) {
    let mut lp = LpProblem::new(n);
    for i in 0..n {
        let mut coeffs = vec![Rational::zero(); n];
        for (j, c) in coeffs.iter_mut().enumerate().take(i) {
            *c = Rational::from(BigInt::from(2i64).pow((i - j + 1) as u32));
        }
        coeffs[i] = Rational::one();
        let rhs = Rational::from(BigInt::from(5i64).pow(i as u32 + 1));
        lp.push(coeffs, Relop::Le, rhs);
        // x_i >= 0
        let mut nonneg = vec![Rational::zero(); n];
        nonneg[i] = -Rational::one();
        lp.push(nonneg, Relop::Le, Rational::zero());
    }
    let objective: Vec<Rational> = (0..n)
        .map(|i| Rational::from(BigInt::from(2i64).pow((n - i - 1) as u32)))
        .collect();
    let optimum = Rational::from(BigInt::from(5i64).pow(n as u32));
    (lp, objective, optimum)
}

#[test]
fn klee_minty_cubes() {
    for n in [2usize, 4, 6, 8] {
        let (lp, objective, optimum) = klee_minty(n);
        let opt = lp
            .maximize(&objective)
            .optimal()
            .unwrap_or_else(|| panic!("Klee–Minty n={n} must have an optimum"));
        assert_eq!(opt.supremum(), &optimum, "Klee–Minty n={n}");
        assert!(opt.attained());
    }
}

/// Beale's classic cycling example — degenerate pivots that loop forever
/// under naive most-negative-cost pivoting. Bland's rule must terminate.
#[test]
fn beale_cycling_example_terminates() {
    // min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
    // s.t. 1/4 x4 - 60 x5 - 1/25 x6 + 9 x7 <= 0
    //      1/2 x4 - 90 x5 - 1/50 x6 + 3 x7 <= 0
    //      x6 <= 1, x >= 0
    let mut lp = LpProblem::new(4);
    let q = Rational::from_pair;
    lp.push(vec![q(1, 4), r(-60), q(-1, 25), r(9)], Relop::Le, r(0));
    lp.push(vec![q(1, 2), r(-90), q(-1, 50), r(3)], Relop::Le, r(0));
    lp.push(vec![r(0), r(0), r(1), r(0)], Relop::Le, r(1));
    for i in 0..4 {
        let mut nonneg = vec![Rational::zero(); 4];
        nonneg[i] = -Rational::one();
        lp.push(nonneg, Relop::Le, Rational::zero());
    }
    let objective = vec![q(-3, 4), r(150), q(-1, 50), r(6)];
    let opt = lp
        .minimize(&objective)
        .optimal()
        .expect("Beale LP is bounded");
    // Known optimum: -1/20 at x = (1/25, 0, 1, 0).
    assert_eq!(opt.supremum(), &q(-1, 20));
    let p = opt.concrete_point(&lp);
    assert_eq!(p, vec![q(1, 25), r(0), r(1), r(0)]);
}

/// Exactness: a chain of constraints engineered so the optimum is a
/// rational with large numerator/denominator; floating-point solvers
/// cannot represent it, ours must return it exactly.
#[test]
fn exact_fractional_chain() {
    // x_{i+1} = x_i / p_i (via equalities) with primes p_i; maximize x_n
    // subject to x_0 = 1: optimum is 1/(p_0 ... p_{n-1}).
    let primes = [3i64, 7, 11, 13, 17, 19, 23, 29];
    let n = primes.len() + 1;
    let mut lp = LpProblem::new(n);
    let mut first = vec![Rational::zero(); n];
    first[0] = Rational::one();
    lp.push(first, Relop::Eq, r(1));
    for (i, &p) in primes.iter().enumerate() {
        let mut coeffs = vec![Rational::zero(); n];
        coeffs[i] = Rational::one();
        coeffs[i + 1] = -r(p);
        lp.push(coeffs, Relop::Eq, r(0));
    }
    let mut objective = vec![Rational::zero(); n];
    objective[n - 1] = Rational::one();
    let opt = lp.maximize(&objective).optimal().expect("chain is a point");
    let denom: i64 = primes.iter().product();
    assert_eq!(opt.supremum(), &Rational::from_pair(1, denom));
}

/// A large sparse feasibility instance: difference constraints forming a
/// consistent chain of 120 variables plus a closing constraint.
#[test]
fn large_difference_chain() {
    let n = 120usize;
    let mut lp = LpProblem::new(n);
    // x_{i+1} - x_i >= 1  (i.e. x_i - x_{i+1} <= -1)
    for i in 0..n - 1 {
        let mut coeffs = vec![Rational::zero(); n];
        coeffs[i] = Rational::one();
        coeffs[i + 1] = -Rational::one();
        lp.push(coeffs, Relop::Le, r(-1));
    }
    // x_{n-1} - x_0 <= 200 (consistent: minimum spread is n-1 = 119).
    let mut closing = vec![Rational::zero(); n];
    closing[n - 1] = Rational::one();
    closing[0] = -Rational::one();
    lp.push(closing, Relop::Le, r(200));
    let point = lp.find_concrete_point().expect("chain is satisfiable");
    for i in 0..n - 1 {
        assert!(&point[i + 1] - &point[i] >= r(1));
    }
    // Tighten to inconsistency: spread must be >= 119 but <= 100.
    let mut tight = LpProblem::new(n);
    for i in 0..n - 1 {
        let mut coeffs = vec![Rational::zero(); n];
        coeffs[i] = Rational::one();
        coeffs[i + 1] = -Rational::one();
        tight.push(coeffs, Relop::Le, r(-1));
    }
    let mut closing = vec![Rational::zero(); n];
    closing[n - 1] = Rational::one();
    closing[0] = -Rational::one();
    tight.push(closing, Relop::Le, r(100));
    assert!(!tight.is_feasible());
}

/// Highly degenerate: many redundant copies of the binding constraints at
/// the optimum must not trap Bland's rule.
#[test]
fn massive_degeneracy() {
    let n = 6usize;
    let mut lp = LpProblem::new(n);
    for i in 0..n {
        let mut nonneg = vec![Rational::zero(); n];
        nonneg[i] = -Rational::one();
        lp.push(nonneg, Relop::Le, Rational::zero());
    }
    // The same facet Σx <= 10, restated with scaled coefficients 12 times.
    for k in 1..=12i64 {
        lp.push(vec![r(k); n], Relop::Le, r(10 * k));
    }
    let opt = lp.maximize(&vec![r(1); n]).optimal().expect("bounded");
    assert_eq!(opt.supremum(), &r(10));
}

/// Mixed strict/non-strict at scale: a strictly interior witness for a
/// 40-dimensional open box, with all margins verified.
#[test]
fn high_dimensional_open_box() {
    let n = 40usize;
    let mut lp = LpProblem::new(n);
    for i in 0..n {
        let mut lo = vec![Rational::zero(); n];
        lo[i] = -Rational::one();
        lp.push(lo, Relop::Lt, r(0)); // x_i > 0
        let mut hi = vec![Rational::zero(); n];
        hi[i] = Rational::one();
        lp.push(hi, Relop::Lt, r(1)); // x_i < 1
    }
    let p = lp.find_concrete_point().expect("open box is nonempty");
    for x in &p {
        assert!(x > &r(0) && x < &r(1), "strictly interior: {x}");
    }
    // And the supremum of Σx is n, not attained.
    match lp.maximize(&vec![Rational::one(); n]) {
        LpOutcome::Optimal(opt) => {
            assert_eq!(opt.supremum(), &r(n as i64));
            assert!(!opt.attained());
        }
        other => panic!("unexpected {other:?}"),
    }
}
