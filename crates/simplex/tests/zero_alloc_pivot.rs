//! Allocation guard for the arena-backed simplex hot loop.
//!
//! With the small-coefficient fast path on, a feasibility check over an
//! all-small-coefficient E2-style polytope must perform **zero** global
//! allocations once the thread-local tableau pool is warm: every
//! `Rational` stays in the inline tier, and every tableau buffer (the
//! flat coefficient matrix, rhs, basis, pivot scratch, reduced row, cost
//! row) is recycled from the pool with its capacity intact. A counting
//! global allocator pins this — any `Vec` growth, `BigInt` promotion, or
//! accidental clone in the pivot loop fails the test.

use lyric_arith::Rational;
use lyric_simplex::{LpProblem, Relop};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// An E2-style office-extent feasibility problem: small integer
/// coefficients, a mix of `≤`/`<`/`=` rows, negative right-hand sides
/// (forcing artificial variables and real phase-1 pivots), and enough
/// rows that `phase1` actually iterates.
fn office_polytope() -> LpProblem {
    let r = Rational::from_pair;
    let mut lp = LpProblem::new(4);
    let rows: [(&[i64; 4], Relop, i64); 9] = [
        (&[1, 0, 0, 0], Relop::Le, 20),  // x ≤ 20
        (&[-1, 0, 0, 0], Relop::Le, 0),  // x ≥ 0
        (&[0, 1, 0, 0], Relop::Le, 10),  // y ≤ 10
        (&[0, -1, 0, 0], Relop::Le, -2), // y ≥ 2 (negative rhs row)
        (&[1, 1, 0, 0], Relop::Lt, 25),  // x + y < 25 (strict row)
        (&[2, 3, -1, 0], Relop::Eq, 6),  // 2x + 3y − w = 6 (equality row)
        (&[0, 0, 1, -1], Relop::Le, 4),  // w − z ≤ 4
        (&[0, 0, -2, 1], Relop::Le, -1), // 2w − z ≥ 1
        (&[1, -1, 1, 1], Relop::Le, 30),
    ];
    for (coeffs, relop, rhs) in rows {
        lp.push(coeffs.iter().map(|&c| r(c, 1)).collect(), relop, r(rhs, 1));
    }
    lp
}

#[test]
fn warm_feasibility_check_allocates_nothing() {
    let prev = lyric_arith::set_fast_path(true);
    // Problem construction allocates (coefficient vectors); keep it
    // outside the measured window.
    let lp = office_polytope();

    // Warm up: the first check populates the thread-local tableau pool
    // and grows every buffer to its steady-state capacity.
    assert!(lp.is_feasible(), "the office polytope is feasible");
    assert!(lp.is_feasible());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        assert!(lp.is_feasible());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    lyric_arith::set_fast_path(prev);
    assert_eq!(
        after - before,
        0,
        "warm all-small feasibility checks allocated {} times",
        after - before
    );
}

/// The same workload with the fast path *off* must still be correct —
/// and is expected to allocate (each BigInt numerator/denominator is a
/// heap box), which pins that the guard above is actually measuring the
/// small tier and not a vacuously quiet allocator.
#[test]
fn bigint_tier_control_allocates() {
    let prev = lyric_arith::set_fast_path(false);
    let lp = office_polytope();
    assert!(lp.is_feasible());
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(lp.is_feasible());
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    lyric_arith::set_fast_path(prev);
    assert!(
        after > before,
        "BigInt control run unexpectedly allocation-free"
    );
}
