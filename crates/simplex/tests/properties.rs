//! Property-based tests for the exact simplex solver.
//!
//! The oracle is the definition of an LP: any sampled point that satisfies
//! all constraints proves feasibility and lower-bounds the maximum; any
//! solver-produced point must itself satisfy the constraints; maximizing f
//! must equal the negation of minimizing −f.

use lyric_arith::Rational;
use lyric_simplex::{LpOutcome, LpProblem, Relop};
use proptest::prelude::*;

const NVARS: usize = 3;

#[derive(Debug, Clone)]
struct RawConstraint {
    coeffs: Vec<i32>,
    relop: Relop,
    rhs: i32,
}

fn relop_strategy() -> impl Strategy<Value = Relop> {
    prop_oneof![Just(Relop::Le), Just(Relop::Lt), Just(Relop::Eq)]
}

fn constraint_strategy() -> impl Strategy<Value = RawConstraint> {
    (
        proptest::collection::vec(-4..=4i32, NVARS),
        relop_strategy(),
        -10..=10i32,
    )
        .prop_map(|(coeffs, relop, rhs)| RawConstraint { coeffs, relop, rhs })
}

fn problem_strategy() -> impl Strategy<Value = Vec<RawConstraint>> {
    proptest::collection::vec(constraint_strategy(), 0..8)
}

fn build(raw: &[RawConstraint]) -> LpProblem {
    let mut lp = LpProblem::new(NVARS);
    for c in raw {
        lp.push(
            c.coeffs
                .iter()
                .map(|&v| Rational::from_int(v as i64))
                .collect(),
            c.relop,
            Rational::from_int(c.rhs as i64),
        );
    }
    lp
}

fn satisfies(raw: &[RawConstraint], point: &[Rational]) -> bool {
    raw.iter().all(|c| {
        let lhs: Rational = c
            .coeffs
            .iter()
            .zip(point)
            .map(|(&a, x)| &Rational::from_int(a as i64) * x)
            .fold(Rational::zero(), |acc, t| acc + t);
        let rhs = Rational::from_int(c.rhs as i64);
        match c.relop {
            Relop::Le => lhs <= rhs,
            Relop::Lt => lhs < rhs,
            Relop::Eq => lhs == rhs,
        }
    })
}

fn objective_at(obj: &[i32], point: &[Rational]) -> Rational {
    obj.iter()
        .zip(point)
        .map(|(&c, x)| &Rational::from_int(c as i64) * x)
        .fold(Rational::zero(), |acc, t| acc + t)
}

proptest! {
    /// If a sampled integer point satisfies the system, the solver must
    /// agree the system is feasible.
    #[test]
    fn feasibility_complete(raw in problem_strategy(),
                            candidate in proptest::collection::vec(-6..=6i32, NVARS)) {
        let point: Vec<Rational> =
            candidate.iter().map(|&v| Rational::from_int(v as i64)).collect();
        if satisfies(&raw, &point) {
            prop_assert!(build(&raw).is_feasible(),
                         "solver said infeasible but {point:?} satisfies {raw:?}");
        }
    }

    /// Any point the solver produces must satisfy every constraint
    /// (soundness of feasibility + concretization of ε).
    #[test]
    fn produced_points_are_feasible(raw in problem_strategy()) {
        let lp = build(&raw);
        if let Some(p) = lp.find_concrete_point() {
            prop_assert!(satisfies(&raw, &p),
                         "solver point {p:?} violates {raw:?}");
        }
    }

    /// The reported maximum dominates the objective at every feasible
    /// sampled point, and the optimum point (when attained) achieves it.
    #[test]
    fn maximum_dominates_samples(raw in problem_strategy(),
                                 obj in proptest::collection::vec(-3..=3i32, NVARS),
                                 candidate in proptest::collection::vec(-6..=6i32, NVARS)) {
        let lp = build(&raw);
        let objective: Vec<Rational> =
            obj.iter().map(|&v| Rational::from_int(v as i64)).collect();
        let point: Vec<Rational> =
            candidate.iter().map(|&v| Rational::from_int(v as i64)).collect();
        match lp.maximize(&objective) {
            LpOutcome::Infeasible => {
                prop_assert!(!satisfies(&raw, &point));
            }
            LpOutcome::Unbounded => {}
            LpOutcome::Optimal(opt) => {
                if satisfies(&raw, &point) {
                    prop_assert!(objective_at(&obj, &point) <= *opt.supremum(),
                                 "sampled point beats reported supremum");
                }
                let witness = opt.concrete_point(&lp);
                prop_assert!(satisfies(&raw, &witness));
                if opt.attained() {
                    prop_assert_eq!(objective_at(&obj, &witness), opt.supremum().clone());
                }
            }
        }
    }

    /// max f == −min(−f), including agreement on attainment.
    #[test]
    fn max_min_duality(raw in problem_strategy(),
                       obj in proptest::collection::vec(-3..=3i32, NVARS)) {
        let lp = build(&raw);
        let objective: Vec<Rational> =
            obj.iter().map(|&v| Rational::from_int(v as i64)).collect();
        let neg: Vec<Rational> = objective.iter().map(|c| -c).collect();
        match (lp.maximize(&objective), lp.minimize(&neg)) {
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
            (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                prop_assert_eq!(a.supremum().clone(), -b.supremum());
                prop_assert_eq!(a.attained(), b.attained());
            }
            (a, b) => prop_assert!(false, "asymmetric outcomes {a:?} vs {b:?}"),
        }
    }

    /// Adding a constraint never improves the maximum.
    #[test]
    fn monotone_under_constraint_addition(raw in problem_strategy(),
                                          extra in constraint_strategy(),
                                          obj in proptest::collection::vec(-3..=3i32, NVARS)) {
        let objective: Vec<Rational> =
            obj.iter().map(|&v| Rational::from_int(v as i64)).collect();
        let loose = build(&raw);
        let mut tight_raw = raw.clone();
        tight_raw.push(extra);
        let tight = build(&tight_raw);
        match (loose.maximize(&objective), tight.maximize(&objective)) {
            (_, LpOutcome::Infeasible) => {}
            (LpOutcome::Unbounded, _) => {}
            (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                prop_assert!(b.value <= a.value);
            }
            (LpOutcome::Infeasible, other) => {
                prop_assert!(false, "tightened problem became feasible: {other:?}");
            }
            (LpOutcome::Optimal(_), LpOutcome::Unbounded) => {
                prop_assert!(false, "tightened problem became unbounded");
            }
        }
    }
}
