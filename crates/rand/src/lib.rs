//! A tiny, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment has no access to crates.io, so external
//! dependencies are replaced by in-tree shims (see `DESIGN.md`). The
//! generator is SplitMix64 — deterministic per seed, which is exactly what
//! the seeded workload generators and property tests rely on. It is **not**
//! cryptographically secure and not stream-compatible with the real
//! `StdRng`; only the API shape and statistical adequacy are preserved.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface. Implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range. Mirrors `rand 0.8`'s
    /// `gen_range(range)`, panicking on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, as the real implementation does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The raw word source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types uniformly samplable from a range (primitive integers). A single
/// blanket `SampleRange` impl per range shape keeps integer-literal
/// inference working the same way it does with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_wide(self) -> i128;
    fn from_wide(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_wide(self) -> i128 {
                self as i128
            }
            fn from_wide(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A range that knows how to map one uniform word into itself.
pub trait SampleRange<T> {
    fn sample(self, word: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, word: u64) -> T {
        let (lo, hi) = (self.start.to_wide(), self.end.to_wide());
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        T::from_wide(lo + (word as u128 % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, word: u64) -> T {
        let (lo, hi) = (self.start().to_wide(), self.end().to_wide());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        T::from_wide(lo + (word as u128 % span) as i128)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 behind the `StdRng` name (see the crate docs for the
    /// compatibility caveat).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes_and_mass() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..2000).filter(|_| r.gen_bool(0.75)).count();
        assert!((1300..1700).contains(&hits), "got {hits}");
    }
}
