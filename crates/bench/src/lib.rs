//! Workloads, baselines and measurement harness for the LyriC
//! reproduction benchmarks (experiments E1–E7 of DESIGN.md).
//!
//! The paper (SIGMOD 1995) reports no measured tables; its quantitative
//! content is (a) worked examples with printed answers, (b) the PTIME
//! data-complexity argument of §5, (c) the §1.1 claim that linear
//! constraint technology beats "ad hoc methods working on direct
//! representations", and (d) the §3.1 design of constraint families around
//! polynomial canonical forms and restricted projection. This crate
//! provides everything needed to measure those claims:
//!
//! * [`workload`] — synthetic office databases (scaling §4.1 queries),
//!   chemical-factory LP databases (§1.2), and random constraint
//!   generators for the canonical-form and projection experiments;
//! * [`gridrep`] — the "ad hoc direct representation" strawman: rasterized
//!   point sets with bitmap intersection/containment.
//!
//! The `report` binary (`cargo run -p lyric-bench --bin report --release`)
//! prints every experiment as a markdown table; the Criterion benches
//! (`cargo bench`) measure the same operations with statistical rigor.

pub mod gridrep;
pub mod workload;
