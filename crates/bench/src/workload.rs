//! Synthetic workload generators.

use lyric::paper_example::{box2, point2, translation2};
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, Dnf, LinExpr, NormOp, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ----------------------------------------------------------------- office

/// A synthetic office database with `n` room objects (alternating desks
/// and file cabinets, each with its own catalog object and drawer) at
/// random locations in a 200×100 room. Uses the paper's Figure 1 schema,
/// so every §4.1 query runs on it unchanged — this is the E2
/// data-complexity workload.
pub fn office_db(n: usize, seed: u64) -> Database {
    let mut r = rng(seed);
    let mut db = Database::new(lyric::paper_example::schema()).expect("schema validates");
    for color in ["red", "blue", "grey"] {
        db.declare_instance("Color", Oid::str(color))
            .expect("color class");
    }
    for i in 0..n {
        let is_desk = i % 2 == 0;
        let (half_w, half_h) = if is_desk { (4, 2) } else { (1, 2) };
        let drawer = format!("drawer_{i}");
        db.insert(
            Oid::named(&drawer),
            "Drawer",
            [
                (
                    "extent",
                    Value::Scalar(Oid::cst(box2("w", "z", -1, 1, -1, 1))),
                ),
                ("translation", Value::Scalar(Oid::cst(translation2()))),
            ],
        )
        .expect("drawer insert");
        let catalog = format!("catalog_{i}");
        let color = ["red", "blue", "grey"][r.gen_range(0..3)];
        let (class, center_var) = if is_desk {
            ("Desk", ("p", "q"))
        } else {
            ("File_Cabinet", ("p1", "q1"))
        };
        let center = CstObject::from_conjunction(
            vec![Var::new(center_var.0), Var::new(center_var.1)],
            Conjunction::of([
                Atom::eq(LinExpr::var(Var::new(center_var.0)), LinExpr::from(-half_w)),
                Atom::ge(LinExpr::var(Var::new(center_var.1)), LinExpr::from(-2)),
                Atom::le(LinExpr::var(Var::new(center_var.1)), LinExpr::from(0)),
            ]),
        );
        let center_value = if is_desk {
            Value::Scalar(Oid::cst(center))
        } else {
            Value::set([Oid::cst(center)])
        };
        db.insert(
            Oid::named(&catalog),
            class,
            [
                ("name", Value::Scalar(Oid::str(format!("catalog item {i}")))),
                ("color", Value::Scalar(Oid::str(color))),
                (
                    "extent",
                    Value::Scalar(Oid::cst(box2("w", "z", -half_w, half_w, -half_h, half_h))),
                ),
                ("translation", Value::Scalar(Oid::cst(translation2()))),
                ("drawer_center", center_value),
                ("drawer", Value::Scalar(Oid::named(&drawer))),
            ],
        )
        .expect("catalog insert");
        let x = r.gen_range(5..195);
        let y = r.gen_range(5..95);
        db.insert(
            Oid::named(format!("room_obj_{i}")),
            "Object_In_Room",
            [
                ("inv_number", Value::Scalar(Oid::str(format!("inv-{i}")))),
                ("location", Value::Scalar(Oid::cst(point2("x", "y", x, y)))),
                ("catalog_object", Value::Scalar(Oid::named(&catalog))),
            ],
        )
        .expect("room insert");
    }
    db
}

/// The E2 "linear" probe query: per room object, its extent in room
/// coordinates (one formula instantiation + canonicalization per object).
pub const Q_LINEAR: &str = "SELECT O, ((u,v) | E AND D AND L(x,y))
     FROM Object_In_Room O
     WHERE O.catalog_object[C] AND C.extent[E] AND C.translation[D] AND O.location[L]";

/// The E2 "pairwise" probe query: overlapping pairs of room objects
/// (quadratic join with a satisfiability predicate per pair).
pub const Q_PAIRWISE: &str = "SELECT X, Y
     FROM Object_In_Room X, Object_In_Room Y
     WHERE X.catalog_object[CX] AND Y.catalog_object[CY]
       AND X.location[LX] AND Y.location[LY]
       AND CX.extent[EX] AND CX.translation[DX]
       AND CY.extent[EY] AND CY.translation[DY]
       AND X != Y
       AND (EX(w,z) AND DX(w,z,x,y,u,v) AND LX(x,y)
            AND EY(w2,z2) AND DY(w2,z2,x2,y2,u,v) AND LY(x2,y2))";

// ---------------------------------------------------------------- scaling

/// The store-index scaling workload (E16): `n` flat `Item` objects, each
/// with a numeric `weight` (unique, `0..n`), a low-cardinality string
/// `label`, and a 2-d constraint `region` — a 10×10 box whose lower-left
/// corner sits at a seeded random position in `[0, n) × [0, 1000)`.
/// Selective probes over `weight` hit the sorted scalar column and
/// selective windows over `region` hit the paged bounding-box column,
/// while a full scan pays one binding per object; E16 and the
/// `index_smoke` CI binary race the two against each other.
pub fn scaling_db(n: usize, seed: u64) -> Database {
    let mut r = rng(seed);
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Item")
                .attr(AttrDef::scalar("weight", AttrTarget::class("int")))
                .attr(AttrDef::scalar("label", AttrTarget::class("string")))
                .attr(AttrDef::scalar("region", AttrTarget::cst(["u", "v"]))),
        )
        .expect("fresh schema");
    let mut db = Database::new(schema).expect("schema validates");
    for i in 0..n {
        let x = r.gen_range(0..n.max(1) as i64);
        let y = r.gen_range(0..1000i64);
        db.insert(
            Oid::named(format!("item_{i}")),
            "Item",
            [
                ("weight", Value::Scalar(Oid::Int(i as i64))),
                ("label", Value::Scalar(Oid::str(format!("L{}", i % 7)))),
                (
                    "region",
                    Value::Scalar(Oid::cst(box2("u", "v", x, x + 10, y, y + 10))),
                ),
            ],
        )
        .expect("item insert");
    }
    db
}

/// The E16 scalar-equality probe: one `weight` out of `n` (point lookup
/// in the sorted scalar column vs a full-extent scan).
pub fn q_weight_eq(k: i64) -> String {
    format!("SELECT X FROM Item X WHERE X.weight = {k}")
}

/// The E16 scalar-range probe: the top slice of the `weight` column.
pub fn q_weight_ge(lo: i64) -> String {
    format!("SELECT X FROM Item X WHERE X.weight >= {lo}")
}

/// The E16 window probe: items whose `region` meets a thin vertical
/// strip (bounding-box column probe vs per-object sat checks).
pub fn q_region_window(lo: i64) -> String {
    format!(
        "SELECT X FROM Item X WHERE X.region[E] AND (E(a,b) AND a >= {lo} AND a <= {hi} AND b >= 0)",
        hi = lo + 10
    )
}

// ---------------------------------------------------------------- factory

/// A chemical-factory database (§1.2's LP application realm): `processes`
/// manufacturing processes, each a constraint object over
/// `m` material-consumption variables and `p` product-output variables
/// (linear production rates, non-negative run length, capacity bound).
#[allow(clippy::needless_range_loop)]
pub fn factory_db(processes: usize, materials: usize, products: usize, seed: u64) -> Database {
    let mut r = rng(seed);
    let mut vars: Vec<Var> = (0..materials).map(|i| Var::new(format!("m{i}"))).collect();
    vars.extend((0..products).map(|i| Var::new(format!("p{i}"))));
    let run = Var::new("run");

    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Process")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar(
                    "constraint",
                    AttrTarget::Cst { vars: vars.clone() },
                )),
        )
        .expect("fresh schema");
    let mut db = Database::new(schema).expect("schema validates");

    for j in 0..processes {
        let mut atoms = vec![
            Atom::ge(LinExpr::var(run.clone()), LinExpr::from(0)),
            Atom::le(
                LinExpr::var(run.clone()),
                LinExpr::from(r.gen_range(50..150) as i64),
            ),
        ];
        // Each material consumed proportionally to the run length.
        for i in 0..materials {
            let rate = r.gen_range(1..6) as i64;
            atoms.push(Atom::eq(
                LinExpr::var(vars[i].clone()),
                LinExpr::term(run.clone(), Rational::from_int(rate)),
            ));
        }
        // Each product produced proportionally (some processes skip some
        // products: rate 0 fixes the output at zero).
        for i in 0..products {
            let rate = if r.gen_bool(0.75) {
                r.gen_range(1..4) as i64
            } else {
                0
            };
            atoms.push(Atom::eq(
                LinExpr::var(vars[materials + i].clone()),
                LinExpr::term(run.clone(), Rational::from_int(rate)),
            ));
        }
        let c = CstObject::new(vars.clone(), [Conjunction::of(atoms)]);
        db.insert(
            Oid::named(format!("process_{j}")),
            "Process",
            [
                ("name", Value::Scalar(Oid::str(format!("process {j}")))),
                ("constraint", Value::Scalar(Oid::cst(c))),
            ],
        )
        .expect("process insert");
    }
    db
}

/// The E6 probe: the best achievable profit per process given stock
/// limits — a LyriC `MAX … SUBJECT TO` query string for a factory with
/// the given shape.
pub fn factory_query(materials: usize, products: usize) -> String {
    let all_vars: Vec<String> = (0..materials)
        .map(|i| format!("m{i}"))
        .chain((0..products).map(|i| format!("p{i}")))
        .collect();
    let profit: Vec<String> = (0..products)
        .map(|i| format!("{} * p{i}", i % 3 + 1))
        .collect();
    let stock: Vec<String> = (0..materials).map(|i| format!("m{i} <= 100")).collect();
    format!(
        "SELECT P, MAX({} SUBJECT TO (({}) | C AND {})) FROM Process P WHERE P.constraint[C]",
        profit.join(" + "),
        all_vars.join(","),
        stock.join(" AND ")
    )
}

/// A quantified region for the E8 workload: a random satisfiable
/// conjunction over 6 variables of which 4 are existentially bound —
/// projecting onto `(v0, v1)` via eager Fourier–Motzkin is genuinely
/// expensive (E5-scale), and costs the same whether or not a conjoined
/// query window made the object unsatisfiable; the LP feasibility test,
/// by contrast, handles the quantifiers natively in one solve.
///
/// Rejection-samples the random conjunctions so that the eliminated form
/// lands between 50 and 5000 atoms: enough Fourier–Motzkin work to be
/// the pipeline bottleneck, while excluding the unbounded outliers FM can
/// produce (benchmark E5 measures those directly). The sampling runs at
/// workload-construction time and is deterministic in the seed.
pub fn quantified_region(r: &mut StdRng) -> CstObject {
    loop {
        let conj = random_satisfiable_conjunction(r, 6, 18);
        let obj = CstObject::new(vec![Var::new("v0"), Var::new("v1")], [conj]);
        let eliminated = obj.eliminate_bound();
        let atoms: usize = eliminated.disjuncts().iter().map(|d| d.atoms().len()).sum();
        if (50..5000).contains(&atoms) {
            return obj;
        }
    }
}

// ------------------------------------------------------------ constraints

/// A random linear atom over `nvars` variables with small integer
/// coefficients.
pub fn random_atom(r: &mut StdRng, nvars: usize) -> Atom {
    let mut e = LinExpr::zero();
    for i in 0..nvars {
        let c = r.gen_range(-3..=3i64);
        if c != 0 {
            e = e + LinExpr::term(Var::new(format!("v{i}")), Rational::from_int(c));
        }
    }
    let rhs = LinExpr::from(r.gen_range(-10..=10i64));
    match r.gen_range(0..8) {
        0 => Atom::eq(e, rhs),
        1 => Atom::lt(e, rhs),
        _ => Atom::le(e, rhs),
    }
}

/// A random conjunction of `m` atoms over `nvars` variables.
pub fn random_conjunction(r: &mut StdRng, nvars: usize, m: usize) -> Conjunction {
    Conjunction::of((0..m).map(|_| random_atom(r, nvars)))
}

/// A random conjunction guaranteed to be satisfiable (bounded box plus
/// random halfspaces through a known interior point).
#[allow(clippy::needless_range_loop)]
pub fn random_satisfiable_conjunction(r: &mut StdRng, nvars: usize, m: usize) -> Conjunction {
    // Pick a center; keep atoms that the center satisfies (flip otherwise).
    let center: Vec<i64> = (0..nvars).map(|_| r.gen_range(-5..=5)).collect();
    let mut atoms = Vec::new();
    for i in 0..nvars {
        atoms.push(Atom::ge(
            LinExpr::var(Var::new(format!("v{i}"))),
            LinExpr::from(center[i] - 10),
        ));
        atoms.push(Atom::le(
            LinExpr::var(Var::new(format!("v{i}"))),
            LinExpr::from(center[i] + 10),
        ));
    }
    while atoms.len() < m {
        let a = random_atom(r, nvars);
        if a.op() == NormOp::Eq {
            continue;
        }
        let at_center: Rational = {
            let mut p = lyric_constraint::Assignment::new();
            for (i, c) in center.iter().enumerate() {
                p.insert(Var::new(format!("v{i}")), Rational::from_int(*c));
            }
            if a.eval(&p) {
                atoms.push(a);
                continue;
            }
            Rational::zero()
        };
        let _ = at_center;
        atoms.push(a.negate());
    }
    Conjunction::of(atoms)
}

/// A random DNF with `k` disjuncts of `m` atoms each, a fraction of which
/// are deliberately inconsistent or duplicated (the E4 canonical-form
/// workload: the paper's chosen simplification deletes exactly those).
pub fn random_dnf(r: &mut StdRng, k: usize, m: usize, nvars: usize) -> Dnf {
    let mut disjuncts = Vec::with_capacity(k);
    for i in 0..k {
        if i % 4 == 3 && !disjuncts.is_empty() {
            // Duplicate an earlier disjunct.
            let j = r.gen_range(0..disjuncts.len());
            let d: &Conjunction = &disjuncts[j];
            disjuncts.push(d.clone());
        } else if i % 5 == 4 {
            // Semantically (not syntactically) inconsistent disjunct.
            let v = LinExpr::var(Var::new("v0"));
            let mut d = random_satisfiable_conjunction(r, nvars, m.saturating_sub(2).max(1));
            d = d.and_atom(Atom::ge(v.clone(), LinExpr::from(100)));
            d = d.and_atom(Atom::le(v, LinExpr::from(-100)));
            disjuncts.push(d);
        } else {
            disjuncts.push(random_satisfiable_conjunction(r, nvars, m));
        }
    }
    Dnf::of(disjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric::execute;

    #[test]
    fn office_db_scales_and_answers() {
        let mut db = office_db(8, 7);
        assert_eq!(db.extent("Object_In_Room").len(), 8);
        assert_eq!(db.extent("Office_Object").len(), 8);
        let res = execute(&mut db, Q_LINEAR).unwrap();
        assert_eq!(res.rows.len(), 8);
        // Every answer is a nonempty region.
        for row in &res.rows {
            assert!(row[1].as_cst().unwrap().satisfiable());
        }
    }

    #[test]
    fn office_db_is_deterministic() {
        let a = office_db(4, 42);
        let b = office_db(4, 42);
        let mut ma = a.objects().map(|(o, _)| o.clone()).collect::<Vec<_>>();
        let mut mb = b.objects().map(|(o, _)| o.clone()).collect::<Vec<_>>();
        ma.sort();
        mb.sort();
        assert_eq!(ma, mb);
        let la = a.attr(&Oid::named("room_obj_0"), "location").unwrap();
        let lb = b.attr(&Oid::named("room_obj_0"), "location").unwrap();
        assert_eq!(la, lb);
    }

    #[test]
    fn pairwise_query_runs() {
        let mut db = office_db(6, 3);
        let res = execute(&mut db, Q_PAIRWISE).unwrap();
        // Overlap is symmetric: even count.
        assert_eq!(res.rows.len() % 2, 0);
    }

    #[test]
    fn scaling_db_probes_answer_exactly() {
        let mut db = scaling_db(64, 11);
        assert_eq!(db.extent("Item").len(), 64);
        let eq = execute(&mut db, &q_weight_eq(17)).unwrap();
        assert_eq!(eq.rows.len(), 1);
        assert_eq!(eq.rows[0][0], Oid::named("item_17"));
        let range = execute(&mut db, &q_weight_ge(60)).unwrap();
        assert_eq!(range.rows.len(), 4);
        let window = execute(&mut db, &q_region_window(0)).unwrap();
        assert!(!window.rows.is_empty() && window.rows.len() < 64);
    }

    #[test]
    fn factory_query_produces_profit() {
        let mut db = factory_db(4, 3, 2, 11);
        let q = factory_query(3, 2);
        let res = execute(&mut db, &q).unwrap();
        assert_eq!(res.rows.len(), 4);
        for row in &res.rows {
            match &row[1] {
                Oid::Rat(v) => assert!(!v.is_negative()),
                other => panic!("expected numeric profit, got {other}"),
            }
        }
    }

    #[test]
    fn random_satisfiable_conjunctions_are_satisfiable() {
        let mut r = rng(5);
        for _ in 0..20 {
            let c = random_satisfiable_conjunction(&mut r, 3, 8);
            assert!(c.satisfiable(), "{c}");
        }
    }

    #[test]
    fn random_dnf_contains_removable_disjuncts() {
        let mut r = rng(9);
        let d = random_dnf(&mut r, 12, 5, 3);
        let simplified = d.simplify();
        assert!(simplified.disjuncts().len() < d.disjuncts().len());
    }
}
