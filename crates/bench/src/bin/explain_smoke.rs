//! CI smoke check for the EXPLAIN subsystem: run the paper corpus under
//! `execute_explained_with_options` at 1 and 4 threads and assert, for
//! every report, the invariants the explain layer pins:
//!
//! * the JSON document passes [`validate_plan_json`] (schema + the
//!   self-time-sum tolerance baked into the validator);
//! * Σ per-node exclusive counters equals the run's `QueryResult::stats`
//!   **exactly**, and Σ per-node self time equals the trace's summed
//!   self time exactly (serial runs additionally never exceed the traced
//!   total);
//! * the root node's `rows_out` is the answer cardinality;
//! * with metrics enabled, the cost-profile store accumulates one site
//!   per (shape, node) pair and its `snapshot_json` parses back.
//!
//! Exits nonzero on any violation. Run with
//! `cargo run -p lyric-bench --bin explain_smoke --release`.

use lyric::trace::plan::validate_plan_json;
use lyric::ExecOptions;

const QUERIES: &[&str] = &[
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
     FROM Desk D WHERE D.extent[E]",
];

fn main() {
    let mut failures = 0usize;
    let db = lyric::paper_example::database();

    lyric::metrics::set_enabled(true);
    lyric::metrics::profile::clear();

    let mut reports = 0usize;
    let mut shapes = std::collections::BTreeSet::new();
    let mut expected_sites = 0usize;
    for threads in [1usize, 4] {
        let opts = ExecOptions::default().with_threads(threads);
        for (i, q) in QUERIES.iter().enumerate() {
            let label = format!("query {i} threads={threads}");
            let (res, report) = match lyric::execute_explained_with_options(&db, q, &opts) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("FAIL: {label}: explained run failed: {e}");
                    failures += 1;
                    continue;
                }
            };
            reports += 1;
            if shapes.insert(report.shape_hash) {
                expected_sites += report.plan.node_count();
            }

            let json = report.to_json().to_string();
            match validate_plan_json(&json) {
                Ok(n) if n == report.plan.node_count() => {}
                Ok(n) => {
                    eprintln!(
                        "FAIL: {label}: validator saw {n} nodes, plan has {}",
                        report.plan.node_count()
                    );
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("FAIL: {label}: plan JSON rejected: {e}");
                    failures += 1;
                }
            }

            let a = report.analysis.as_ref().expect("analyze ran");
            if a.summed_stats() != res.stats {
                eprintln!("FAIL: {label}: per-node counters do not sum to the query stats");
                failures += 1;
            }
            if a.summed_self_time() != a.total_self {
                eprintln!(
                    "FAIL: {label}: self times sum to {:?}, trace self total is {:?}",
                    a.summed_self_time(),
                    a.total_self
                );
                failures += 1;
            }
            if threads == 1 && a.total_self > a.total {
                eprintln!(
                    "FAIL: {label}: serial self-time sum {:?} exceeds traced total {:?}",
                    a.total_self, a.total
                );
                failures += 1;
            }
            if a.nodes[0].rows_out != res.rows.len() as u64 {
                eprintln!(
                    "FAIL: {label}: root rows_out {} != {} answer rows",
                    a.nodes[0].rows_out,
                    res.rows.len()
                );
                failures += 1;
            }
        }
    }
    println!(
        "validated {reports} explain reports over {} query shapes",
        shapes.len()
    );

    // The cost-profile store saw every (shape, node) site exactly once.
    let sites = lyric::metrics::profile::site_count();
    if sites != expected_sites {
        eprintln!("FAIL: profile store holds {sites} sites, expected {expected_sites}");
        failures += 1;
    }
    let snapshot = lyric::metrics::profile::snapshot_json();
    match lyric::trace::json::parse(&snapshot) {
        Ok(doc) => {
            let n = doc
                .get("profiles")
                .and_then(|p| p.as_arr())
                .map(|a| a.len())
                .unwrap_or(0);
            if n != expected_sites {
                eprintln!("FAIL: snapshot lists {n} profiles, expected {expected_sites}");
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL: profile snapshot is not valid JSON: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("explain smoke FAILED with {failures} violations");
        std::process::exit(1);
    }
    println!("explain smoke OK: {reports} reports, {sites} profile sites, all invariants hold");
}
