//! CI smoke check for parallel evaluation: serial-vs-parallel answer
//! equality on the paper queries, plus concurrent `execute_shared` calls
//! on one shared database. Exits nonzero on any mismatch.
//!
//! Run with `cargo run -p lyric-bench --bin parallel_smoke --release`.

use lyric::paper_example;
use lyric::{execute_shared, execute_with_options, ExecOptions};
use lyric_bench::workload::{self, Q_LINEAR};
use std::sync::Arc;

const QUERIES: &[&str] = &[
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
];

fn main() {
    let mut failures = 0usize;

    // (a) Serial vs parallel answers on the paper database.
    for q in QUERIES {
        let serial = {
            let mut db = paper_example::database();
            execute_with_options(&mut db, q, &ExecOptions::default().with_threads(1))
                .expect("paper query evaluates serially")
        };
        for threads in [2usize, 4, 8] {
            let mut db = paper_example::database();
            let par =
                execute_with_options(&mut db, q, &ExecOptions::default().with_threads(threads))
                    .expect("paper query evaluates in parallel");
            if par != serial {
                eprintln!("MISMATCH at {threads} threads for query: {q}");
                failures += 1;
            }
        }
    }
    println!(
        "paper queries: {} queries x 3 thread counts match serial",
        QUERIES.len()
    );

    // (b) Concurrent queries on one shared database.
    let db = Arc::new(workload::office_db(12, 42));
    let expected = execute_shared(&db, Q_LINEAR, &ExecOptions::default().with_threads(1))
        .expect("linear query evaluates");
    let mismatches = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let db = Arc::clone(&db);
                let expected = &expected;
                s.spawn(move || {
                    let opts = ExecOptions::default().with_threads(1 + i % 4);
                    (0..4)
                        .filter(|_| {
                            execute_shared(&db, Q_LINEAR, &opts)
                                .map(|r| r != *expected)
                                .unwrap_or(true)
                        })
                        .count()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum::<usize>()
    });
    if mismatches > 0 {
        eprintln!("MISMATCH: {mismatches} concurrent executions diverged");
        failures += mismatches;
    }
    println!("concurrent shared-db runs: 8 threads x 4 repeats match");

    if failures > 0 {
        eprintln!("parallel smoke FAILED with {failures} mismatches");
        std::process::exit(1);
    }
    println!("parallel smoke OK");
}
