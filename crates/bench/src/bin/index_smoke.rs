//! CI smoke check for the store index and the snapshot container:
//! build a scaling database, save it as a binary snapshot, reload it,
//! and verify (a) the snapshot round trip is byte-identical, (b) every
//! selective probe answers bit-identically with the index on and off on
//! both the original and the reloaded database, and (c) the accounting
//! holds — probes fire only when the index is on. Exits nonzero on any
//! mismatch.
//!
//! Run with `cargo run -p lyric-bench --bin index_smoke --release`.

use lyric::snapshot::SnapshotExt;
use lyric::{execute_shared, ExecOptions};
use lyric_bench::workload;
use lyric_oodb::Database;

fn main() {
    let mut failures = 0usize;
    let n = 5_000usize;
    let db = workload::scaling_db(n, 42);

    // (a) Snapshot round trip: save -> load -> save, byte-identical.
    let path = std::env::temp_dir().join(format!("lyric_index_smoke_{}.snap", std::process::id()));
    db.save_snapshot(&path).expect("snapshot saves");
    let reloaded = Database::load_snapshot(&path).expect("snapshot loads");
    let first = std::fs::read(&path).expect("snapshot readable");
    let again = lyric::snapshot::to_bytes(&reloaded).expect("reloaded database re-encodes");
    if first == again {
        println!("snapshot round trip: {} bytes, byte-identical", first.len());
    } else {
        eprintln!("MISMATCH: snapshot round trip is not byte-identical");
        failures += 1;
    }
    let _ = std::fs::remove_file(&path);

    // (b) Probe-vs-scan answer equality on both databases.
    let queries = [
        workload::q_weight_eq(1_234),
        workload::q_weight_ge(n as i64 - 25),
        workload::q_region_window(n as i64 / 2),
    ];
    let opts = |index: bool| ExecOptions::default().with_index(index);
    for (label, d) in [("original", &db), ("reloaded", &reloaded)] {
        for q in &queries {
            let on = execute_shared(d, q, &opts(true)).expect("indexed run evaluates");
            let off = execute_shared(d, q, &opts(false)).expect("scan run evaluates");
            if on.rows != off.rows {
                eprintln!("MISMATCH on {label} db: probe != scan for query: {q}");
                failures += 1;
            }
            // (c) Accounting: probes only when on; pruning actually bites
            // on these selective queries at n = 5000.
            if off.stats.index_probes != 0 {
                eprintln!("MISMATCH on {label} db: index off probed for query: {q}");
                failures += 1;
            }
            if on.stats.index_probes == 0 || on.stats.index_pruned == 0 {
                eprintln!("MISMATCH on {label} db: no probe/prune recorded for query: {q}");
                failures += 1;
            }
        }
    }
    println!(
        "probe vs scan: {} queries x 2 databases match exactly",
        queries.len()
    );

    if failures > 0 {
        eprintln!("index_smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("index_smoke: OK");
}
