//! CI smoke check for the live-introspection surfaces, end to end over
//! HTTP: start `lyric-serve` in-process on an ephemeral port and assert
//! that
//!
//! * `GET /version` and `GET /debug/caches` serve well-formed JSON and
//!   `/metrics` carries the `lyric_build_info` gauge with a `git_rev`
//!   label;
//! * unknown paths answer a JSON 404 that enumerates every endpoint;
//! * a deliberately slow query is *observable*: while a background
//!   thread drives it, `GET /debug/inflight` shows the registered slot
//!   (matched by query hash), and once the thread drains the registry
//!   is empty again;
//! * `GET /debug/flight` holds the completed queries afterwards;
//! * a budget abort with a dump directory configured writes exactly one
//!   `budget_abort` black-box file that parses and attributes the
//!   offender.
//!
//! Exits nonzero on any failure. Run with
//! `cargo run -p lyric-bench --bin flight_smoke --release`.

use lyric::engine::EngineBudget;
use lyric::ExecOptions;
use lyric_bench::workload::{self, Q_PAIRWISE};
use lyric_serve::{http_request, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// GET a path and parse the body as JSON, asserting the status.
fn get_json(addr: SocketAddr, path: &str, want_status: u16) -> lyric::trace::Json {
    let (status, body) = http_request(addr, "GET", path, "").expect("request succeeds");
    assert_eq!(status, want_status, "GET {path} answered {status}: {body}");
    lyric::trace::json::parse(&body)
        .unwrap_or_else(|e| panic!("GET {path} body is not valid JSON ({e:?}): {body}"))
}

fn main() {
    let mut failures = 0usize;
    lyric::metrics::build::register_build_info();
    lyric::flight::recorder::set_enabled(true);

    let db = Arc::new(workload::office_db(8, 42));

    // Surfaces server: generous budget, used for the scrape assertions
    // and the in-flight observation.
    let addr = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&db),
        ExecOptions::default()
            .with_budget(EngineBudget::unlimited().with_deadline(Duration::from_millis(300)))
            .with_boxes(false),
    )
    .expect("bind an ephemeral port")
    .spawn()
    .expect("start the accept loop");
    println!("serving on http://{addr}");

    // --- /version and build identity ------------------------------------
    let version = get_json(addr, "/version", 200);
    for key in ["version", "git_rev", "host_parallelism"] {
        if version.get(key).is_none() {
            eprintln!("FAIL: /version lacks {key}: {version}");
            failures += 1;
        }
    }
    let (status, metrics) = http_request(addr, "GET", "/metrics", "").expect("metrics reachable");
    assert_eq!(status, 200, "/metrics must answer 200");
    if !(metrics.contains("lyric_build_info") && metrics.contains("git_rev=\"")) {
        eprintln!("FAIL: /metrics lacks the lyric_build_info gauge with a git_rev label");
        failures += 1;
    }

    // --- JSON 404 enumerating the surface --------------------------------
    let not_found = get_json(addr, "/nope", 404);
    let endpoints = not_found
        .get("endpoints")
        .and_then(|e| e.as_arr())
        .map(|a| a.len())
        .unwrap_or(0);
    if endpoints != lyric_serve::ENDPOINTS.len() {
        eprintln!(
            "FAIL: 404 body enumerates {endpoints} endpoints, serve exports {}",
            lyric_serve::ENDPOINTS.len()
        );
        failures += 1;
    }

    // --- /debug/caches ----------------------------------------------------
    let caches = get_json(addr, "/debug/caches", 200);
    for key in ["generation", "sat", "entail", "boxes", "index"] {
        if caches.get(key).is_none() {
            eprintln!("FAIL: /debug/caches lacks {key}: {caches}");
            failures += 1;
        }
    }

    // --- in-flight observation -------------------------------------------
    // A worker drives the adversarial pairwise query (deadline-bounded by
    // the server's budget) until a concurrent /debug/inflight scrape has
    // seen its slot; afterwards the registry must drain to empty.
    let hash = format!("{:016x}", lyric::metrics::querylog::query_hash(Q_PAIRWISE));
    let seen = AtomicBool::new(false);
    std::thread::scope(|s| {
        let worker = s.spawn(|| {
            for _ in 0..40 {
                let _ = http_request(addr, "POST", "/query", Q_PAIRWISE);
                if seen.load(Ordering::Relaxed) {
                    break;
                }
            }
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline && !seen.load(Ordering::Relaxed) {
            let inflight = get_json(addr, "/debug/inflight", 200);
            let observed = inflight
                .get("queries")
                .and_then(|q| q.as_arr())
                .map(|slots| {
                    slots.iter().any(|slot| {
                        slot.get("query_hash").and_then(|h| h.as_str()) == Some(hash.as_str())
                    })
                })
                .unwrap_or(false);
            if observed {
                seen.store(true, Ordering::Relaxed);
            }
        }
        worker.join().expect("worker exits");
    });
    if !seen.load(Ordering::Relaxed) {
        eprintln!("FAIL: /debug/inflight never showed the running query");
        failures += 1;
    }
    let drained = get_json(addr, "/debug/inflight", 200);
    if drained.get("inflight").and_then(|v| v.as_f64()) != Some(0.0) {
        eprintln!("FAIL: registry not empty after drain: {drained}");
        failures += 1;
    }
    println!("in-flight slot observed over HTTP, registry drained");

    // --- /debug/flight holds the completions ------------------------------
    let flight = get_json(addr, "/debug/flight", 200);
    let held = flight
        .get("queries")
        .and_then(|q| q.as_arr())
        .map(|a| a.len())
        .unwrap_or(0);
    if held == 0 {
        eprintln!("FAIL: /debug/flight holds no completed queries: {flight}");
        failures += 1;
    }
    println!("/debug/flight holds {held} completed queries");

    // --- budget abort writes exactly one parsing dump ----------------------
    // A second server with a pivot budget the pairwise query must trip
    // (cf. tests/parallel_stress.rs); one POST, one abort, one dump.
    let abort_addr = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&db),
        ExecOptions::default()
            .with_budget(EngineBudget::unlimited().with_max_pivots(20))
            .with_boxes(false),
    )
    .expect("bind the abort server")
    .spawn()
    .expect("start the abort accept loop");
    let dir = std::env::temp_dir().join(format!("lyric-flight-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dump dir");
    lyric::flight::set_dump_dir(Some(dir.clone()));
    let (status, body) =
        http_request(abort_addr, "POST", "/query", Q_PAIRWISE).expect("abort query sent");
    lyric::flight::set_dump_dir(None);
    if status == 200 {
        eprintln!("FAIL: 20 pivots evaluated the pairwise query: {body}");
        failures += 1;
    }
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir readable")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().contains("-budget_abort-"))
                .unwrap_or(false)
        })
        .collect();
    if dumps.len() != 1 {
        eprintln!("FAIL: expected exactly one budget_abort dump, found {dumps:?}");
        failures += 1;
    } else {
        let text = std::fs::read_to_string(&dumps[0]).expect("dump readable");
        let doc = lyric::trace::json::parse(&text).expect("dump is valid JSON");
        assert_eq!(doc.get("trigger").unwrap().as_str(), Some("budget_abort"));
        let offender = doc.get("offender").expect("offender attributed");
        if offender.get("query_hash").and_then(|h| h.as_str()) != Some(hash.as_str()) {
            eprintln!("FAIL: dump offender is not the aborted query: {offender}");
            failures += 1;
        }
        println!("budget abort dumped to {}", dumps[0].display());
    }
    let _ = std::fs::remove_dir_all(&dir);

    if failures > 0 {
        eprintln!("flight smoke FAILED with {failures} inconsistencies");
        std::process::exit(1);
    }
    println!("flight smoke OK: introspection surfaces consistent end to end");
}
