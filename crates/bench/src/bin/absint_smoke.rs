//! CI smoke check for the interval abstract domain: the box computed for
//! a conjunction must *contain* everything the exact LP layer can prove
//! about it. Exits nonzero on any soundness violation.
//!
//! Three sweeps:
//!
//! * random conjunctions — an empty box implies LP-unsat, and for
//!   satisfiable conjunctions every per-variable LP extremum lies inside
//!   the box (an LP-unbounded direction forces an infinite box side);
//! * paper queries — every constraint-valued result cell's
//!   `interval_box` contains its `bounding_box` LP extrema;
//! * pruning — a box-disjoint query actually records `box_prunes`.
//!
//! Run with `cargo run -p lyric-bench --bin absint_smoke --release`.

use lyric::{execute_with_options, paper_example, ExecOptions};
use lyric_absint::Interval;
use lyric_arith::Rational;
use lyric_bench::workload;
use lyric_constraint::CstObject;

const SEEDS: u64 = 400;

const PAPER_QUERIES: &[&str] = &[
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
];

/// The box side must admit the LP extremum: a finite box bound may not
/// cut the true extremum off, and an LP-unbounded direction forces an
/// infinite box side.
fn side_sound(box_bound: Option<(&Rational, bool)>, lp: &Option<Rational>, lower: bool) -> bool {
    match (box_bound, lp) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some((b, _)), Some(m)) => {
            if lower {
                b <= m
            } else {
                b >= m
            }
        }
    }
}

/// Check one interval against the LP `(min, max)` pair for a variable.
fn interval_sound(iv: &Interval, lp: &(Option<Rational>, Option<Rational>)) -> bool {
    side_sound(iv.lo(), &lp.0, true) && side_sound(iv.hi(), &lp.1, false)
}

/// Box-vs-LP agreement for one constraint object. Returns an error
/// description on a violation, `Ok(checked_sides)` otherwise.
fn check_object(obj: &CstObject) -> Result<usize, String> {
    let bx = obj.interval_box();
    match obj.bounding_box() {
        None => Ok(0), // LP-unsat: any over-approximation is sound.
        Some(lp) => {
            if bx.is_empty() {
                return Err(format!("empty box but LP-satisfiable: {obj}"));
            }
            for (v, bounds) in obj.free().iter().zip(&lp) {
                let iv = bx.interval(v);
                if !interval_sound(&iv, bounds) {
                    return Err(format!(
                        "box {iv} for {v} excludes LP bounds {:?}..{:?} in {obj}",
                        bounds.0, bounds.1
                    ));
                }
            }
            Ok(2 * lp.len())
        }
    }
}

fn main() {
    let mut failures = 0usize;

    // (a) Random conjunctions: empty box => LP-unsat; otherwise the box
    // contains every per-variable LP extremum.
    let mut sides = 0usize;
    let mut empties = 0usize;
    for seed in 0..SEEDS {
        let mut r = workload::rng(seed);
        let c = workload::random_conjunction(&mut r, 3, 5);
        let free: Vec<_> = c.vars().into_iter().collect();
        let obj = CstObject::from_conjunction(free, c.clone());
        if c.interval_box().is_empty() {
            empties += 1;
            if c.satisfiable() {
                eprintln!("UNSOUND: seed {seed}: empty box but satisfiable: {c}");
                failures += 1;
            }
            continue;
        }
        match check_object(&obj) {
            Ok(n) => sides += n,
            Err(e) => {
                eprintln!("UNSOUND: seed {seed}: {e}");
                failures += 1;
            }
        }
    }
    println!(
        "random conjunctions: {SEEDS} seeds, {empties} box-empty (all LP-confirmed), {sides} LP extrema inside their boxes"
    );

    // (b) Paper queries: every constraint cell's box contains its LP
    // bounding box.
    let mut cells = 0usize;
    for q in PAPER_QUERIES {
        let mut db = paper_example::database();
        let result = execute_with_options(&mut db, q, &ExecOptions::default())
            .expect("paper query evaluates");
        for row in &result.rows {
            for cell in row {
                if let Some(cst) = cell.as_cst() {
                    match check_object(cst) {
                        Ok(_) => cells += 1,
                        Err(e) => {
                            eprintln!("UNSOUND: paper query cell: {e}");
                            failures += 1;
                        }
                    }
                }
            }
        }
    }
    println!("paper queries: {cells} constraint cells box-vs-LP sound");

    // (c) Pruning fires: a query whose window is disjoint from every
    // stored extent must record box prunes and return no rows.
    let mut db = paper_example::database();
    let q = "SELECT D FROM Desk D WHERE D.extent[E] AND (E(w,z) AND w >= 1000 AND z >= 1000)";
    let result = execute_with_options(&mut db, q, &ExecOptions::default().with_boxes(true))
        .expect("disjoint query evaluates");
    if !result.rows.is_empty() {
        eprintln!("MISMATCH: disjoint query returned rows");
        failures += 1;
    }
    if result.stats.box_prunes == 0 {
        eprintln!("MISMATCH: disjoint query did not prune: {}", result.stats);
        failures += 1;
    }
    println!(
        "pruning: disjoint query pruned {} of {} box checks",
        result.stats.box_prunes, result.stats.box_checks
    );

    if failures > 0 {
        eprintln!("absint_smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("absint_smoke: ok");
}
