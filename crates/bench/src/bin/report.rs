//! The experiment harness: regenerates every quantitative claim of the
//! paper as a markdown table (the source for EXPERIMENTS.md).
//!
//! Run with `cargo run -p lyric-bench --bin report --release`.

use lyric::paper_example::{self, box2};
use lyric::trace::Json;
use lyric::{execute, execute_with_options, parse_query, ExecOptions};
use lyric_bench::gridrep::Grid;
use lyric_bench::workload::{self, Q_LINEAR, Q_PAIRWISE};
use lyric_constraint::{Conjunction, CstObject, Var};
use lyric_flatrel::FlatDb;
use lyric_oodb::{Database, Oid};
use std::time::{Duration, Instant};

use lyric_algebra::{eval as alg_eval, optimize as alg_optimize, Func, Value as AlgValue};

fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

/// Where the machine-readable companion of the markdown report lands.
const REPORT_JSON: &str = "BENCH_report.json";

fn main() {
    println!("# LyriC reproduction — experiment report\n");
    let mut report: Vec<Json> = Vec::new();
    record(&mut report, "e1_paper_queries", e1);
    record(&mut report, "e2_data_complexity", || void(e2));
    record(&mut report, "e3_constraint_vs_adhoc", || void(e3));
    record(&mut report, "e4_canonical_forms", || void(e4));
    record(&mut report, "e5_projection", || void(e5));
    record(&mut report, "e6_factory_lp", || void(e6));
    record(&mut report, "e7_flat_translation", || void(e7));
    record(&mut report, "e8_algebra_optimizer", || void(e8));
    record(&mut report, "e9_telemetry_budgets", || void(e9));
    record(&mut report, "e10_hot_spans", e10);
    record(&mut report, "e11_parallel_speedup", e11);
    record(&mut report, "e12_metrics_overhead", e12);
    record(&mut report, "e13_arith_fast_path", e13);
    record(&mut report, "e14_box_pruning", e14);
    record(&mut report, "e15_explain_overhead", e15);
    record(&mut report, "e16_store_index", e16);
    record(&mut report, "e17_flight_overhead", e17);
    let doc = Json::obj([
        (
            "host_parallelism",
            Json::int(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        (
            "cargo_profile",
            Json::str(if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }),
        ),
        ("git_rev", git_rev().map_or(Json::Null, Json::str)),
        ("experiments", Json::Arr(report)),
    ]);
    match std::fs::write(REPORT_JSON, doc.to_string()) {
        Ok(()) => eprintln!("machine-readable report written to {REPORT_JSON}"),
        Err(e) => eprintln!("could not write {REPORT_JSON}: {e}"),
    }
}

/// The short git revision the report was generated from, if the working
/// tree is a git checkout with `git` on PATH.
fn git_rev() -> Option<String> {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

/// Run one experiment, timing it and collecting its JSON detail (if any)
/// into the machine-readable report.
fn record(report: &mut Vec<Json>, name: &str, f: impl FnOnce() -> Json) {
    let t = Instant::now();
    let detail = f();
    let mut entry = vec![
        ("experiment".to_string(), Json::str(name)),
        (
            "duration_ms".to_string(),
            Json::Num(t.elapsed().as_secs_f64() * 1e3),
        ),
    ];
    if !matches!(detail, Json::Null) {
        entry.push(("detail".to_string(), detail));
    }
    report.push(Json::Obj(entry));
}

fn void(f: impl FnOnce()) -> Json {
    f();
    Json::Null
}

/// All ten counters of an [`EngineStats`](lyric::EngineStats) as a JSON
/// object, in declaration order.
fn stats_json(s: &lyric::EngineStats) -> Json {
    Json::Obj(
        lyric::trace::stats::COUNTER_NAMES
            .into_iter()
            .zip(s.counters())
            .map(|(n, v)| (n.to_string(), Json::int(v)))
            .collect(),
    )
}

/// The §4.1 worked-example queries shared by E1 (answers/timings) and E10
/// (hot-span aggregation).
fn paper_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "q1 drawer extents",
            "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
        ),
        (
            "q2 extent in room coords",
            "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
             FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
        ),
        (
            "q4 entailment (middle drawer)",
            "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
             FROM Desk DSK
             WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
        ),
        (
            "q5 drawer inside room (sat)",
            "SELECT DSK FROM Object_In_Room O, Desk DSK
             WHERE O.catalog_object[DSK] AND O.location[L]
               AND DSK.drawer_center[C] AND DSK.translation[D]
               AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
               AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
                    AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
                    AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
        ),
        (
            "LP operators",
            "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
             FROM Desk D WHERE D.extent[E]",
        ),
    ]
}

/// E1 — the §4.1 worked examples, with answer checks against the paper.
fn e1() -> Json {
    println!("## E1 — §4.1 worked example queries (Figure 2 instance)\n");
    println!("| query | rows | time (ms) | answer check |");
    println!("|---|---|---|---|");
    let mut detail: Vec<Json> = Vec::new();
    for (label, q) in paper_queries() {
        let (ms, res) = time_ms(5, || {
            let mut db = paper_example::database();
            execute(&mut db, q).expect("paper query evaluates")
        });
        let check = match label {
            "q1 drawer extents" => {
                let got = res.rows[0][0].as_cst().expect("cst answer");
                if got.denotes_same(&box2("w", "z", -1, 1, -1, 1)) {
                    "matches paper: ((w,z) | -1<=w<=1 ∧ -1<=z<=1)"
                } else {
                    "MISMATCH"
                }
            }
            "q2 extent in room coords" => {
                let desk_row = res
                    .rows
                    .iter()
                    .find(|r| r[0] == Oid::named("standard_desk"))
                    .expect("desk row");
                let got = desk_row[1].as_cst().expect("cst answer");
                if got.denotes_same(&box2("u", "v", 2, 10, 2, 6)) {
                    "matches paper: ((u,v) | 2<=u<=10 ∧ 2<=v<=6)"
                } else {
                    "MISMATCH"
                }
            }
            "q4 entailment (middle drawer)" => {
                if res.rows.is_empty() {
                    "matches paper semantics (drawer at p=-2 fails |= p=0)"
                } else {
                    "MISMATCH"
                }
            }
            "q5 drawer inside room (sat)" => {
                if res.rows.len() == 1 {
                    "desk found (drawer placeable strictly inside 20x10)"
                } else {
                    "MISMATCH"
                }
            }
            _ => "max w+z = 6, min w = -4",
        };
        println!("| {label} | {} | {ms:.2} | {check} |", res.rows.len());
        detail.push(Json::obj([
            ("query", Json::str(label)),
            ("rows", Json::int(res.rows.len() as u64)),
            ("best_ms", Json::Num(ms)),
            ("check", Json::str(check)),
            ("stats", stats_json(&res.stats)),
        ]));
    }
    println!();
    Json::obj([("queries", Json::Arr(detail))])
}

/// E2 — PTIME data complexity (§5): evaluation time vs database size.
fn e2() {
    println!("## E2 — data complexity (§5 PTIME claim)\n");
    println!("| n objects | linear query (ms) | rows | pairwise query (ms) | rows |");
    println!("|---|---|---|---|---|");
    let mut pts_lin: Vec<(f64, f64)> = Vec::new();
    let mut pts_pair: Vec<(f64, f64)> = Vec::new();
    for &n in &[8usize, 16, 32, 64, 128] {
        let db = workload::office_db(n, 42);
        let (ms_lin, res_lin) = time_ms(3, || {
            let mut d = db.clone();
            execute(&mut d, Q_LINEAR).expect("linear query")
        });
        let (ms_pair, res_pair) = if n <= 64 {
            let (m, r) = time_ms(2, || {
                let mut d = db.clone();
                execute(&mut d, Q_PAIRWISE).expect("pairwise query")
            });
            (Some(m), Some(r))
        } else {
            (None, None)
        };
        pts_lin.push(((n as f64).ln(), ms_lin.ln()));
        if let Some(m) = ms_pair {
            pts_pair.push(((n as f64).ln(), m.ln()));
        }
        println!(
            "| {n} | {ms_lin:.1} | {} | {} | {} |",
            res_lin.rows.len(),
            ms_pair.map_or("—".into(), |m| format!("{m:.1}")),
            res_pair.map_or("—".into(), |r| r.rows.len().to_string()),
        );
    }
    println!(
        "\nfitted log–log slope: linear query ≈ {:.2} (expect ~1), pairwise ≈ {:.2} (expect ~2) — polynomial, as §5 claims.\n",
        slope(&pts_lin),
        slope(&pts_pair)
    );
}

fn slope(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// E3 — constraint engine vs ad hoc rasterized representation (§1.1).
fn e3() {
    println!("## E3 — constraint ops vs ad hoc grid representation (§1.1 claim)\n");
    println!("| dims | resolution | cells | grid build (ms) | grid intersect+empty (ms) | grid contains (ms) | constraint and+sat (ms) | constraint implies (ms) |");
    println!("|---|---|---|---|---|---|---|---|");
    for &(dims, resolutions) in &[
        (2usize, &[32usize, 128, 512][..]),
        (3, &[16, 32, 64][..]),
        (4, &[8, 16, 24][..]),
    ] {
        let axes: Vec<&str> = ["x", "y", "z", "t"][..dims].to_vec();
        let mk_box = |lo: i64, hi: i64| {
            let atoms = axes.iter().flat_map(|a| {
                [
                    lyric_constraint::Atom::ge(
                        lyric_constraint::LinExpr::var(Var::new(*a)),
                        lyric_constraint::LinExpr::from(lo),
                    ),
                    lyric_constraint::Atom::le(
                        lyric_constraint::LinExpr::var(Var::new(*a)),
                        lyric_constraint::LinExpr::from(hi),
                    ),
                ]
            });
            CstObject::from_conjunction(
                axes.iter().map(|a| Var::new(*a)).collect(),
                Conjunction::of(atoms),
            )
        };
        let a = mk_box(0, 10);
        let b = mk_box(5, 15);
        let inner = mk_box(6, 9);
        let (c_and, _) = time_ms(20, || a.and(&b).satisfiable());
        let (c_imp, _) = time_ms(20, || inner.implies(&a));
        for &res in resolutions {
            let (g_build, ga) = time_ms(2, || Grid::rasterize(&a, 0, 16, res));
            let gb = Grid::rasterize(&b, 0, 16, res);
            let gi = Grid::rasterize(&inner, 0, 16, res);
            let (g_and, _) = time_ms(5, || ga.intersect(&gb).is_empty());
            let (g_con, _) = time_ms(5, || ga.contains(&gi));
            println!(
                "| {dims} | {res} | {} | {g_build:.3} | {g_and:.3} | {g_con:.3} | {c_and:.3} | {c_imp:.3} |",
                ga.num_cells()
            );
        }
    }
    println!("\nconstraint-side cost is resolution- and dimension-independent. The grid's per-op cost scales as res^d and its *construction* (the cost any update to a stored object pays) is orders of magnitude slower — the §1.1 claim.\n");
}

/// E4 — canonical forms: the paper's cheap simplification vs full
/// LP-based redundancy removal (§3.1).
fn e4() {
    println!("## E4 — canonical forms (§3.1): cheap simplify vs strong canonical\n");
    println!("| disjuncts in | cheap simplify (ms) | disjuncts out | strong simplify (ms) | disjuncts out |");
    println!("|---|---|---|---|---|");
    for &k in &[8usize, 16, 32, 64] {
        let mut r = workload::rng(100 + k as u64);
        let dnf = workload::random_dnf(&mut r, k, 6, 3);
        let input = dnf.disjuncts().len();
        let (cheap_ms, cheap) = time_ms(3, || dnf.simplify());
        let (strong_ms, strong) = time_ms(1, || dnf.strong_simplify());
        println!(
            "| {input} | {cheap_ms:.2} | {} | {strong_ms:.2} | {} |",
            cheap.disjuncts().len(),
            strong.disjuncts().len()
        );
    }
    println!("\nthe paper's chosen canonical form (inconsistent-disjunct + duplicate deletion) is the cheap column; full redundancy pruning costs markedly more for modest extra compression (detecting redundant disjuncts is co-NP-complete, §3.1).\n");
}

/// E5 — restricted vs unrestricted projection (§3.1): Fourier–Motzkin
/// growth as a function of eliminated variables.
fn e5() {
    println!("## E5 — projection growth (§3.1 restricted-projection rationale)\n");
    println!("| vars eliminated | within §3.1 restriction? | time (ms) | atoms in | atoms out |");
    println!("|---|---|---|---|---|");
    let nvars = 9;
    let m = 24;
    let mut r = workload::rng(7);
    let conj = workload::random_satisfiable_conjunction(&mut r, nvars, m);
    let all_vars: Vec<Var> = (0..nvars).map(|i| Var::new(format!("v{i}"))).collect();
    for k in [1usize, 2, 3, 4, 5] {
        let victims: Vec<&Var> = all_vars.iter().take(k).collect();
        let restricted = k <= 1 || nvars - k <= 1;
        let (ms, out) = time_ms(2, || {
            conj.eliminate_all(victims.iter().copied())
                .expect("no disequations")
        });
        println!(
            "| {k} | {} | {ms:.2} | {} | {} |",
            if restricted { "yes" } else { "no" },
            conj.atoms().len(),
            out.atoms().len()
        );
    }
    println!("\neach single step is polynomial; composing many steps grows the representation — exactly why §3.1 restricts conjunctive/disjunctive projection to one or all-but-one variables and keeps general quantification lazy.\n");
}

/// E6 — the §1.2 LP application realm: factory MAX queries.
fn e6() {
    println!("## E6 — factory LP workload (§1.2, MAX … SUBJECT TO)\n");
    println!("| processes | materials | products | query time (ms) | rows |");
    println!("|---|---|---|---|---|");
    for &(np, nm, npr) in &[(2usize, 2usize, 2usize), (8, 4, 3), (16, 6, 4), (32, 8, 6)] {
        let db = workload::factory_db(np, nm, npr, 17);
        let q = workload::factory_query(nm, npr);
        let parsed = parse_query(&q).expect("factory query parses");
        let (ms, res) = time_ms(3, || {
            let mut d = db.clone();
            lyric::execute_parsed(&mut d, &parsed).expect("factory query evaluates")
        });
        println!("| {np} | {nm} | {npr} | {ms:.1} | {} |", res.rows.len());
    }
    println!();
}

/// E7 — the §5 naive translation: direct object evaluation vs flat
/// constraint algebra, with answer equivalence.
fn e7() {
    println!("## E7 — direct evaluation vs §5 flat translation\n");
    println!("| n objects | direct (ms) | flat translate (ms) | flat plan (ms) | answers equal |");
    println!("|---|---|---|---|---|");
    for &n in &[8usize, 32, 96] {
        let db = workload::office_db(n, 42);
        let (direct_ms, direct) = time_ms(3, || {
            let mut d = db.clone();
            execute(&mut d, Q_LINEAR).expect("direct query")
        });
        let (tr_ms, flat) = time_ms(3, || FlatDb::from_database(&db));
        let (plan_ms, flat_regions) = time_ms(3, || flat_linear_plan(&flat));
        let equal = answers_match(&db, &direct, &flat_regions);
        println!(
            "| {n} | {direct_ms:.1} | {tr_ms:.1} | {plan_ms:.1} | {} |",
            equal
        );
    }
    println!("\nthe flat plan computes the same per-object regions as the direct evaluator — the §5 translation argument — at a comparable polynomial cost.\n");
}

/// The flat-algebra version of [`Q_LINEAR`]: per room object, its catalog
/// extent translated to room coordinates.
fn flat_linear_plan(flat: &FlatDb) -> Vec<(Oid, CstObject)> {
    let oir = flat.extent("Object_In_Room").expect("extent relation");
    let loc = flat
        .attr("Object_In_Room", "location")
        .expect("location relation");
    let cat = flat
        .attr("Object_In_Room", "catalog_object")
        .expect("catalog relation");
    let ext = flat
        .attr("Office_Object", "extent")
        .expect("extent relation")
        .rename_col("obj", "cat_obj");
    let tr = flat
        .attr("Office_Object", "translation")
        .expect("translation relation")
        .rename_col("obj", "cat_obj");
    // OIR ⋈ location ⋈ catalog ⋈ extent ⋈ translation; constraint
    // variables x,y (location/translation) and w,z (extent/translation)
    // unify by name — the §3.2 natural-join analogy.
    let joined = oir
        .join(loc, &[("obj", "obj")])
        .join(cat, &[("obj", "obj")])
        .rename_col("val", "cat_obj")
        .join(&ext, &[("cat_obj", "cat_obj")])
        .join(&tr, &[("cat_obj", "cat_obj")]);
    let projected = joined.project(&["obj"], &[Var::new("u"), Var::new("v")]);
    // Group disjuncts per object into a CST object.
    let mut out: Vec<(Oid, CstObject)> = Vec::new();
    for t in projected.tuples() {
        let obj = t.values[0].clone();
        match out.iter_mut().find(|(o, _)| *o == obj) {
            Some((_, acc)) => {
                *acc = acc.or(&CstObject::from_conjunction(
                    vec![Var::new("u"), Var::new("v")],
                    t.constraint.clone(),
                ));
            }
            None => out.push((
                obj,
                CstObject::from_conjunction(
                    vec![Var::new("u"), Var::new("v")],
                    t.constraint.clone(),
                ),
            )),
        }
    }
    out
}

/// E8 (ablation) — the §5 future-work constraint algebra.
///
/// Two measurements. (a) Engine level: the effect of the optimizer's
/// filter-hoist rewrite in isolation — "eliminate quantifiers, then test
/// feasibility" vs "test feasibility, eliminate only survivors" on
/// window-intersected quantified regions. (b) Algebra level: the same
/// pipeline through `lyric-algebra` values, whose constraint oids
/// canonicalize on construction — canonicalization already prunes
/// infeasible intermediates (it is the paper's §3.1 "deletion of
/// inconsistent disjuncts"), so the rewrite's residual win there is
/// small. The finding: the paper's canonical-form-on-oid-creation design
/// subsumes feasibility pushdown for free.
fn e8() {
    println!("## E8 — constraint-algebra optimizer ablation (§5 future work)\n");
    let window = {
        use lyric_constraint::{Atom, LinExpr};
        CstObject::from_conjunction(
            vec![Var::new("v0"), Var::new("v1")],
            Conjunction::of([
                Atom::ge(LinExpr::var(Var::new("v0")), LinExpr::from(14)),
                Atom::le(LinExpr::var(Var::new("v0")), LinExpr::from(15)),
                Atom::ge(LinExpr::var(Var::new("v1")), LinExpr::from(14)),
                Atom::le(LinExpr::var(Var::new("v1")), LinExpr::from(15)),
            ]),
        )
    };
    println!("(a) engine level — eliminate-then-filter vs filter-then-eliminate:\n");
    println!("| regions | survivors | eliminate first (ms) | filter first (ms) | speedup |");
    println!("|---|---|---|---|---|");
    for &n in &[8usize, 16, 32] {
        let mut r = workload::rng(99);
        let regions: Vec<CstObject> = (0..n)
            .map(|_| workload::quantified_region(&mut r))
            .collect();
        let windowed: Vec<CstObject> = regions.iter().map(|c| c.and(&window)).collect();
        let (naive_ms, kept_naive) = time_ms(2, || {
            windowed
                .iter()
                .map(|c| c.eliminate_bound())
                .filter(|c| c.satisfiable())
                .count()
        });
        let (opt_ms, kept_opt) = time_ms(2, || {
            windowed
                .iter()
                .filter(|c| c.satisfiable())
                .map(|c| c.eliminate_bound())
                .collect::<Vec<_>>()
                .len()
        });
        assert_eq!(kept_naive, kept_opt);
        println!(
            "| {n} | {kept_naive} | {naive_ms:.1} | {opt_ms:.1} | {:.2}x |",
            naive_ms / opt_ms
        );
    }
    println!();
    println!("(b) algebra level — the same plan through canonicalizing constraint oids:\n");
    println!("| regions | survivors | naive (ms) | optimized (ms) | speedup |");
    println!("|---|---|---|---|---|");
    let naive = Func::Compose(vec![
        Func::Filter(Box::new(Func::Satisfiable)),
        Func::ApplyToAll(Box::new(Func::EliminateBound)),
        Func::ApplyToAll(Box::new(Func::CstAndConst(window))),
    ]);
    let optimized = alg_optimize(&naive);
    let db = Database::new(lyric_oodb::Schema::new()).expect("empty schema");
    for &n in &[8usize, 16, 32] {
        let mut r = workload::rng(99);
        let input = AlgValue::Coll(
            (0..n)
                .map(|_| AlgValue::cst(workload::quantified_region(&mut r)))
                .collect(),
        );
        let (naive_ms, out) = time_ms(2, || alg_eval(&naive, &db, &input).expect("evaluates"));
        let (opt_ms, out2) = time_ms(2, || alg_eval(&optimized, &db, &input).expect("evaluates"));
        let survivors = out.as_coll().map(<[AlgValue]>::len).unwrap_or(0);
        assert_eq!(
            survivors,
            out2.as_coll().map(<[AlgValue]>::len).unwrap_or(0)
        );
        println!(
            "| {n} | {survivors} | {naive_ms:.1} | {opt_ms:.1} | {:.2}x |",
            naive_ms / opt_ms
        );
    }
    println!("\nat the engine level, hoisting the feasibility test ahead of eager Fourier–Motzkin elimination skips the expensive step on every window-rejected region. At the algebra level the oid representation canonicalizes every intermediate (§3.1's inconsistent-disjunct deletion), which already collapses infeasible regions to ⊥ before elimination — the paper's canonical-form design subsumes the pushdown.\n");
}

/// E9 — engine telemetry and budget governance: the work profile behind
/// each query (from `QueryResult::stats`) and the budget mechanism
/// stopping an adversarial blowup.
fn e9() {
    use lyric_constraint::Var;
    println!("## E9 — engine telemetry and evaluation budgets\n");
    println!("(a) work profile of the E2 linear query, per database size:\n");
    println!(
        "| n objects | lp runs | pivots | fm atoms | disjuncts | sat checks | cache hit rate |"
    );
    println!("|---|---|---|---|---|---|---|");
    for &n in &[8usize, 32, 128] {
        let db = workload::office_db(n, 42);
        let mut d = db.clone();
        let res = execute(&mut d, Q_LINEAR).expect("linear query");
        let s = res.stats;
        println!(
            "| {n} | {} | {} | {} | {} | {} | {} |",
            s.lp_runs,
            s.pivots,
            s.fm_atoms,
            s.disjuncts_produced,
            s.sat_checks,
            s.cache_hit_rate()
                .map_or("—".into(), |r| format!("{:.0}%", r * 100.0)),
        );
    }
    println!("\n(b) budget governance — eliminating all-but-one variable of a dense 40-atom conjunction (outside the §3.1 restriction) under a 10k FM-atom budget:\n");
    let mut r = workload::rng(4242);
    let conj = workload::random_satisfiable_conjunction(&mut r, 10, 40);
    let vars: Vec<Var> = (0..9).map(|i| Var::new(format!("v{i}"))).collect();
    let (ms, outcome) = time_ms(1, || {
        lyric::engine::run_with(
            lyric::EngineBudget::unlimited().with_max_fm_atoms(10_000),
            false,
            || conj.eliminate_all(vars.iter()).map(|c| c.atoms().len()),
        )
    });
    match outcome {
        Ok((eliminated, stats)) => println!(
            "completed within budget in {ms:.1} ms: {:?} atoms out, {} fm atoms produced",
            eliminated.map(|n| n.to_string()),
            stats.fm_atoms
        ),
        Err(exceeded) => println!(
            "aborted in {ms:.1} ms: {exceeded} — the engine degrades gracefully instead of exhausting memory"
        ),
    }
    println!("\nthe telemetry quantifies the paper's tractability story (polynomially growing LP work, §5) and the budget enforces it against the exponential corners §3.1 excludes.\n");
}

/// E10 — span aggregation: the hot evaluation sites across the §4.1
/// queries, from per-query traces folded by (kind, label, source range).
fn e10() -> Json {
    println!("## E10 — hot spans across the §4.1 queries (trace aggregation)\n");
    let mut traces = Vec::new();
    for (_, q) in paper_queries() {
        let mut db = paper_example::database();
        let (_, trace) = lyric::execute_traced(&mut db, q, lyric::EngineBudget::unlimited())
            .expect("paper query evaluates");
        traces.push(trace);
    }
    let total: Duration = traces.iter().map(lyric::trace::Trace::total_duration).sum();
    let rows = lyric::trace::hot_spans(&traces);
    println!("| span site | count | self (ms) | total (ms) | share | counters |");
    println!("|---|---|---|---|---|---|");
    const TOP: usize = 12;
    let mut detail: Vec<Json> = Vec::new();
    for r in rows.iter().take(TOP) {
        let site = if r.label.is_empty() {
            r.kind.name().to_string()
        } else {
            format!("{} {}", r.kind.name(), r.label)
        };
        let counters: Vec<String> = r
            .stats
            .nonzero_counters()
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        println!(
            "| {site} | {} | {:.3} | {:.3} | {:.1}% | {} |",
            r.count,
            r.self_time.as_secs_f64() * 1e3,
            r.total.as_secs_f64() * 1e3,
            r.percent_of(total),
            if counters.is_empty() {
                "—".to_string()
            } else {
                counters.join(" ")
            },
        );
        detail.push(Json::obj([
            ("site", Json::str(site)),
            ("count", Json::int(r.count)),
            ("self_ms", Json::Num(r.self_time.as_secs_f64() * 1e3)),
            ("total_ms", Json::Num(r.total.as_secs_f64() * 1e3)),
            ("share_pct", Json::Num(r.percent_of(total))),
            ("stats", stats_json(&r.stats)),
        ]));
    }
    if rows.len() > TOP {
        println!("\n(top {TOP} of {} sites by self time)", rows.len());
    }
    println!("\nsites fold every span with the same (kind, label, source range) across all five traces — the same WHERE predicate over many bindings becomes one row. Constraint checks and LP solves carry the counters, matching the §5 cost story.\n");
    Json::obj([("hot_spans", Json::Arr(detail))])
}

/// E11 — parallel evaluation: the E2 pairwise workload (tracing off)
/// at 1/2/4/8 evaluation threads, with per-thread-count answer equality
/// against the serial run. Speedups are relative to the 1-thread run on
/// *this* host — on a single-core machine they are ~1.0x by construction,
/// so the host's available parallelism is recorded alongside.
fn e11() -> Json {
    println!("## E11 — parallel evaluation (work-stealing pool, deterministic merge)\n");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host available parallelism: {host}\n");
    println!("| threads | pairwise query, n=32 (ms) | speedup vs 1 thread | answers == serial |");
    println!("|---|---|---|---|");
    let db = workload::office_db(32, 42);
    let serial = {
        let mut d = db.clone();
        execute_with_options(&mut d, Q_PAIRWISE, &ExecOptions::default().with_threads(1))
            .expect("pairwise query evaluates")
    };
    let mut base_ms = None;
    let mut detail: Vec<Json> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let opts = ExecOptions::default().with_threads(threads);
        let (ms, res) = time_ms(3, || {
            let mut d = db.clone();
            execute_with_options(&mut d, Q_PAIRWISE, &opts).expect("pairwise query evaluates")
        });
        let base = *base_ms.get_or_insert(ms);
        let equal = res == serial;
        println!("| {threads} | {ms:.1} | {:.2}x | {equal} |", base / ms);
        detail.push(Json::obj([
            ("threads", Json::int(threads as u64)),
            ("best_ms", Json::Num(ms)),
            ("speedup", Json::Num(base / ms)),
            ("answers_equal_serial", Json::Bool(equal)),
        ]));
    }
    println!("\nanswers are bit-identical at every thread count (work is handed out by index and merged in index order). Speedup scales with the host's cores; regenerate with `cargo run -p lyric-bench --bin report --release` to measure this machine.\n");
    Json::obj([
        ("host_parallelism", Json::int(host as u64)),
        ("runs", Json::Arr(detail)),
    ])
}

/// E12 — metrics overhead: the identical warmed workload with the
/// process-lifetime metric layer enabled (the default) vs disabled
/// (`set_enabled(false)`, the same switch as `LYRIC_METRICS=0`). The
/// enabled path adds striped-atomic counter flushes and one histogram
/// observation per query; the acceptance bar is < 5% overhead.
fn e12() -> Json {
    println!("## E12 — metrics overhead (enabled vs disabled)\n");
    let db = workload::office_db(24, 42);
    let opts = ExecOptions::default().with_threads(2);
    let run = || {
        lyric::execute_shared(&db, Q_LINEAR, &opts).expect("linear query evaluates");
    };
    run(); // warm the memo caches so both modes measure steady state
           // Alternate modes batch by batch so clock drift and cache pressure
           // hit both sides equally; keep the best-of-batch per mode.
    let (batches, reps) = (6, 5);
    let mut enabled_ms = f64::INFINITY;
    let mut disabled_ms = f64::INFINITY;
    for _ in 0..batches {
        lyric::metrics::set_enabled(true);
        enabled_ms = enabled_ms.min(time_ms(reps, run).0);
        lyric::metrics::set_enabled(false);
        disabled_ms = disabled_ms.min(time_ms(reps, run).0);
    }
    lyric::metrics::set_enabled(true);
    let overhead_pct = (enabled_ms / disabled_ms - 1.0) * 100.0;
    println!(
        "| mode | linear query, n=24 (best of {} runs, ms) |",
        batches * reps
    );
    println!("|---|---|");
    println!("| metrics enabled | {enabled_ms:.2} |");
    println!("| metrics disabled | {disabled_ms:.2} |");
    let verdict = if overhead_pct <= 0.0 {
        "below the measurement noise floor".to_string()
    } else {
        format!("{overhead_pct:.1}%")
    };
    println!(
        "\nmeasured overhead: {verdict} (acceptance bar: < 5%). The recording path is a handful of relaxed striped-atomic adds plus one histogram observation per query, flushed once at engine-context teardown — not per operation.\n"
    );
    Json::obj([
        ("enabled_best_ms", Json::Num(enabled_ms)),
        ("disabled_best_ms", Json::Num(disabled_ms)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("bar_pct", Json::Num(5.0)),
    ])
}

/// E13 — small-coefficient arithmetic fast path: the identical E2/E3/E8
/// workloads with the two-tier `Rational` representation on (inline
/// `i64/i64` with transparent BigInt promotion) vs off (every value in
/// the all-BigInt tier, the pre-fast-path engine). With the memo cache
/// disabled both sides do exactly the same logical work — the semantic
/// counters are equal by the `arith_differential` test suite — so the
/// ratio isolates the representation cost alone. Tier counters come from
/// the per-query [`EngineStats`](lyric::EngineStats).
fn e13() -> Json {
    println!("## E13 — small-coefficient arithmetic fast path (two-tier Rational)\n");
    println!("| workload | fast (ms) | bigint (ms) | speedup | small ops | big ops | promotions | hit rate | arena bytes |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let mut detail: Vec<Json> = Vec::new();
    let mut row = |name: &str, fast: (f64, lyric::EngineStats), big: (f64, lyric::EngineStats)| {
        let (fast_ms, s) = fast;
        let (big_ms, _) = big;
        let hit = s
            .arith_small_hit_rate()
            .map_or("—".into(), |r| format!("{:.1}%", r * 100.0));
        println!(
            "| {name} | {fast_ms:.2} | {big_ms:.2} | {:.2}x | {} | {} | {} | {hit} | {} |",
            big_ms / fast_ms,
            s.arith_small_ops,
            s.arith_big_ops,
            s.arith_promotions,
            s.arena_bytes,
        );
        detail.push(Json::obj([
            ("workload", Json::str(name)),
            ("fast_ms", Json::Num(fast_ms)),
            ("bigint_ms", Json::Num(big_ms)),
            ("speedup", Json::Num(big_ms / fast_ms)),
            ("arith_small_ops", Json::int(s.arith_small_ops)),
            ("arith_big_ops", Json::int(s.arith_big_ops)),
            ("arith_promotions", Json::int(s.arith_promotions)),
            (
                "small_hit_rate",
                s.arith_small_hit_rate().map_or(Json::Null, Json::Num),
            ),
            ("arena_bytes", Json::int(s.arena_bytes)),
        ]));
    };

    let opts = |fast: bool| {
        ExecOptions::default()
            .with_arith_fast(fast)
            .with_cache(false)
    };
    // E2 — the office workloads (linear scan, pairwise LP-heavy join).
    for (name, n, reps, q) in [
        ("E2 linear, n=64", 64usize, 3usize, Q_LINEAR),
        ("E2 pairwise, n=32", 32, 2, Q_PAIRWISE),
    ] {
        let db = workload::office_db(n, 42);
        let measure = |fast: bool| {
            let (ms, res) = time_ms(reps, || {
                let mut d = db.clone();
                execute_with_options(&mut d, q, &opts(fast)).expect("office query evaluates")
            });
            (ms, res.stats)
        };
        row(name, measure(true), measure(false));
    }
    // E3-style raw constraint ops: 3-D box intersect+sat and entailment,
    // under an engine context so the tier counters land in the stats.
    {
        let mk_box = |lo: i64, hi: i64| {
            use lyric_constraint::{Atom, LinExpr};
            let axes = ["x", "y", "z"];
            CstObject::from_conjunction(
                axes.iter().map(|a| Var::new(*a)).collect(),
                Conjunction::of(axes.iter().flat_map(|a| {
                    [
                        Atom::ge(LinExpr::var(Var::new(*a)), LinExpr::from(lo)),
                        Atom::le(LinExpr::var(Var::new(*a)), LinExpr::from(hi)),
                    ]
                })),
            )
        };
        let (a, b, inner) = (mk_box(0, 10), mk_box(5, 15), mk_box(6, 9));
        let measure = |fast: bool| {
            let ((ms, _), stats) = lyric::engine::run_with_opts(opts(fast), || {
                time_ms(20, || {
                    for _ in 0..10 {
                        assert!(a.and(&b).satisfiable());
                        assert!(inner.implies(&a));
                    }
                })
            })
            .expect("unlimited budget");
            (ms, stats)
        };
        row("E3 constraint ops, 3-D", measure(true), measure(false));
    }
    // E8 — the factory LP workload (MAX … SUBJECT TO), simplex-dominated.
    {
        let db = workload::factory_db(16, 6, 4, 17);
        let q = workload::factory_query(6, 4);
        let measure = |fast: bool| {
            let (ms, res) = time_ms(2, || {
                let mut d = db.clone();
                execute_with_options(&mut d, &q, &opts(fast)).expect("factory query evaluates")
            });
            (ms, res.stats)
        };
        row("E8 factory LP, 16 proc", measure(true), measure(false));
    }
    let arena = lyric_arith::arena_stats();
    println!(
        "\nspeedup is bigint-tier time over fast-path time on the identical cache-off workload; \
         the hit rate is the small-tier share of all Rational ops in the fast run. \
         Arena pools (process lifetime): {} buffer reuses, {} fresh allocations, {} bytes of capacity recycled.\n",
        arena.pool_hits, arena.pool_misses, arena.recycled_bytes
    );
    Json::obj([
        ("rows", Json::Arr(detail)),
        ("arena_pool_hits", Json::int(arena.pool_hits)),
        ("arena_pool_misses", Json::int(arena.pool_misses)),
        ("arena_recycled_bytes", Json::int(arena.recycled_bytes)),
    ])
}

fn e14() -> Json {
    println!("## E14 — interval-box LP pruning\n");
    println!("| workload | boxes on (ms) | boxes off (ms) | speedup | sat checks | box prunes | prune rate | LP runs on | LP runs off |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let mut detail: Vec<Json> = Vec::new();
    // Cache off so every sat check reaches the box/LP layer and the two
    // runs do identical logical work.
    let opts = |boxes: bool| ExecOptions::default().with_boxes(boxes).with_cache(false);
    // The E2 scan and join, plus a window probe disjoint from every
    // stored object (the selective-predicate case pruning exists for).
    let q_window = "SELECT O FROM Object_In_Room O
         WHERE O.catalog_object[C] AND C.extent[E] AND (E(w,z) AND w >= 10000)";
    for (name, n, reps, q) in [
        ("E2 linear, n=64", 64usize, 3usize, Q_LINEAR),
        ("E2 pairwise, n=24", 24, 2, Q_PAIRWISE),
        ("disjoint window, n=64", 64, 3, q_window),
    ] {
        let db = workload::office_db(n, 42);
        let measure = |boxes: bool| {
            let (ms, res) = time_ms(reps, || {
                let mut d = db.clone();
                execute_with_options(&mut d, q, &opts(boxes)).expect("office query evaluates")
            });
            (ms, res.stats)
        };
        let (on_ms, on) = measure(true);
        let (off_ms, off) = measure(false);
        let rate = if on.box_checks == 0 {
            0.0
        } else {
            on.box_prunes as f64 / on.box_checks as f64
        };
        println!(
            "| {name} | {on_ms:.2} | {off_ms:.2} | {:.2}x | {} | {} | {:.1}% | {} | {} |",
            off_ms / on_ms,
            on.sat_checks,
            on.box_prunes,
            rate * 100.0,
            on.lp_runs,
            off.lp_runs,
        );
        detail.push(Json::obj([
            ("workload", Json::str(name)),
            ("boxes_on_ms", Json::Num(on_ms)),
            ("boxes_off_ms", Json::Num(off_ms)),
            ("speedup", Json::Num(off_ms / on_ms)),
            ("sat_checks", Json::int(on.sat_checks)),
            ("box_checks", Json::int(on.box_checks)),
            ("box_prunes", Json::int(on.box_prunes)),
            ("prune_rate", Json::Num(rate)),
            ("lp_runs_on", Json::int(on.lp_runs)),
            ("lp_runs_off", Json::int(off.lp_runs)),
        ]));
    }
    println!(
        "\nprune rate is box_prunes/box_checks in the boxes-on run; every prune is an LP \
         satisfiability call skipped (lp_runs_on + box-attributable prunes vs lp_runs_off). \
         Answers are bit-identical either way (tests/boxes_differential.rs).\n"
    );
    Json::obj([("rows", Json::Arr(detail))])
}

/// E15 — explain overhead. Two claims: (a) the explain additions —
/// node-stamped spans, per-node row atomics, the trace→plan fold, the
/// profile-store feed — cost < 5% over the *traced* evaluation EXPLAIN
/// ANALYZE is built on (the trace collector itself predates this
/// subsystem and is priced by E10); (b) the explain-off plain path is
/// unchanged — its only addition is one armed-gate check per query, so
/// two plain batches measured the same way bound its overhead by the
/// noise floor. Batches alternate modes (the E12 protocol) so clock
/// drift and cache pressure hit every side equally.
fn e15() -> Json {
    println!("## E15 — explain overhead (plain vs traced vs EXPLAIN ANALYZE)\n");
    let db = workload::office_db(24, 42);
    let opts = ExecOptions::default().with_threads(2);
    let run_plain = || {
        lyric::execute_shared(&db, Q_LINEAR, &opts).expect("linear query evaluates");
    };
    // One clone up front: the traced entry point takes `&mut Database`
    // (CREATE VIEW materializes), but a SELECT never mutates, so reusing
    // the clone keeps the clone cost out of the traced timing.
    let mut traced_db = db.clone();
    let mut run_traced = || {
        lyric::execute_traced_with_options(&mut traced_db, Q_LINEAR, &opts)
            .expect("traced linear query evaluates");
    };
    let run_explained = || {
        lyric::execute_explained_with_options(&db, Q_LINEAR, &opts)
            .expect("explained linear query evaluates");
    };
    run_plain(); // warm the memo caches so every mode measures steady state
    let (batches, reps) = (6, 5);
    let mut plain_a_ms = f64::INFINITY;
    let mut plain_b_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    let mut explained_ms = f64::INFINITY;
    for _ in 0..batches {
        plain_a_ms = plain_a_ms.min(time_ms(reps, run_plain).0);
        traced_ms = traced_ms.min(time_ms(reps, &mut run_traced).0);
        explained_ms = explained_ms.min(time_ms(reps, run_explained).0);
        plain_b_ms = plain_b_ms.min(time_ms(reps, run_plain).0);
    }
    let plain_ms = plain_a_ms.min(plain_b_ms);
    let explain_pct = (explained_ms / traced_ms - 1.0) * 100.0;
    let analyze_pct = (explained_ms / plain_ms - 1.0) * 100.0;
    let noise_pct = (plain_a_ms.max(plain_b_ms) / plain_ms - 1.0) * 100.0;
    println!(
        "| mode | linear query, n=24 (best of {} runs, ms) |",
        batches * reps
    );
    println!("|---|---|");
    println!("| plain (batch A) | {plain_a_ms:.2} |");
    println!("| traced (E10 collector, no plan) | {traced_ms:.2} |");
    println!("| EXPLAIN ANALYZE | {explained_ms:.2} |");
    println!("| plain (batch B) | {plain_b_ms:.2} |");
    let verdict = if explain_pct <= 0.0 {
        "below the measurement noise floor".to_string()
    } else {
        format!("{explain_pct:.1}%")
    };
    println!(
        "\nexplain additions over the traced run: {verdict} (acceptance bar: < 5%); \
         EXPLAIN ANALYZE end to end costs {analyze_pct:.1}% over plain, almost all of it \
         the pre-existing span collector. Explain-off queries take the plain path shown \
         here — the subsystem adds one armed-gate check before evaluation, nothing per \
         binding, so its overhead is bounded by the plain-vs-plain noise floor \
         ({noise_pct:.1}% this run). Answers are bit-identical in every mode \
         (tests/explain_differential.rs).\n"
    );
    Json::obj([
        ("plain_best_ms", Json::Num(plain_ms)),
        ("traced_best_ms", Json::Num(traced_ms)),
        ("explained_best_ms", Json::Num(explained_ms)),
        ("explain_over_traced_pct", Json::Num(explain_pct)),
        ("explained_over_plain_pct", Json::Num(analyze_pct)),
        ("explain_off_noise_floor_pct", Json::Num(noise_pct)),
        ("bar_pct", Json::Num(5.0)),
    ])
}

/// E16 — the store index at scale. Selective probes over the 10⁵-object
/// scaling workload, index on (FROM bindings filtered through the sorted
/// scalar column / paged box column) vs index off (full-extent scan).
/// The one-time per-generation index build is priced separately — the
/// per-query timings race steady state against steady state, which is
/// what a server answering many queries over one generation sees.
/// Acceptance bars (asserted): ≥ 5× speedup on each selective probe and,
/// for the box-selective window, `index_pruned` > 0.9 × extent.
fn e16() -> Json {
    println!("## E16 — store index: probe vs scan at 10^5 objects\n");
    let n = 100_000usize;
    let db = workload::scaling_db(n, 42);
    let (build_ms, _) = time_ms(1, || lyric::store::index_for(&db));
    let opts = |index: bool| ExecOptions::default().with_index(index);
    println!("| query | index on (ms) | index off (ms) | speedup | rows | probes | pruned | pruned/extent |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut detail: Vec<Json> = Vec::new();
    let queries = [
        ("weight equality", 3usize, workload::q_weight_eq(67_321)),
        ("weight range", 3, workload::q_weight_ge(n as i64 - 50)),
        ("region window", 1, workload::q_region_window(n as i64 / 2)),
    ];
    for (name, reps, q) in &queries {
        let measure = |index: bool| {
            let (ms, res) = time_ms(*reps, || {
                lyric::execute_shared(&db, q, &opts(index)).expect("scaling query evaluates")
            });
            (ms, res.stats, res.rows.len())
        };
        let (on_ms, on, rows_on) = measure(true);
        let (off_ms, off, rows_off) = measure(false);
        assert_eq!(rows_on, rows_off, "{name}: probe and scan answers differ");
        assert_eq!(off.index_probes, 0, "{name}: index off must not probe");
        let speedup = off_ms / on_ms;
        let frac = on.index_pruned as f64 / n as f64;
        assert!(
            speedup >= 5.0,
            "{name}: selective probe must be >= 5x a scan, got {speedup:.2}x"
        );
        println!(
            "| {name} | {on_ms:.3} | {off_ms:.2} | {speedup:.1}x | {rows_on} | {} | {} | {:.1}% |",
            on.index_probes,
            on.index_pruned,
            frac * 100.0,
        );
        detail.push(Json::obj([
            ("query", Json::str(*name)),
            ("index_on_ms", Json::Num(on_ms)),
            ("index_off_ms", Json::Num(off_ms)),
            ("speedup", Json::Num(speedup)),
            ("rows", Json::int(rows_on as u64)),
            ("index_probes", Json::int(on.index_probes)),
            ("index_pruned", Json::int(on.index_pruned)),
            ("pruned_over_extent", Json::Num(frac)),
        ]));
    }
    let window_frac = detail
        .last()
        .and_then(|d| d.get("pruned_over_extent"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(
        window_frac > 0.9,
        "box-selective window must prune > 90% of the extent, got {:.1}%",
        window_frac * 100.0
    );
    println!(
        "\nindex build: {build_ms:.1} ms once per generation, amortized across every \
         query until the next write. Probe answers are bit-identical to scans across \
         the whole matrix (tests/index_differential.rs); the speedup and prune-fraction \
         bars above are asserted, so a regression fails this binary.\n"
    );
    Json::obj([
        ("objects", Json::int(n as u64)),
        ("index_build_ms", Json::Num(build_ms)),
        ("rows", Json::Arr(detail)),
    ])
}

/// E17 — flight-recorder overhead: the identical warmed workload with
/// the recorder on (the default: in-flight registration, live progress
/// mirroring into the slot's atomics, one ring push per completion) vs
/// off (`set_enabled(false)`, the same switch as `LYRIC_FLIGHT=0`, which
/// also skips registration). The event tee stays off in both modes —
/// that is the sampled, opt-in layer. Alternating batches per the E12
/// protocol; acceptance bar < 5%.
fn e17() -> Json {
    println!("## E17 — flight-recorder overhead (recorder on vs off)\n");
    let db = workload::office_db(24, 42);
    let opts = ExecOptions::default().with_threads(2);
    let run = || {
        lyric::execute_shared(&db, Q_LINEAR, &opts).expect("linear query evaluates");
    };
    run(); // warm the memo caches so both modes measure steady state
    lyric::flight::recorder::set_events_enabled(false);
    let (batches, reps) = (6, 5);
    let mut on_ms = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    for _ in 0..batches {
        lyric::flight::recorder::set_enabled(true);
        on_ms = on_ms.min(time_ms(reps, run).0);
        lyric::flight::recorder::set_enabled(false);
        off_ms = off_ms.min(time_ms(reps, run).0);
    }
    lyric::flight::recorder::set_enabled(true);
    let overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
    println!(
        "| mode | linear query, n=24 (best of {} runs, ms) |",
        batches * reps
    );
    println!("|---|---|");
    println!("| recorder on | {on_ms:.2} |");
    println!("| recorder off | {off_ms:.2} |");
    let verdict = if overhead_pct <= 0.0 {
        "below the measurement noise floor".to_string()
    } else {
        format!("{overhead_pct:.1}%")
    };
    println!(
        "\nmeasured overhead: {verdict} (acceptance bar: < 5%). The recording path is one \
         registry insert and one striped-ring push per query plus relaxed atomic adds at \
         counter-flush sites the engine already visits; the disabled path is a single \
         relaxed load, pinned allocation-free by crates/flight/tests/zero_alloc.rs.\n"
    );
    assert!(
        overhead_pct < 5.0,
        "flight recorder overhead {overhead_pct:.1}% breaches the 5% bar"
    );
    Json::obj([
        ("on_best_ms", Json::Num(on_ms)),
        ("off_best_ms", Json::Num(off_ms)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("bar_pct", Json::Num(5.0)),
    ])
}

fn answers_match(db: &Database, direct: &lyric::QueryResult, flat: &[(Oid, CstObject)]) -> bool {
    let _ = db;
    if direct.rows.len() != flat.len() {
        return false;
    }
    direct.rows.iter().all(|row| {
        let obj = &row[0];
        let region = row[1].as_cst().expect("cst column");
        flat.iter()
            .find(|(o, _)| o == obj)
            .is_some_and(|(_, r)| r.denotes_same(region))
    })
}
