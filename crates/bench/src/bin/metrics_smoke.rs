//! CI smoke check for the metrics pipeline, end to end through HTTP:
//! start `lyric-serve` in-process on an ephemeral port, run the paper
//! queries via `POST /query`, scrape `GET /metrics`, and assert that the
//! scraped counters are *exactly* consistent with the work performed —
//! `lyric_queries_total` advanced by the number of queries sent, the
//! latency histogram saw one observation per query, and every
//! `lyric_engine_<counter>_total` advanced by the sum of the per-query
//! `stats` objects the server itself returned. Exits nonzero on any
//! inconsistency.
//!
//! Run with `cargo run -p lyric-bench --bin metrics_smoke --release`.

use lyric::trace::stats::COUNTER_NAMES;
use lyric::ExecOptions;
use lyric_serve::{http_request, Server};
use std::net::SocketAddr;
use std::sync::Arc;

const QUERIES: &[&str] = &[
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
];

/// Scrape `/metrics` and return the parsed exposition.
fn scrape(addr: SocketAddr) -> lyric::metrics::prometheus::Exposition {
    let (status, body) = http_request(addr, "GET", "/metrics", "").expect("scrape succeeds");
    assert_eq!(status, 200, "/metrics must answer 200");
    lyric::metrics::prometheus::parse(&body).expect("scrape output is valid text format 0.0.4")
}

/// Sum of every sample named `name` across all label sets (0 when
/// absent). Matches sample names, so `_count`/`_sum` histogram samples
/// resolve too.
fn counter_total(exp: &lyric::metrics::prometheus::Exposition, name: &str) -> f64 {
    exp.families
        .iter()
        .flat_map(|f| &f.samples)
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

fn main() {
    let mut failures = 0usize;

    let db = Arc::new(lyric::paper_example::database());
    let addr = Server::bind("127.0.0.1:0", db, ExecOptions::default().with_threads(2))
        .expect("bind an ephemeral port")
        .spawn()
        .expect("start the accept loop");
    println!("serving on http://{addr}");

    let (status, body) = http_request(addr, "GET", "/healthz", "").expect("healthz reachable");
    assert_eq!((status, body.as_str()), (200, "ok\n"), "liveness check");

    let before = scrape(addr);
    let queries_before = counter_total(&before, "lyric_queries_total");
    let hist_before = counter_total(&before, "lyric_query_duration_us_count");

    // Drive the paper queries through POST /query, summing the per-query
    // stats objects the server reports back.
    let mut sent = 0f64;
    let mut expected = vec![0f64; COUNTER_NAMES.len()];
    for q in QUERIES {
        for _rep in 0..3 {
            let (status, body) = http_request(addr, "POST", "/query", q).expect("query sent");
            if status != 200 {
                eprintln!("FAIL: /query answered {status} for: {q}\n{body}");
                failures += 1;
                continue;
            }
            let json = lyric::trace::json::parse(&body).expect("query response is valid JSON");
            let stats = json.get("stats").expect("response carries stats");
            for (i, name) in COUNTER_NAMES.iter().enumerate() {
                expected[i] += stats.get(name).and_then(|v| v.as_f64()).unwrap_or(0.0);
            }
            sent += 1.0;
        }
    }
    println!("sent {sent} queries over HTTP");

    // A malformed query must not count as an executed query… but it is
    // *parsed* server-side before reaching the engine, so it never touches
    // the counters at all.
    let (status, _) = http_request(addr, "POST", "/query", "SELECT ???").expect("bad query sent");
    assert_eq!(status, 400, "malformed queries answer 400");

    // A malformed JSON envelope is a structured 400, also uncounted.
    let (status, body) =
        http_request(addr, "POST", "/query", r#"{"query": 7}"#).expect("bad JSON body sent");
    assert_eq!(status, 400, "malformed JSON bodies answer 400");
    assert!(
        body.contains("must be a string"),
        "the 400 body names the offending member: {body}"
    );

    // An explain=true JSON envelope executes, counts once, and attaches a
    // plan that passes the schema validator.
    let (status, body) = http_request(
        addr,
        "POST",
        "/query",
        r#"{"query": "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]", "explain": true}"#,
    )
    .expect("explain query sent");
    assert_eq!(status, 200, "explain=true answers 200: {body}");
    let json = lyric::trace::json::parse(&body).expect("explain response is valid JSON");
    let plan = json.get("plan").expect("explain response carries a plan");
    lyric::trace::plan::validate_plan_json(&plan.to_string())
        .expect("the attached plan passes the schema validator");
    let stats = json.get("stats").expect("explain response carries stats");
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        expected[i] += stats.get(name).and_then(|v| v.as_f64()).unwrap_or(0.0);
    }
    sent += 1.0;

    // The explained run fed the cost-profile store; /profiles serves it.
    let (status, body) = http_request(addr, "GET", "/profiles", "").expect("profiles reachable");
    assert_eq!(status, 200, "/profiles must answer 200");
    let profiles = lyric::trace::json::parse(&body).expect("/profiles body is valid JSON");
    let n = profiles
        .get("profiles")
        .and_then(|p| p.as_arr())
        .map(|a| a.len())
        .unwrap_or(0);
    if n == 0 {
        eprintln!("FAIL: /profiles lists no sites after an explained query");
        failures += 1;
    }
    println!("/profiles serves {n} cost-profile sites");

    let after = scrape(addr);

    let queries_delta = counter_total(&after, "lyric_queries_total") - queries_before;
    if queries_delta != sent {
        eprintln!("FAIL: lyric_queries_total advanced by {queries_delta}, sent {sent}");
        failures += 1;
    }
    let hist_delta = counter_total(&after, "lyric_query_duration_us_count") - hist_before;
    if hist_delta != sent {
        eprintln!("FAIL: latency histogram recorded {hist_delta} observations, sent {sent}");
        failures += 1;
    }
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        let family = format!("lyric_engine_{name}_total");
        let delta = counter_total(&after, &family) - counter_total(&before, &family);
        if delta != expected[i] {
            eprintln!(
                "FAIL: {family} advanced by {delta}, but the per-query stats sum to {}",
                expected[i]
            );
            failures += 1;
        }
    }

    // The histogram's +Inf bucket and _count must agree — the scrape is
    // internally consistent, not just consistent with the client's sums.
    let inf = after
        .families
        .iter()
        .filter(|f| f.name == "lyric_query_duration_us")
        .flat_map(|f| &f.samples)
        .filter(|s| {
            s.name == "lyric_query_duration_us_bucket"
                && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
        })
        .map(|s| s.value)
        .sum::<f64>();
    let count = counter_total(&after, "lyric_query_duration_us_count");
    if inf != count {
        eprintln!("FAIL: +Inf bucket ({inf}) disagrees with _count ({count})");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("metrics smoke FAILED with {failures} inconsistencies");
        std::process::exit(1);
    }
    println!("metrics smoke OK: scraped counters match {sent} queries exactly");
}
