//! The "ad hoc direct representation" comparator (experiment E3).
//!
//! §1.1 claims linear-constraint technology "can perform an order of
//! magnitude better than ad hoc methods working on direct representations
//! of CST-objects". The natural direct representation is a rasterized
//! point set: a d-dimensional bitmap over a bounding box, with pointwise
//! intersection and containment. This module implements that strawman
//! exactly, with exact rational evaluation at cell centers so the
//! comparison is about *representation*, not float error.

use lyric_arith::Rational;
use lyric_constraint::{Assignment, CstObject, Var};

/// A rasterized point set: `res` cells per axis over `[lo, hi]^dims`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    dims: usize,
    res: usize,
    lo: i64,
    hi: i64,
    cells: Vec<bool>,
}

impl Grid {
    /// Rasterize a quantifier-free constraint object by evaluating its
    /// disjuncts at every cell center.
    ///
    /// Panics if the object still carries existential quantifiers (the
    /// direct representation has no way to express them — itself part of
    /// the point the paper makes).
    #[allow(clippy::needless_range_loop)]
    pub fn rasterize(obj: &CstObject, lo: i64, hi: i64, res: usize) -> Grid {
        assert!(
            !obj.has_bound_vars(),
            "cannot rasterize a quantified object; eliminate bound variables first"
        );
        assert!(res >= 1 && hi > lo);
        let dims = obj.arity();
        let n_cells = res.pow(dims as u32);
        let mut cells = vec![false; n_cells];
        let vars: Vec<Var> = obj.free().to_vec();
        let width = Rational::from_int(hi - lo);
        let res_r = Rational::from_int(res as i64);
        let mut idx = vec![0usize; dims];
        for (flat, cell) in cells.iter_mut().enumerate() {
            // Decode the flat index into per-axis cell indices.
            let mut rest = flat;
            for i in 0..dims {
                idx[i] = rest % res;
                rest /= res;
            }
            let mut point = Assignment::new();
            for i in 0..dims {
                // Cell center: lo + (idx + 1/2) / res * (hi - lo)
                let frac =
                    &(&Rational::from_int(idx[i] as i64) + &Rational::from_pair(1, 2)) / &res_r;
                let coord = &Rational::from_int(lo) + &(&frac * &width);
                point.insert(vars[i].clone(), coord);
            }
            *cell = obj.disjuncts().iter().any(|d| d.eval(&point));
        }
        Grid {
            dims,
            res,
            lo,
            hi,
            cells,
        }
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    pub fn count_filled(&self) -> usize {
        self.cells.iter().filter(|c| **c).count()
    }

    fn check_compatible(&self, other: &Grid) {
        assert!(
            self.dims == other.dims
                && self.res == other.res
                && self.lo == other.lo
                && self.hi == other.hi,
            "grids must share shape"
        );
    }

    /// Pointwise intersection — the ad hoc equivalent of constraint
    /// conjunction.
    pub fn intersect(&self, other: &Grid) -> Grid {
        self.check_compatible(other);
        Grid {
            dims: self.dims,
            res: self.res,
            lo: self.lo,
            hi: self.hi,
            cells: self
                .cells
                .iter()
                .zip(&other.cells)
                .map(|(a, b)| *a && *b)
                .collect(),
        }
    }

    /// Pointwise union.
    pub fn union(&self, other: &Grid) -> Grid {
        self.check_compatible(other);
        Grid {
            dims: self.dims,
            res: self.res,
            lo: self.lo,
            hi: self.hi,
            cells: self
                .cells
                .iter()
                .zip(&other.cells)
                .map(|(a, b)| *a || *b)
                .collect(),
        }
    }

    /// Approximate containment `other ⊆ self` — the ad hoc equivalent of
    /// entailment.
    pub fn contains(&self, other: &Grid) -> bool {
        self.check_compatible(other);
        self.cells.iter().zip(&other.cells).all(|(a, b)| !b || *a)
    }

    /// Approximate emptiness — the ad hoc equivalent of satisfiability.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|c| !c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric::paper_example::box2;

    #[test]
    fn rasterize_box_counts() {
        // The box [0,8]×[0,8] in [0,16]² at res 16: half the cells per
        // axis → a quarter of all cells.
        let g = Grid::rasterize(&box2("x", "y", 0, 8, 0, 8), 0, 16, 16);
        assert_eq!(g.num_cells(), 256);
        assert_eq!(g.count_filled(), 64);
    }

    #[test]
    fn intersection_matches_geometry() {
        let a = Grid::rasterize(&box2("x", "y", 0, 8, 0, 8), 0, 16, 16);
        let b = Grid::rasterize(&box2("x", "y", 4, 12, 0, 8), 0, 16, 16);
        let i = a.intersect(&b);
        // Overlap is [4,8]×[0,8]: 4×8 cells at unit resolution.
        assert_eq!(i.count_filled(), 32);
        assert!(!i.is_empty());
        let far = Grid::rasterize(&box2("x", "y", 12, 16, 12, 16), 0, 16, 16);
        assert!(a.intersect(&far).is_empty());
        let u = a.union(&b);
        assert_eq!(u.count_filled(), 64 + 64 - 32);
    }

    #[test]
    fn containment_matches_geometry() {
        let big = Grid::rasterize(&box2("x", "y", 0, 12, 0, 12), 0, 16, 16);
        let small = Grid::rasterize(&box2("x", "y", 2, 6, 2, 6), 0, 16, 16);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
    }

    #[test]
    #[should_panic(expected = "quantified")]
    fn quantified_objects_rejected() {
        use lyric_constraint::{Atom, Conjunction, LinExpr};
        let quantified = CstObject::new(
            vec![Var::new("x")],
            [Conjunction::of([Atom::le(
                LinExpr::var(Var::new("x")),
                LinExpr::var(Var::new("hidden")),
            )])],
        );
        let _ = Grid::rasterize(&quantified, 0, 16, 8);
    }

    #[test]
    #[should_panic(expected = "share shape")]
    fn incompatible_grids_rejected() {
        let a = Grid::rasterize(&box2("x", "y", 0, 8, 0, 8), 0, 16, 16);
        let b = Grid::rasterize(&box2("x", "y", 0, 8, 0, 8), 0, 16, 8);
        let _ = a.intersect(&b);
    }
}
