//! E1 — the §4.1 worked example queries on the Figure 2 instance.
//!
//! Measures end-to-end `execute()` (parse + bind + constraint work) for
//! each query shape the paper walks through. Answer correctness is
//! asserted by `crates/core/tests/paper_queries.rs`; this bench tracks
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use lyric::{execute, paper_example, parse_query};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_paper_queries");
    group.sample_size(20);
    let queries: Vec<(&str, &str)> = vec![
        (
            "q1_path_only",
            "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
        ),
        (
            "q2_projection_formula",
            "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
             FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
        ),
        (
            "q4_entailment",
            "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
             FROM Desk DSK
             WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
        ),
        (
            "q5_satisfiability",
            "SELECT DSK FROM Object_In_Room O, Desk DSK
             WHERE O.catalog_object[DSK] AND O.location[L]
               AND DSK.drawer_center[C] AND DSK.translation[D]
               AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
               AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
                    AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
                    AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
        ),
        (
            "lp_operators",
            "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
             FROM Desk D WHERE D.extent[E]",
        ),
    ];
    let db = paper_example::database();
    for (name, q) in &queries {
        let parsed = parse_query(q).expect("paper query parses");
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut d = db.clone();
                black_box(lyric::execute_parsed(&mut d, &parsed).expect("query evaluates"))
            })
        });
    }
    // Parse cost alone, for reference.
    group.bench_function("parse_q5", |b| {
        b.iter(|| black_box(parse_query(queries[3].1).expect("parses")))
    });
    // Database construction cost, for reference.
    group.bench_function("build_figure2_database", |b| {
        b.iter(|| black_box(paper_example::database()))
    });
    let _ = execute; // linked for doc purposes
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
