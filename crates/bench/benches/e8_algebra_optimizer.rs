//! E8 (ablation) — the §5 future-work constraint algebra: effect of the
//! BJM93-style rewrites (filter hoisting, map fusion, filter fusion) on a
//! realistic pipeline.
//!
//! The pipeline mirrors a spatial query plan over *quantified* regions
//! (Minkowski-style footprints `∃ offsets. shape(offsets) ∧ bounds`):
//! intersect with a selective query window, then eagerly eliminate the
//! quantifiers for output — written naively as
//! `Filter(sat) ∘ α(eliminate_bound) ∘ α(∧window)`. Fourier–Motzkin
//! elimination is expensive even on unsatisfiable inputs (it is purely
//! syntactic), while the feasibility test is one cheap LP that handles
//! quantifiers natively; the optimizer hoists the filter past the
//! elimination, so the expensive step runs only on the few regions that
//! intersect the window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyric_algebra::{eval, optimize, Func, Value};
use lyric_bench::workload::{quantified_region, rng};
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{Database, Schema};
use std::hint::black_box;

fn v(n: &str) -> LinExpr {
    LinExpr::var(Var::new(n))
}

/// A selective query window: most regions miss it.
fn window() -> CstObject {
    CstObject::from_conjunction(
        vec![Var::new("v0"), Var::new("v1")],
        Conjunction::of([
            Atom::ge(v("v0"), LinExpr::from(14)),
            Atom::le(v("v0"), LinExpr::from(15)),
            Atom::ge(v("v1"), LinExpr::from(14)),
            Atom::le(v("v1"), LinExpr::from(15)),
        ]),
    )
}

fn pipeline() -> Func {
    Func::Compose(vec![
        Func::Filter(Box::new(Func::Satisfiable)),
        Func::ApplyToAll(Box::new(Func::EliminateBound)),
        Func::ApplyToAll(Box::new(Func::CstAndConst(window()))),
    ])
}

fn inputs(n: usize) -> Value {
    let mut r = rng(99);
    Value::Coll(
        (0..n)
            .map(|_| Value::cst(quantified_region(&mut r)))
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let db = Database::new(Schema::new()).expect("empty schema");
    let naive = pipeline();
    let optimized = optimize(&naive);

    // Engine level: the hoist rewrite in isolation (see the E8 report).
    let mut group = c.benchmark_group("e8_engine_level");
    group.sample_size(10);
    {
        let mut r = rng(99);
        let regions: Vec<CstObject> = (0..4).map(|_| quantified_region(&mut r)).collect();
        let windowed: Vec<CstObject> = regions.iter().map(|c| c.and(&window())).collect();
        group.bench_function("eliminate_then_filter", |bch| {
            bch.iter(|| {
                black_box(
                    windowed
                        .iter()
                        .map(|c| c.eliminate_bound())
                        .filter(|c| c.satisfiable())
                        .count(),
                )
            })
        });
        group.bench_function("filter_then_eliminate", |bch| {
            bch.iter(|| {
                black_box(
                    windowed
                        .iter()
                        .filter(|c| c.satisfiable())
                        .map(|c| c.eliminate_bound())
                        .collect::<Vec<_>>()
                        .len(),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e8_algebra_optimizer");
    group.sample_size(10);
    for &n in &[8usize, 16] {
        let input = inputs(n);
        let a = eval(&naive, &db, &input).expect("naive evaluates");
        let b = eval(&optimized, &db, &input).expect("optimized evaluates");
        assert_eq!(
            a.as_coll().map(<[Value]>::len),
            b.as_coll().map(<[Value]>::len),
            "optimizer must preserve cardinality"
        );
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(eval(&naive, &db, &input).expect("evaluates")))
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |bch, _| {
            bch.iter(|| black_box(eval(&optimized, &db, &input).expect("evaluates")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
