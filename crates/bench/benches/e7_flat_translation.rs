//! E7 — the §5 naive implementation: translating the object database to
//! flat constraint relations and evaluating with the constraint algebra,
//! vs the direct object evaluator. Answer equality is asserted by
//! `tests/flat_equivalence.rs`; this bench tracks the cost of both routes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyric::parse_query;
use lyric_bench::workload::{office_db, Q_LINEAR};
use lyric_constraint::Var;
use lyric_flatrel::FlatDb;
use std::hint::black_box;

fn flat_plan(flat: &FlatDb) -> lyric_flatrel::Relation {
    let oir = flat.extent("Object_In_Room").expect("extent");
    let loc = flat.attr("Object_In_Room", "location").expect("location");
    let cat = flat
        .attr("Object_In_Room", "catalog_object")
        .expect("catalog");
    let ext = flat
        .attr("Office_Object", "extent")
        .expect("extent")
        .rename_col("obj", "cat_obj");
    let tr = flat
        .attr("Office_Object", "translation")
        .expect("translation")
        .rename_col("obj", "cat_obj");
    oir.join(loc, &[("obj", "obj")])
        .join(cat, &[("obj", "obj")])
        .rename_col("val", "cat_obj")
        .join(&ext, &[("cat_obj", "cat_obj")])
        .join(&tr, &[("cat_obj", "cat_obj")])
        .project(&["obj"], &[Var::new("u"), Var::new("v")])
}

fn bench(c: &mut Criterion) {
    let parsed = parse_query(Q_LINEAR).expect("parses");
    let mut group = c.benchmark_group("e7_flat_translation");
    group.sample_size(10);
    for &n in &[8usize, 32, 96] {
        let db = office_db(n, 42);
        group.bench_with_input(BenchmarkId::new("direct_evaluator", n), &n, |b, _| {
            b.iter(|| {
                let mut d = db.clone();
                black_box(lyric::execute_parsed(&mut d, &parsed).expect("evaluates"))
            })
        });
        group.bench_with_input(BenchmarkId::new("translate_database", n), &n, |b, _| {
            b.iter(|| black_box(FlatDb::from_database(&db)))
        });
        let flat = FlatDb::from_database(&db);
        group.bench_with_input(BenchmarkId::new("flat_algebra_plan", n), &n, |b, _| {
            b.iter(|| black_box(flat_plan(&flat)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
