//! E6 — the §1.2 LP application realm: `MAX … SUBJECT TO` over a
//! chemical-factory constraint database, swept over factory shape, plus
//! raw exact-simplex microbenchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyric::parse_query;
use lyric_arith::Rational;
use lyric_bench::workload::{factory_db, factory_query};
use lyric_simplex::{LpProblem, Relop};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_factory_queries");
    group.sample_size(10);
    for &(np, nm, npr) in &[(2usize, 2usize, 2usize), (8, 4, 3), (16, 6, 4)] {
        let db = factory_db(np, nm, npr, 17);
        let parsed = parse_query(&factory_query(nm, npr)).expect("factory query parses");
        let label = format!("p{np}_m{nm}_pr{npr}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &np, |b, _| {
            b.iter(|| {
                let mut d = db.clone();
                black_box(lyric::execute_parsed(&mut d, &parsed).expect("evaluates"))
            })
        });
    }
    group.finish();

    // Raw simplex scaling: dense random-ish LPs of growing size.
    let mut group = c.benchmark_group("e6_simplex_raw");
    group.sample_size(10);
    for &n in &[4usize, 8, 16, 32] {
        let mut lp = LpProblem::new(n);
        // x_i >= 0, sum x <= n, staircase couplings.
        for i in 0..n {
            let mut coeffs = vec![Rational::zero(); n];
            coeffs[i] = Rational::from_int(-1);
            lp.push(coeffs, Relop::Le, Rational::zero());
        }
        lp.push(
            vec![Rational::one(); n],
            Relop::Le,
            Rational::from_int(n as i64),
        );
        for i in 0..n - 1 {
            let mut coeffs = vec![Rational::zero(); n];
            coeffs[i] = Rational::from_int(2);
            coeffs[i + 1] = Rational::from_int(-1);
            lp.push(coeffs, Relop::Le, Rational::from_int(3));
        }
        let objective: Vec<Rational> = (0..n)
            .map(|i| Rational::from_int((i % 3 + 1) as i64))
            .collect();
        group.bench_with_input(BenchmarkId::new("maximize", n), &n, |b, _| {
            b.iter(|| black_box(lp.maximize(&objective)))
        });
        group.bench_with_input(BenchmarkId::new("feasibility", n), &n, |b, _| {
            b.iter(|| black_box(lp.is_feasible()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
