//! E5 — projection (§3.1): one restricted elimination step is cheap and
//! polynomial; composing unrestricted eliminations grows the
//! representation super-polynomially. This is the measured rationale for
//! the paper's one-or-all-but-one projection rule and for lazy
//! existential quantification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyric_bench::workload::{random_satisfiable_conjunction, rng};
use lyric_constraint::Var;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_projection");
    group.sample_size(10);
    let nvars = 9;
    let mut r = rng(7);
    let conj = random_satisfiable_conjunction(&mut r, nvars, 24);
    let all_vars: Vec<Var> = (0..nvars).map(|i| Var::new(format!("v{i}"))).collect();
    // k = 1 is the restricted step; larger k shows the growth.
    for &k in &[1usize, 2, 3, 4] {
        let victims: Vec<&Var> = all_vars.iter().take(k).collect();
        group.bench_with_input(BenchmarkId::new("eliminate_k_vars", k), &k, |b, _| {
            b.iter(|| black_box(conj.eliminate_all(victims.iter().copied()).expect("no neq")))
        });
    }
    // All-but-one (the other legal restricted form): project onto v8.
    group.bench_function("project_all_but_one", |b| {
        b.iter(|| {
            black_box(
                conj.project_restricted(&[all_vars[nvars - 1].clone()])
                    .expect("restricted"),
            )
        })
    });
    // Equality substitution path (cheap regardless of arity).
    let mut r2 = rng(8);
    let with_eqs = {
        use lyric_constraint::{Atom, Conjunction, LinExpr};
        let base = random_satisfiable_conjunction(&mut r2, 6, 12);
        let mut atoms: Vec<Atom> = base.atoms().to_vec();
        for i in 0..5 {
            atoms.push(Atom::eq(
                LinExpr::var(Var::new(format!("v{i}"))),
                LinExpr::var(Var::new(format!("v{}", i + 1))) + LinExpr::from(1),
            ));
        }
        Conjunction::of(atoms)
    };
    let victims: Vec<Var> = (0..5).map(|i| Var::new(format!("v{i}"))).collect();
    group.bench_function("eliminate_by_equality_substitution", |b| {
        b.iter(|| black_box(with_eqs.eliminate_all(victims.iter()).expect("no neq")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
