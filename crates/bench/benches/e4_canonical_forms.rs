//! E4 — canonical forms (§3.1): the paper's cheap simplification
//! (inconsistent-disjunct deletion + syntactic dedup) against strong
//! LP-based redundancy removal, on random DNFs salted with removable
//! disjuncts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyric_bench::workload::{random_dnf, rng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_canonical_forms");
    group.sample_size(10);
    for &k in &[8usize, 16, 32] {
        let mut r = rng(100 + k as u64);
        let dnf = random_dnf(&mut r, k, 6, 3);
        group.bench_with_input(BenchmarkId::new("cheap_simplify", k), &k, |b, _| {
            b.iter(|| black_box(dnf.simplify()))
        });
        group.bench_with_input(BenchmarkId::new("strong_simplify", k), &k, |b, _| {
            b.iter(|| black_box(dnf.strong_simplify()))
        });
    }
    // Per-conjunction redundancy removal (the BJM93 conjunctive canonical
    // form), as a separate series.
    for &m in &[8usize, 16, 32] {
        let mut r = rng(200 + m as u64);
        let conj = lyric_bench::workload::random_satisfiable_conjunction(&mut r, 4, m);
        group.bench_with_input(BenchmarkId::new("remove_redundant_atoms", m), &m, |b, _| {
            b.iter(|| black_box(conj.remove_redundant()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
