//! E3 — constraint technology vs ad hoc direct representations (§1.1).
//!
//! Intersection-emptiness and containment on d-dimensional boxes: the
//! constraint engine (LP-backed, resolution-independent) against the
//! rasterized-bitmap strawman at several resolutions, including the
//! rasterization cost any stored-object update would pay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyric_bench::gridrep::Grid;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use std::hint::black_box;

fn mk_box(dims: usize, lo: i64, hi: i64) -> CstObject {
    let axes = ["x", "y", "z", "t"];
    let atoms = axes[..dims].iter().flat_map(|a| {
        [
            Atom::ge(LinExpr::var(Var::new(*a)), LinExpr::from(lo)),
            Atom::le(LinExpr::var(Var::new(*a)), LinExpr::from(hi)),
        ]
    });
    CstObject::from_conjunction(
        axes[..dims].iter().map(|a| Var::new(*a)).collect(),
        Conjunction::of(atoms),
    )
}

fn bench(c: &mut Criterion) {
    for dims in [2usize, 3, 4] {
        let a = mk_box(dims, 0, 10);
        let b = mk_box(dims, 5, 15);
        let inner = mk_box(dims, 6, 9);

        let mut group = c.benchmark_group(format!("e3_{dims}d"));
        group.sample_size(20);
        group.bench_function("constraint_and_sat", |bch| {
            bch.iter(|| black_box(a.and(&b).satisfiable()))
        });
        group.bench_function("constraint_implies", |bch| {
            bch.iter(|| black_box(inner.implies(&a)))
        });
        let resolutions: &[usize] = match dims {
            2 => &[32, 128],
            3 => &[16, 32],
            _ => &[8, 16],
        };
        for &res in resolutions {
            let ga = Grid::rasterize(&a, 0, 16, res);
            let gb = Grid::rasterize(&b, 0, 16, res);
            let gi = Grid::rasterize(&inner, 0, 16, res);
            group.bench_with_input(
                BenchmarkId::new("grid_rasterize", res),
                &res,
                |bch, &res| bch.iter(|| black_box(Grid::rasterize(&a, 0, 16, res))),
            );
            group.bench_with_input(
                BenchmarkId::new("grid_intersect_empty", res),
                &res,
                |bch, _| bch.iter(|| black_box(ga.intersect(&gb).is_empty())),
            );
            group.bench_with_input(BenchmarkId::new("grid_contains", res), &res, |bch, _| {
                bch.iter(|| black_box(ga.contains(&gi)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
