//! E2 — PTIME data complexity (§5).
//!
//! The same two probe queries over synthetic office databases of growing
//! size: a per-object ("linear") query and a pairwise-join query. The §5
//! claim is polynomial data complexity; the report binary fits the
//! log–log slopes (~1 and ~2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lyric::parse_query;
use lyric_bench::workload::{office_db, Q_LINEAR, Q_PAIRWISE};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let linear = parse_query(Q_LINEAR).expect("parses");
    let pairwise = parse_query(Q_PAIRWISE).expect("parses");

    let mut group = c.benchmark_group("e2_linear_query");
    group.sample_size(10);
    for &n in &[8usize, 16, 32, 64, 128] {
        let db = office_db(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = db.clone();
                black_box(lyric::execute_parsed(&mut d, &linear).expect("evaluates"))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e2_pairwise_query");
    group.sample_size(10);
    for &n in &[4usize, 8, 16, 32] {
        let db = office_db(n, 42);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = db.clone();
                black_box(lyric::execute_parsed(&mut d, &pairwise).expect("evaluates"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
