//! The in-flight query registry: who is running *right now*, and how
//! far along are they?
//!
//! Every `execute*` entry point registers a slot before evaluation
//! starts and holds the returned [`InflightGuard`] across the run; the
//! guard's `Drop` deregisters the slot on **every** exit path — normal
//! return, error return, budget unwind, and panic — so the registry can
//! never leak a ghost query. While the query runs, the engine mirrors
//! its budgeted counters into the slot's shared [`Progress`] atomics
//! (the same delta stream that feeds the parallel region's shared
//! budget), so a `/debug/inflight` scrape or REPL `:inflight` sees live
//! pivot/FM/sat-check movement and the percentage of the budget already
//! consumed — the difference between "hung" and "three more minutes of
//! quantifier elimination".

use lyric_trace::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Query source text is truncated to this many characters in slots,
/// summaries, and dumps (enough to recognize the query, bounded enough
/// that rings and dumps stay small).
pub const QUERY_TRUNCATE: usize = 160;

/// Truncate query text for display, appending an ellipsis when cut, and
/// collapsing newlines so truncated text stays one line.
pub fn truncate_query(src: &str) -> String {
    let mut out = String::with_capacity(QUERY_TRUNCATE + 1);
    for (taken, c) in src.chars().enumerate() {
        if taken == QUERY_TRUNCATE {
            out.push('…');
            break;
        }
        out.push(if c == '\n' || c == '\r' { ' ' } else { c });
    }
    out
}

/// Live progress counters for one in-flight query, mirrored by the
/// engine's `note_many`/`tally` paths as relaxed deltas. Coordinator
/// and worker threads share one `Arc<Progress>`, so the values are the
/// query's whole-region totals.
#[derive(Default)]
pub struct Progress {
    /// Simplex pivot steps (budgeted).
    pub pivots: AtomicU64,
    /// Fourier–Motzkin atoms produced (budgeted).
    pub fm_atoms: AtomicU64,
    /// DNF disjuncts produced (budgeted).
    pub disjuncts: AtomicU64,
    /// Satisfiability checks completed.
    pub sat_checks: AtomicU64,
    /// Interval-box prunes (LP solves skipped).
    pub box_prunes: AtomicU64,
    /// Store-index probes answered.
    pub index_probes: AtomicU64,
}

impl Progress {
    /// Add deltas to the three budgeted counters (the engine's
    /// `note_many` mirror; zero deltas are skipped).
    pub fn add_budgeted(&self, pivots: u64, fm_atoms: u64, disjuncts: u64) {
        if pivots > 0 {
            self.pivots.fetch_add(pivots, Ordering::Relaxed);
        }
        if fm_atoms > 0 {
            self.fm_atoms.fetch_add(fm_atoms, Ordering::Relaxed);
        }
        if disjuncts > 0 {
            self.disjuncts.fetch_add(disjuncts, Ordering::Relaxed);
        }
    }
}

/// The budget limits the query was admitted with, for the "% consumed"
/// readout. A flight-local copy of the engine's budget shape (this
/// crate sits below `lyric-engine`, so it cannot name the real type).
#[derive(Clone, Copy, Default)]
pub struct BudgetCaps {
    /// Max simplex pivots, if capped.
    pub pivots: Option<u64>,
    /// Max FM atoms, if capped.
    pub fm_atoms: Option<u64>,
    /// Max disjuncts, if capped.
    pub disjuncts: Option<u64>,
    /// Wall-clock deadline in milliseconds, if capped.
    pub deadline_ms: Option<u64>,
}

/// What a query registers about itself on entry.
pub struct InflightDesc {
    /// The query source (registry truncates it; hash is of the full text).
    pub query: String,
    /// FNV-1a hash of the full query source.
    pub query_hash: u64,
    /// Thread budget the query was admitted with.
    pub threads: usize,
    /// Budget caps, for percentage readouts.
    pub caps: BudgetCaps,
    /// Engine context generation (the per-process trace id).
    pub trace_id: u64,
}

struct Slot {
    desc: InflightDesc,
    started: Instant,
    progress: Arc<Progress>,
}

/// A point-in-time copy of one in-flight slot.
pub struct InflightSnapshot {
    /// Registry slot id (monotonic per process).
    pub id: u64,
    /// Truncated query text.
    pub query: String,
    /// FNV-1a hash of the full query source.
    pub query_hash: u64,
    /// Thread budget.
    pub threads: usize,
    /// Engine context generation.
    pub trace_id: u64,
    /// Microseconds since registration.
    pub elapsed_us: u64,
    /// Live counters: (pivots, fm_atoms, disjuncts, sat_checks,
    /// box_prunes, index_probes).
    pub counters: [u64; 6],
    /// Percent of the tightest budget cap consumed (counters and
    /// elapsed-vs-deadline), rounded down; `None` when nothing is capped.
    pub budget_pct: Option<u64>,
}

impl InflightSnapshot {
    /// The snapshot as a JSON object (the `/debug/inflight` element).
    pub fn to_json(&self) -> Json {
        let [pivots, fm_atoms, disjuncts, sat_checks, box_prunes, index_probes] = self.counters;
        let mut pairs = vec![
            ("id".to_string(), Json::int(self.id)),
            (
                "query_hash".to_string(),
                Json::str(format!("{:016x}", self.query_hash)),
            ),
            ("query".to_string(), Json::str(self.query.clone())),
            ("trace_id".to_string(), Json::int(self.trace_id)),
            ("threads".to_string(), Json::int(self.threads as u64)),
            ("elapsed_us".to_string(), Json::int(self.elapsed_us)),
            (
                "progress".to_string(),
                Json::obj([
                    ("pivots", Json::int(pivots)),
                    ("fm_atoms", Json::int(fm_atoms)),
                    ("disjuncts", Json::int(disjuncts)),
                    ("sat_checks", Json::int(sat_checks)),
                    ("box_prunes", Json::int(box_prunes)),
                    ("index_probes", Json::int(index_probes)),
                ]),
            ),
        ];
        pairs.push((
            "budget_pct".to_string(),
            self.budget_pct.map_or(Json::Null, Json::int),
        ));
        Json::Obj(pairs)
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn slots() -> &'static Mutex<BTreeMap<u64, Slot>> {
    static SLOTS: OnceLock<Mutex<BTreeMap<u64, Slot>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn inflight_gauge() -> &'static lyric_metrics::Gauge {
    static G: OnceLock<lyric_metrics::Gauge> = OnceLock::new();
    G.get_or_init(|| {
        lyric_metrics::global().gauge(
            "lyric_inflight_queries",
            "Queries currently registered as executing.",
        )
    })
}

thread_local! {
    /// The slot id registered by this thread, if any — the panic hook's
    /// way of asking "did an in-flight query die here?". 0 = none.
    static CURRENT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Deregisters its slot when dropped — the reason no exit path (early
/// return, budget unwind, panic) can leak a registry entry.
pub struct InflightGuard {
    id: u64,
    progress: Arc<Progress>,
}

impl InflightGuard {
    /// The shared progress cell the engine mirrors deltas into.
    pub fn progress(&self) -> Arc<Progress> {
        Arc::clone(&self.progress)
    }

    /// This slot's registry id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Stamp the engine context generation once it is known —
    /// registration happens before the engine context (and therefore the
    /// trace id) exists, so the caller back-fills it from inside the run.
    pub fn set_trace_id(&self, trace_id: u64) {
        if let Some(slot) = lock(slots()).get_mut(&self.id) {
            slot.desc.trace_id = trace_id;
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let mut slots = lock(slots());
        slots.remove(&self.id);
        inflight_gauge().set(slots.len() as u64);
        CURRENT.with(|c| {
            if c.get() == self.id {
                c.set(0);
            }
        });
    }
}

/// Register a query as in-flight. The returned guard must live for the
/// whole evaluation; progress mirroring starts once the engine attaches
/// [`InflightGuard::progress`] to its context.
pub fn register(desc: InflightDesc) -> InflightGuard {
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let progress = Arc::new(Progress::default());
    let slot = Slot {
        desc: InflightDesc {
            query: truncate_query(&desc.query),
            ..desc
        },
        started: Instant::now(),
        progress: Arc::clone(&progress),
    };
    let mut slots_guard = lock(slots());
    slots_guard.insert(id, slot);
    inflight_gauge().set(slots_guard.len() as u64);
    drop(slots_guard);
    CURRENT.with(|c| c.set(id));
    InflightGuard { id, progress }
}

fn snapshot_slot(id: u64, slot: &Slot) -> InflightSnapshot {
    let p = &slot.progress;
    let counters = [
        p.pivots.load(Ordering::Relaxed),
        p.fm_atoms.load(Ordering::Relaxed),
        p.disjuncts.load(Ordering::Relaxed),
        p.sat_checks.load(Ordering::Relaxed),
        p.box_prunes.load(Ordering::Relaxed),
        p.index_probes.load(Ordering::Relaxed),
    ];
    let elapsed_us = slot.started.elapsed().as_micros() as u64;
    let caps = &slot.desc.caps;
    let pct_of = |consumed: u64, cap: Option<u64>| {
        cap.filter(|&c| c > 0)
            .map(|c| consumed.saturating_mul(100) / c)
    };
    let budget_pct = [
        pct_of(counters[0], caps.pivots),
        pct_of(counters[1], caps.fm_atoms),
        pct_of(counters[2], caps.disjuncts),
        pct_of(elapsed_us / 1000, caps.deadline_ms),
    ]
    .into_iter()
    .flatten()
    .max();
    InflightSnapshot {
        id,
        query: slot.desc.query.clone(),
        query_hash: slot.desc.query_hash,
        threads: slot.desc.threads,
        trace_id: slot.desc.trace_id,
        elapsed_us,
        counters,
        budget_pct,
    }
}

/// Every in-flight query, oldest registration first.
pub fn snapshot() -> Vec<InflightSnapshot> {
    lock(slots())
        .iter()
        .map(|(id, slot)| snapshot_slot(*id, slot))
        .collect()
}

/// The slot registered by the *calling* thread, if one is live — used
/// by the panic hook to attribute a crash to the query that caused it.
pub fn current_snapshot() -> Option<InflightSnapshot> {
    let id = CURRENT.with(|c| c.get());
    if id == 0 {
        return None;
    }
    lock(slots()).get(&id).map(|slot| snapshot_slot(id, slot))
}

/// Number of in-flight queries.
pub fn len() -> usize {
    lock(slots()).len()
}

/// The whole registry as a JSON document (the `/debug/inflight` body).
pub fn to_json() -> Json {
    Json::obj([
        ("inflight", Json::int(len() as u64)),
        (
            "queries",
            Json::Arr(snapshot().iter().map(|s| s.to_json()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(q: &str) -> InflightDesc {
        InflightDesc {
            query: q.to_string(),
            query_hash: lyric_metrics::querylog::query_hash(q),
            threads: 1,
            caps: BudgetCaps {
                pivots: Some(1000),
                ..Default::default()
            },
            trace_id: 7,
        }
    }

    #[test]
    fn guard_registers_and_deregisters() {
        let before = len();
        let g = register(desc("SELECT X FROM Desk X"));
        assert_eq!(len(), before + 1);
        g.progress().add_budgeted(250, 0, 0);
        let snap = current_snapshot().expect("this thread registered");
        assert_eq!(snap.counters[0], 250);
        assert_eq!(snap.budget_pct, Some(25));
        drop(g);
        assert_eq!(len(), before);
        assert!(current_snapshot().is_none());
    }

    #[test]
    fn guard_survives_a_panic_exit() {
        let before = len();
        let result = std::panic::catch_unwind(|| {
            let _g = register(desc("SELECT Y FROM Desk Y"));
            panic!("mid-query");
        });
        assert!(result.is_err());
        assert_eq!(len(), before, "drop ran during unwind");
    }

    #[test]
    fn truncation_is_char_safe_and_single_line() {
        let long = "é".repeat(QUERY_TRUNCATE + 40);
        let cut = truncate_query(&long);
        assert_eq!(cut.chars().count(), QUERY_TRUNCATE + 1);
        assert!(cut.ends_with('…'));
        assert_eq!(truncate_query("a\nb"), "a b");
    }

    #[test]
    fn json_shape_has_the_pinned_members() {
        let g = register(desc("SELECT Z FROM Desk Z"));
        let doc = to_json();
        let queries = doc.get("queries").unwrap().as_arr().unwrap();
        let mine = queries
            .iter()
            .find(|q| q.get("id").unwrap().as_f64() == Some(g.id() as f64))
            .expect("registered slot serialized");
        for key in [
            "query_hash",
            "query",
            "trace_id",
            "threads",
            "elapsed_us",
            "progress",
            "budget_pct",
        ] {
            assert!(mine.get(key).is_some(), "missing {key}");
        }
        assert!(mine.get("progress").unwrap().get("pivots").is_some());
    }
}
