//! The flight recorder proper: process-lifetime rings of recent
//! completed-query summaries and sampled trace events.
//!
//! Aircraft flight recorders answer "what were the last minutes like?"
//! after the fact; this one does the same for the engine. Two rings:
//!
//! * **queries** — a [`QuerySummary`] per completed query (any
//!   outcome), capacity [`QUERY_RING`]. Recording is on by default and
//!   costs one striped-ring push per query; `LYRIC_FLIGHT=0` (or
//!   [`set_enabled`]) turns it off.
//! * **events** — recent [`FlightEvent`]s teed from the engine's
//!   existing `trace_event` instrumentation sites, capacity
//!   [`EVENT_RING`]. Events fire orders of magnitude more often than
//!   queries complete, so this ring is **off by default** and sampled
//!   (1 in [`sample_every`]) when on — the disabled check is one
//!   relaxed atomic load and allocates nothing, preserving the
//!   zero-alloc tracing-off guarantee pinned by
//!   `crates/engine/tests/trace_overhead.rs`.

use crate::ring::Ring;
use lyric_trace::json::Json;
use lyric_trace::model::EventKind;
use lyric_trace::stats::{EngineStats, COUNTER_NAMES};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Once, OnceLock};

/// Completed-query ring capacity.
pub const QUERY_RING: usize = 256;

/// Sampled-event ring capacity.
pub const EVENT_RING: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ENABLED_ENV: Once = Once::new();

/// True when completed queries are recorded (the default). Initially
/// from `LYRIC_FLIGHT` (`0`/`off`/`false` disables), then [`set_enabled`].
pub fn enabled() -> bool {
    ENABLED_ENV.call_once(|| {
        if let Ok(v) = std::env::var("LYRIC_FLIGHT") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable completed-query recording process-wide.
pub fn set_enabled(on: bool) {
    ENABLED_ENV.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

static EVENTS_ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS_ENV: Once = Once::new();

/// True when trace events are teed into the event ring. **Off by
/// default**; enabled by `LYRIC_FLIGHT_EVENTS=1` or [`set_events_enabled`]
/// (the serve binary and REPL turn it on at startup — they are the
/// surfaces that can show the ring).
pub fn events_enabled() -> bool {
    EVENTS_ENV.call_once(|| {
        if let Ok(v) = std::env::var("LYRIC_FLIGHT_EVENTS") {
            let v = v.trim().to_ascii_lowercase();
            if v == "1" || v == "on" || v == "true" {
                EVENTS_ENABLED.store(true, Ordering::Relaxed);
            }
        }
    });
    EVENTS_ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable the event tee process-wide.
pub fn set_events_enabled(on: bool) {
    EVENTS_ENV.call_once(|| {});
    EVENTS_ENABLED.store(on, Ordering::Relaxed);
}

/// Turn the event tee on *unless* `LYRIC_FLIGHT_EVENTS` was set
/// explicitly. The long-lived surfaces (serve binary, REPL) call this at
/// startup: they can show the ring, so they default the tee on, but an
/// operator's explicit env setting always wins.
pub fn enable_events_default() {
    if std::env::var_os("LYRIC_FLIGHT_EVENTS").is_none() {
        set_events_enabled(true);
    } else {
        let _ = events_enabled();
    }
}

/// 1-in-N event sampling stride; from `LYRIC_FLIGHT_SAMPLE` (default 16,
/// minimum 1).
pub fn sample_every() -> u64 {
    static SAMPLE: OnceLock<u64> = OnceLock::new();
    *SAMPLE.get_or_init(|| {
        std::env::var("LYRIC_FLIGHT_SAMPLE")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .map(|n| n.max(1))
            .unwrap_or(16)
    })
}

/// The engine's per-event-site gate: false (one relaxed load, no
/// allocation) when the tee is off; when on, true for 1 in
/// [`sample_every`] calls. The caller only builds the `EventKind` (and
/// its label string) when this returns true or a tracer is attached.
pub fn event_tick() -> bool {
    if !events_enabled() {
        return false;
    }
    static TICK: AtomicU64 = AtomicU64::new(0);
    TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(sample_every())
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One sampled trace event in the event ring.
#[derive(Clone)]
pub struct FlightEvent {
    /// Engine context generation of the emitting query.
    pub trace_id: u64,
    /// Wall-clock capture time, ms since the Unix epoch.
    pub unix_ms: u64,
    /// The event's rendered label (`EventKind::label`).
    pub label: String,
}

impl FlightEvent {
    /// The event as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::int(self.trace_id)),
            ("unix_ms", Json::int(self.unix_ms)),
            ("label", Json::str(self.label.clone())),
        ])
    }
}

/// One completed query in the query ring.
#[derive(Clone)]
pub struct QuerySummary {
    /// FNV-1a hash of the full query source.
    pub query_hash: u64,
    /// Truncated query text.
    pub query: String,
    /// `"ok"`, `"budget_exceeded"`, or `"error"`.
    pub outcome: &'static str,
    /// The tripped resource name for budget aborts; empty otherwise.
    pub resource: String,
    /// Result rows (0 on error).
    pub rows: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Thread budget the query ran with.
    pub threads: usize,
    /// Engine context generation.
    pub trace_id: u64,
    /// Completion wall-clock time, ms since the Unix epoch.
    pub end_unix_ms: u64,
    /// Per-query engine counters.
    pub stats: EngineStats,
}

impl QuerySummary {
    /// The summary as a JSON object (the `/debug/flight` element).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            (
                "query_hash".to_string(),
                Json::str(format!("{:016x}", self.query_hash)),
            ),
            ("query".to_string(), Json::str(self.query.clone())),
            ("outcome".to_string(), Json::str(self.outcome)),
        ];
        if !self.resource.is_empty() {
            pairs.push(("resource".to_string(), Json::str(self.resource.clone())));
        }
        pairs.extend([
            ("rows".to_string(), Json::int(self.rows)),
            ("duration_us".to_string(), Json::int(self.duration_us)),
            ("threads".to_string(), Json::int(self.threads as u64)),
            ("trace_id".to_string(), Json::int(self.trace_id)),
            ("end_unix_ms".to_string(), Json::int(self.end_unix_ms)),
            (
                "stats".to_string(),
                Json::Obj(
                    COUNTER_NAMES
                        .into_iter()
                        .zip(self.stats.counters())
                        .filter(|(_, v)| *v > 0)
                        .map(|(k, v)| (k.to_string(), Json::int(v)))
                        .collect(),
                ),
            ),
        ]);
        Json::Obj(pairs)
    }
}

fn query_ring() -> &'static Ring<QuerySummary> {
    static R: OnceLock<Ring<QuerySummary>> = OnceLock::new();
    R.get_or_init(|| Ring::new(QUERY_RING))
}

fn event_ring() -> &'static Ring<FlightEvent> {
    static R: OnceLock<Ring<FlightEvent>> = OnceLock::new();
    R.get_or_init(|| Ring::new(EVENT_RING))
}

fn recorded_counter() -> &'static lyric_metrics::Counter {
    static C: OnceLock<lyric_metrics::Counter> = OnceLock::new();
    C.get_or_init(|| {
        lyric_metrics::global().counter(
            "lyric_flight_queries_total",
            "Completed queries recorded in the flight-recorder ring.",
        )
    })
}

/// Record a completed query (no-op while the recorder is disabled).
pub fn record_query(summary: QuerySummary) {
    if !enabled() {
        return;
    }
    query_ring().push(summary);
    recorded_counter().inc();
}

/// Record one sampled trace event. Callers gate on [`event_tick`]
/// first; this function unconditionally pushes.
pub fn record_event(trace_id: u64, kind: &EventKind) {
    event_ring().push(FlightEvent {
        trace_id,
        unix_ms: unix_ms(),
        label: kind.label(),
    });
}

/// The held query summaries, oldest first.
pub fn recent_queries() -> Vec<QuerySummary> {
    query_ring().snapshot()
}

/// The held sampled events, oldest first.
pub fn recent_events() -> Vec<FlightEvent> {
    event_ring().snapshot()
}

/// Empty both rings (tests and the REPL's dump-then-reset flows).
pub fn clear() {
    query_ring().clear();
    event_ring().clear();
}

/// The recorder state as a JSON document (the `/debug/flight` body).
pub fn to_json() -> Json {
    Json::obj([
        ("enabled", Json::Bool(enabled())),
        ("events_enabled", Json::Bool(events_enabled())),
        ("query_capacity", Json::int(query_ring().capacity() as u64)),
        ("event_capacity", Json::int(event_ring().capacity() as u64)),
        ("queries_recorded", Json::int(query_ring().pushed())),
        (
            "queries",
            Json::Arr(recent_queries().iter().map(|q| q.to_json()).collect()),
        ),
        (
            "events",
            Json::Arr(recent_events().iter().map(|e| e.to_json()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(hash: u64) -> QuerySummary {
        QuerySummary {
            query_hash: hash,
            query: "SELECT X FROM Desk X".to_string(),
            outcome: "ok",
            resource: String::new(),
            rows: 1,
            duration_us: 42,
            threads: 1,
            trace_id: hash,
            end_unix_ms: unix_ms(),
            stats: EngineStats {
                pivots: 3,
                ..Default::default()
            },
        }
    }

    #[test]
    fn recorded_queries_round_trip_through_json() {
        set_enabled(true);
        record_query(summary(0xabcd));
        let doc = to_json();
        let text = doc.to_string();
        let parsed = lyric_trace::json::parse(&text).expect("valid JSON");
        let queries = parsed.get("queries").unwrap().as_arr().unwrap();
        assert!(queries
            .iter()
            .any(|q| q.get("query_hash").and_then(Json::as_str) == Some("000000000000abcd")));
        let mine = queries
            .iter()
            .find(|q| q.get("query_hash").and_then(Json::as_str) == Some("000000000000abcd"))
            .unwrap();
        assert_eq!(
            mine.get("stats").unwrap().get("pivots").unwrap().as_f64(),
            Some(3.0)
        );
        assert!(mine.get("resource").is_none(), "empty resource omitted");
    }

    #[test]
    fn disabled_recorder_drops_summaries() {
        set_enabled(false);
        let before = query_ring().pushed();
        record_query(summary(0xfeed));
        assert_eq!(query_ring().pushed(), before);
        set_enabled(true);
    }

    #[test]
    fn event_tick_is_false_while_disabled_and_samples_when_on() {
        set_events_enabled(false);
        assert!(!event_tick());
        set_events_enabled(true);
        let hits = (0..(sample_every() * 4)).filter(|_| event_tick()).count() as u64;
        assert!(
            hits >= 3,
            "roughly 1 in {} sampled, got {hits}",
            sample_every()
        );
        set_events_enabled(false);
    }
}
