//! Anomaly dumps: serialize the flight-recorder state to a black-box
//! file when something goes wrong.
//!
//! A ring buffer is only useful if its contents survive the incident.
//! When a query aborts on budget, panics, fails in the engine after
//! passing the analyzer, or breaches the `LYRIC_SLOW_MS` threshold, the
//! engine calls [`dump`] with a [`Trigger`] and an *offender* summary
//! (query text, outcome, plan). The dump is one self-contained JSON
//! document — recorder rings, in-flight registry, build identity —
//! written to `LYRIC_FLIGHT_DIR` (or the [`set_dump_dir`] override) as
//! `flight-<unix_ms>-<trigger>-<n>.json`. No directory configured means
//! no dump: the feature is opt-in per deployment, and the write happens
//! on the (rare, already-doomed) anomaly path, never on the hot path.
//!
//! Panics are special: the engine's chained panic hook calls
//! [`panic_dump`] for non-budget payloads, which dumps only when the
//! panicking thread actually has an in-flight query (a test harness
//! panicking elsewhere must not spray files), with a recursion guard so
//! a panic inside the dump itself cannot loop.

use crate::inflight;
use crate::recorder;
use lyric_trace::json::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

/// Why a dump was written; becomes the `trigger` member and part of the
/// file name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// A resource budget tripped mid-evaluation.
    BudgetAbort,
    /// A panic unwound through an in-flight query.
    Panic,
    /// The analyzer admitted the query but the engine still errored.
    EngineError,
    /// The query finished but breached the `LYRIC_SLOW_MS` threshold.
    Slow,
    /// An operator asked for a dump (REPL `:flight dump`).
    Manual,
}

impl Trigger {
    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Trigger::BudgetAbort => "budget_abort",
            Trigger::Panic => "panic",
            Trigger::EngineError => "engine_error",
            Trigger::Slow => "slow",
            Trigger::Manual => "manual",
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn dir_slot() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    static ENV: Once = Once::new();
    let slot = DIR.get_or_init(|| Mutex::new(None));
    ENV.call_once(|| {
        if let Ok(dir) = std::env::var("LYRIC_FLIGHT_DIR") {
            let dir = dir.trim().to_string();
            if !dir.is_empty() {
                *lock(slot) = Some(PathBuf::from(dir));
            }
        }
    });
    slot
}

/// Override (or, with `None`, clear) the dump directory. The
/// `LYRIC_FLIGHT_DIR` environment variable supplies the initial value;
/// tests use this override to avoid racing on process-global env state.
pub fn set_dump_dir(dir: Option<PathBuf>) {
    *lock(dir_slot()) = dir;
}

/// The directory dumps are written to, if one is configured.
pub fn dump_dir() -> Option<PathBuf> {
    lock(dir_slot()).clone()
}

fn dumps_counter(trigger: Trigger) -> lyric_metrics::Counter {
    lyric_metrics::global().counter_with(
        "lyric_flight_dumps_total",
        "Flight-recorder black-box dumps written, by trigger.",
        &[("trigger", trigger.name())],
    )
}

/// Build the dump document without writing it (also serves
/// `/debug/flight`-style introspection of what *would* be dumped).
pub fn build_doc(trigger: Trigger, offender: Option<Json>) -> Json {
    Json::obj([
        ("v", Json::int(1)),
        ("trigger", Json::str(trigger.name())),
        ("ts_ms", Json::int(recorder::unix_ms())),
        ("git_rev", Json::str(lyric_metrics::build::git_rev())),
        ("version", Json::str(lyric_metrics::build::version())),
        ("offender", offender.unwrap_or(Json::Null)),
        (
            "inflight",
            Json::Arr(inflight::snapshot().iter().map(|s| s.to_json()).collect()),
        ),
        (
            "queries",
            Json::Arr(
                recorder::recent_queries()
                    .iter()
                    .map(|q| q.to_json())
                    .collect(),
            ),
        ),
        (
            "events",
            Json::Arr(
                recorder::recent_events()
                    .iter()
                    .map(|e| e.to_json())
                    .collect(),
            ),
        ),
    ])
}

/// Serialize the recorder state to a black-box file. Returns the path
/// written, or `None` when no dump directory is configured or the write
/// failed (the anomaly path must never turn an abort into a second
/// failure, so I/O errors are swallowed).
pub fn dump(trigger: Trigger, offender: Option<Json>) -> Option<PathBuf> {
    let dir = dump_dir()?;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let doc = build_doc(trigger, offender);
    let path = dir.join(format!(
        "flight-{}-{}-{n}.json",
        recorder::unix_ms(),
        trigger.name()
    ));
    let _ = std::fs::create_dir_all(&dir);
    let mut text = doc.to_string();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => {
            dumps_counter(trigger).inc();
            Some(path)
        }
        Err(_) => None,
    }
}

/// The panic-hook entry: dump if (and only if) the panicking thread has
/// an in-flight query and a dump directory is configured. `payload` is
/// the rendered panic message. Guarded against recursive panics.
pub fn panic_dump(payload: &str) {
    thread_local! {
        static DUMPING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }
    if DUMPING.with(|d| d.replace(true)) {
        return;
    }
    let finish = || DUMPING.with(|d| d.set(false));
    if dump_dir().is_none() {
        finish();
        return;
    }
    if let Some(slot) = inflight::current_snapshot() {
        let mut offender = match slot.to_json() {
            Json::Obj(pairs) => pairs,
            _ => Vec::new(),
        };
        offender.push(("panic".to_string(), Json::str(payload)));
        let _ = dump(Trigger::Panic, Some(Json::Obj(offender)));
    }
    finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_dir_means_no_dump() {
        set_dump_dir(None);
        assert!(dump(Trigger::Manual, None).is_none());
    }

    #[test]
    fn doc_has_the_pinned_top_level_members() {
        let doc = build_doc(Trigger::BudgetAbort, Some(Json::str("offender")));
        for key in [
            "v", "trigger", "ts_ms", "git_rev", "version", "offender", "inflight", "queries",
            "events",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(doc.get("trigger").unwrap().as_str(), Some("budget_abort"));
        let parsed = lyric_trace::json::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(parsed.get("v").unwrap().as_f64(), Some(1.0));
    }
}
