//! A fixed-capacity, lock-striped ring buffer.
//!
//! The flight recorder keeps the last N completed-query summaries and
//! the last M sampled trace events for the lifetime of the process.
//! Writers are concurrent queries on arbitrary threads; readers are the
//! `/debug/flight` endpoint and anomaly dumps, which are rare. The
//! classic answer is one mutex around a `VecDeque`, but that serializes
//! every completing query on one lock. Instead the buffer is striped:
//! a global atomic hands out a total-order sequence number, and entry
//! `seq` lives in stripe `seq % STRIPES`, each stripe its own small
//! mutex-guarded deque. Writers touching different stripes never
//! contend; readers lock the stripes one at a time and merge by
//! sequence number.
//!
//! The striping preserves the properties a black-box recorder needs
//! (pinned by the proptest layer in `tests/ring_properties.rs`):
//!
//! * **bounded** — each stripe holds at most `capacity / STRIPES`
//!   entries, so the whole ring never exceeds `capacity` (capacities
//!   are rounded up to a stripe multiple at construction);
//! * **no loss below capacity** — sequence numbers are dealt to stripes
//!   round-robin, so `k ≤ capacity` pushes put at most `capacity /
//!   STRIPES` entries in any stripe: nothing is evicted;
//! * **FIFO** — [`Ring::snapshot`] returns entries sorted by sequence
//!   number, and eviction always discards the lowest sequence in the
//!   fullest stripe, which round-robin dealing keeps within one stripe
//!   "lap" of global FIFO order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Number of stripes; power of two so the stripe pick is a mask.
const STRIPES: usize = 8;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bounded multi-producer ring of `T`s; see the module docs for the
/// striping scheme and its guarantees.
pub struct Ring<T> {
    stripes: Vec<Mutex<VecDeque<(u64, T)>>>,
    seq: AtomicU64,
    stripe_cap: usize,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` entries (rounded up to the next
    /// multiple of the stripe count; minimum one entry per stripe).
    pub fn new(capacity: usize) -> Ring<T> {
        let stripe_cap = capacity.div_ceil(STRIPES).max(1);
        Ring {
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            seq: AtomicU64::new(0),
            stripe_cap,
        }
    }

    /// The bounded capacity (stripe multiple; ≥ the requested capacity).
    pub fn capacity(&self) -> usize {
        self.stripe_cap * STRIPES
    }

    /// Total pushes over the ring's lifetime (≥ current length).
    pub fn pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Append an entry, evicting the oldest entry of its stripe if that
    /// stripe is full. Returns the entry's global sequence number.
    pub fn push(&self, item: T) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut q = lock(&self.stripes[(seq as usize) & (STRIPES - 1)]);
        // Sequence numbers are assigned before the stripe lock is taken,
        // so a slow writer can arrive after a faster, higher-sequence
        // one; insert in sequence order (scanning from the back — the
        // common case is an append).
        let mut at = q.len();
        while at > 0 && q[at - 1].0 > seq {
            at -= 1;
        }
        q.insert(at, (seq, item));
        while q.len() > self.stripe_cap {
            q.pop_front();
        }
        seq
    }

    /// Entries currently held (racy under concurrent pushes; exact when
    /// quiescent).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock(s).len()).sum()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard every entry (sequence numbers keep advancing).
    pub fn clear(&self) {
        for s in &self.stripes {
            lock(s).clear();
        }
    }
}

impl<T: Clone> Ring<T> {
    /// Every held entry, oldest first (sorted by sequence number).
    pub fn snapshot(&self) -> Vec<T> {
        let mut all: Vec<(u64, T)> = Vec::with_capacity(self.capacity());
        for s in &self.stripes {
            all.extend(lock(s).iter().cloned());
        }
        all.sort_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, item)| item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_stripe_multiple() {
        assert_eq!(Ring::<u32>::new(1).capacity(), 8);
        assert_eq!(Ring::<u32>::new(8).capacity(), 8);
        assert_eq!(Ring::<u32>::new(9).capacity(), 16);
        assert_eq!(Ring::<u32>::new(256).capacity(), 256);
    }

    #[test]
    fn below_capacity_nothing_is_lost_and_order_is_fifo() {
        let ring = Ring::new(16);
        for i in 0..16u32 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn above_capacity_the_oldest_entries_are_evicted() {
        let ring = Ring::new(16);
        for i in 0..100u32 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 16);
        let snap = ring.snapshot();
        assert_eq!(snap, (84..100).collect::<Vec<u32>>(), "newest 16 survive");
        assert_eq!(ring.pushed(), 100);
    }

    #[test]
    fn clear_empties_but_keeps_counting() {
        let ring = Ring::new(8);
        ring.push(1u8);
        ring.clear();
        assert!(ring.is_empty());
        ring.push(2u8);
        assert_eq!(ring.pushed(), 2);
        assert_eq!(ring.snapshot(), vec![2u8]);
    }
}
