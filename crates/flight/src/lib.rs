//! Process-lifetime flight recorder and in-flight query registry.
//!
//! Quantifier elimination is worst-case exponential, so a legitimate
//! LyriC query can run for minutes — and while it runs, or after it
//! aborts, the process has historically been a black box. This crate is
//! the live-introspection and post-mortem layer the ROADMAP's serving
//! and streaming items sit on. Three pieces:
//!
//! * [`inflight`] — a registry of currently-executing queries. Every
//!   `execute*` entry registers a slot (query hash + truncated text,
//!   start time, thread count, budget caps) and the engine mirrors its
//!   budgeted counters into the slot's shared atomics, so
//!   `/debug/inflight` and REPL `:inflight` show live progress and
//!   percent-of-budget. A guard type deregisters on every exit path,
//!   including budget unwind and panic.
//! * [`recorder`] — fixed-capacity lock-striped [`ring::Ring`]s of
//!   completed-query summaries and sampled trace events (teed from the
//!   existing `lyric-trace` instrumentation sites; zero-alloc when
//!   disabled, 1-in-N sampled when enabled).
//! * [`dump`] — the anomaly black box: on budget abort, panic,
//!   analyzer-pass-but-engine-error, or a `LYRIC_SLOW_MS` breach, the
//!   recorder state plus the offender's summary is serialized to a
//!   structured JSON file under `LYRIC_FLIGHT_DIR`.
//!
//! Like `lyric-trace` and `lyric-metrics`, this crate is dependency-free
//! (std plus those two) and sits *below* `lyric-engine` in the
//! workspace: the engine pushes deltas in, surfaces pull JSON out, and
//! nothing here ever blocks a query on more than a striped mutex.
//!
//! Environment: `LYRIC_FLIGHT=0` disables query recording,
//! `LYRIC_FLIGHT_EVENTS=1` enables the event tee,
//! `LYRIC_FLIGHT_SAMPLE=N` sets the event sampling stride, and
//! `LYRIC_FLIGHT_DIR=...` configures (and thereby enables) anomaly
//! dumps. Overhead is pinned by experiment E17 and the allocator-guard
//! test in `crates/engine/tests/trace_overhead.rs`.

#![warn(missing_docs)]

pub mod dump;
pub mod inflight;
pub mod recorder;
pub mod ring;

pub use dump::{dump, panic_dump, set_dump_dir, Trigger};
pub use inflight::{register, BudgetCaps, InflightDesc, InflightGuard, Progress};
pub use recorder::{
    event_tick, record_event, record_query, set_enabled, set_events_enabled, QuerySummary,
};
pub use ring::Ring;
