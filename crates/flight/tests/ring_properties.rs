//! Property layer for the lock-striped ring buffer.
//!
//! The flight recorder's usefulness rests on three [`Ring`] guarantees
//! (see the module docs in `src/ring.rs`): held entries never exceed the
//! (stripe-rounded) capacity, nothing is lost while at or below
//! capacity, and `snapshot` is globally FIFO — under single-threaded
//! pushes eviction keeps *exactly* the newest `capacity` entries,
//! because round-robin sequence dealing spreads any contiguous window of
//! `capacity` sequence numbers evenly across the stripes. A scoped-
//! thread soak pins the concurrent half: no loss below capacity, every
//! entry distinct, and each writer's entries appear in its push order
//! (sequence numbers are handed out atomically, so one thread's pushes
//! are strictly increasing and `snapshot`'s sort restores them).

use lyric_flight::Ring;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bounded: arbitrary push counts never leave more than `capacity()`
    /// entries held, and the lifetime counter sees every push.
    #[test]
    fn held_entries_never_exceed_capacity(cap in 1usize..200, pushes in 0usize..600) {
        let ring = Ring::new(cap);
        for i in 0..pushes {
            ring.push(i);
        }
        prop_assert!(ring.capacity() >= cap, "capacity only rounds up");
        prop_assert!(ring.len() <= ring.capacity());
        prop_assert_eq!(ring.pushed(), pushes as u64);
    }

    /// No loss at or below capacity, and the snapshot is FIFO.
    #[test]
    fn below_capacity_is_lossless_fifo(cap in 1usize..200) {
        let ring = Ring::new(cap);
        let n = ring.capacity();
        for i in 0..n {
            ring.push(i);
        }
        prop_assert_eq!(ring.snapshot(), (0..n).collect::<Vec<_>>());
    }

    /// Past capacity, eviction discards oldest-first: exactly the newest
    /// `capacity()` entries survive, still in push order.
    #[test]
    fn eviction_keeps_exactly_the_newest_entries(cap in 1usize..100, extra in 1usize..300) {
        let ring = Ring::new(cap);
        let n = ring.capacity() + extra;
        for i in 0..n {
            ring.push(i);
        }
        prop_assert_eq!(ring.len(), ring.capacity());
        prop_assert_eq!(ring.snapshot(), (n - ring.capacity()..n).collect::<Vec<_>>());
    }
}

/// Concurrent writers filling the ring to exactly its capacity: nothing
/// may be evicted, nothing duplicated, and each thread's entries must
/// come back in that thread's push order.
#[test]
fn concurrent_writers_below_capacity_lose_nothing_and_keep_per_thread_order() {
    const THREADS: usize = 8;
    const PER: usize = 64;
    let ring = Ring::new(THREADS * PER);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ring = &ring;
            s.spawn(move || {
                for i in 0..PER {
                    ring.push((t, i));
                }
            });
        }
    });
    let snap = ring.snapshot();
    assert_eq!(snap.len(), THREADS * PER, "at capacity nothing is evicted");
    let distinct: std::collections::BTreeSet<(usize, usize)> = snap.iter().copied().collect();
    assert_eq!(distinct.len(), THREADS * PER, "no entry duplicated");
    for t in 0..THREADS {
        let order: Vec<usize> = snap
            .iter()
            .filter(|(w, _)| *w == t)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(
            order,
            (0..PER).collect::<Vec<_>>(),
            "writer {t} out of order"
        );
    }
}

/// The same soak past capacity: the bound holds under contention and
/// surviving entries still honour per-writer order (eviction only ever
/// removes a stripe's oldest, so it cannot reorder what remains).
#[test]
fn concurrent_writers_past_capacity_stay_bounded_and_ordered() {
    const THREADS: usize = 8;
    const PER: usize = 200;
    let ring = Ring::new(64);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ring = &ring;
            s.spawn(move || {
                for i in 0..PER {
                    ring.push((t, i));
                }
            });
        }
    });
    assert_eq!(ring.pushed(), (THREADS * PER) as u64);
    let snap = ring.snapshot();
    assert_eq!(
        snap.len(),
        ring.capacity(),
        "full ring holds exactly capacity"
    );
    for t in 0..THREADS {
        let order: Vec<usize> = snap
            .iter()
            .filter(|(w, _)| *w == t)
            .map(|&(_, i)| i)
            .collect();
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "writer {t}'s surviving entries out of order: {order:?}"
        );
    }
}
