//! Allocator guard for the flight recorder's hot-path gates.
//!
//! The engine consults [`recorder::enabled`] once per query and
//! [`recorder::event_tick`] once per `trace_event` site; with the tee
//! off those gates are the *entire* cost of the feature, so they must
//! be a relaxed atomic load — no heap allocation, ever. A counting
//! global allocator pins that, mirroring the engine's own guard for the
//! disabled tracing path (`crates/engine/tests/trace_overhead.rs`).

use lyric_flight::recorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_gates_allocate_nothing() {
    recorder::set_events_enabled(false);
    // Warm the `Once`-guarded env reads outside the measured window.
    let _ = recorder::enabled();
    let _ = recorder::events_enabled();
    let _ = recorder::event_tick();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        assert!(!recorder::event_tick(), "tee is off");
        let _ = recorder::enabled();
        let _ = recorder::events_enabled();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled recorder gates allocated {} times",
        after - before
    );
}
