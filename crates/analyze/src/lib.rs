//! `lyric-analyze` — the static semantic analyzer for LyriC queries.
//!
//! This crate is the stable façade over the analysis passes implemented in
//! [`mod@lyric::analyze`]: name resolution against the IS-A hierarchy, static
//! typing of extended path expressions, §3.1 constraint-family inference
//! with closure-rule checking, scope well-formedness, and cheap semantic
//! lints (plus an opt-in LP-backed deep unsatisfiability check). Every
//! finding is a [`Diagnostic`] with a stable `LYAxxx` code and a byte
//! [`Span`] into the query source; [`render`] produces the caret-style
//! text form the REPL's `:check` command prints.
//!
//! # Example
//!
//! ```
//! use lyric_analyze::{analyze_src, AnalyzerOptions};
//!
//! let db = lyric::paper_example::database();
//! let diags = analyze_src(
//!     db.schema(),
//!     "SELECT X FROM Desk X WHERE X.bogus[Y]",
//!     &AnalyzerOptions::default(),
//! );
//! assert_eq!(diags[0].code, lyric_analyze::codes::UNKNOWN_ATTRIBUTE);
//! ```

#![warn(missing_docs)]

pub use lyric::analyze::{analyze, analyze_src, AnalyzerOptions};
pub use lyric::diag::{codes, render, render_all, Diagnostic, Severity};
pub use lyric::span::Span;
