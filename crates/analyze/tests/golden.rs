//! Golden corpus pinning every diagnostic code: one positive query (the
//! code fires, with a meaningful span) and one negative query (a nearby
//! correct query stays clean) per `LYAxxx` code, plus a coverage check
//! that the corpus exercises the whole [`codes::ALL`] table.

use lyric::paper_example;
use lyric_analyze::{analyze_src, codes, AnalyzerOptions, Diagnostic, Severity};

/// Which option set a corpus entry needs to fire.
#[derive(Clone, Copy)]
enum Mode {
    Default,
    Strict,
    Deep,
}

fn opts(mode: Mode) -> AnalyzerOptions {
    match mode {
        Mode::Default => AnalyzerOptions::default(),
        Mode::Strict => AnalyzerOptions::strict(),
        Mode::Deep => AnalyzerOptions::deep(),
    }
}

fn diags(src: &str, mode: Mode) -> Vec<Diagnostic> {
    let db = paper_example::database();
    analyze_src(db.schema(), src, &opts(mode))
}

/// (code, mode, query, substring the span must cover — empty to skip).
const POSITIVES: &[(&str, Mode, &str, &str)] = &[
    (
        codes::SYNTAX,
        Mode::Default,
        "SELECT X FROM Desk X WHERE",
        "",
    ),
    (
        codes::UNKNOWN_CLASS,
        Mode::Default,
        "SELECT X FROM Nonexistent X",
        "Nonexistent",
    ),
    (
        codes::UNKNOWN_ATTRIBUTE,
        Mode::Default,
        "SELECT X FROM Desk X WHERE X.bogus[Y]",
        "bogus",
    ),
    (
        codes::UNBOUND_VARIABLE,
        Mode::Default,
        "SELECT Y FROM Desk X WHERE Y.extent[E] AND X.drawer[Y]",
        "Y.extent[E]",
    ),
    (
        codes::NOT_A_CST,
        Mode::Default,
        "SELECT X FROM Desk X WHERE (X.name AND w <= 1)",
        "X.name",
    ),
    (
        codes::NON_NUMERIC,
        Mode::Default,
        "SELECT X FROM Office_Object X WHERE X.name < 3",
        "X.name",
    ),
    (
        codes::DIMENSION_MISMATCH,
        Mode::Default,
        "SELECT X FROM Desk X WHERE X.extent[E] AND (E(a,b,c))",
        "E(a,b,c)",
    ),
    (
        codes::NONLINEAR_PRODUCT,
        Mode::Default,
        "SELECT D, ((x,y) | x * y <= 1) FROM Desk D",
        "",
    ),
    (
        codes::OBJECTIVE_DIMENSION,
        Mode::Default,
        "SELECT MAX(q SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
        "MAX",
    ),
    (
        codes::NON_CONJUNCTIVE_NEGATION,
        Mode::Default,
        "SELECT D, ((x) | NOT (x <= 1 OR x >= 3)) FROM Desk D",
        "",
    ),
    (
        codes::OPAQUE_NEGATION,
        Mode::Strict,
        "SELECT X FROM Desk X WHERE X.extent[E] AND (NOT E)",
        "E",
    ),
    (
        codes::UNRESTRICTED_PROJECTION,
        Mode::Strict,
        "SELECT D, ((x,y) | x <= z AND y <= u AND z <= 1 AND u >= 0) FROM Desk D",
        "",
    ),
    (
        codes::DISEQUATION_ELIMINATION,
        Mode::Strict,
        "SELECT D, ((x) | x <= y AND y != 0) FROM Desk D",
        "",
    ),
    (
        codes::DUPLICATE_CST_VARIABLE,
        Mode::Default,
        "SELECT D, ((x,x) | x <= 1) FROM Desk D",
        "",
    ),
    (
        codes::DUPLICATE_FROM_VARIABLE,
        Mode::Default,
        "SELECT X FROM Desk X, Office_Object X",
        "X",
    ),
    (
        codes::UNUSED_BINDING,
        Mode::Default,
        "SELECT X FROM Desk X, Office_Object O",
        "O",
    ),
    (
        codes::TRIVIALLY_UNSAT,
        Mode::Default,
        "SELECT D, ((x) | x <= 1 AND x >= 2) FROM Desk D",
        "",
    ),
    (
        // Box-immune infeasibility: every atom links two variables with
        // unbounded partners, so interval propagation learns nothing and
        // the LP fallback is what proves emptiness.
        codes::LP_UNSAT,
        Mode::Deep,
        "SELECT D, ((x,y) | x <= y AND y <= x AND x + y >= 3 AND x + y <= 1) FROM Desk D",
        "",
    ),
    (
        // No single atom and no single variable is contradictory; only
        // propagating y's bound through x + y <= 4 empties x's interval.
        codes::STATIC_UNSAT,
        Mode::Default,
        "SELECT D, ((x,y) | x >= 2 AND y >= 3 AND x + y <= 4) FROM Desk D",
        "",
    ),
    (
        codes::STATIC_ENTAILED,
        Mode::Default,
        "SELECT D, ((x) | x >= 0 AND x <= 2 AND x <= 5) FROM Desk D",
        "x <= 5",
    ),
    (
        codes::DEAD_DISJUNCT,
        Mode::Default,
        "SELECT D, ((x,y) | (x >= 2 AND y >= 3 AND x + y <= 4) OR x <= 1) FROM Desk D",
        "",
    ),
];

/// Near-miss versions of the positives that must analyze clean under the
/// same options.
const NEGATIVES: &[(Mode, &str)] = &[
    (Mode::Default, "SELECT X FROM Desk X"),
    (Mode::Default, "SELECT X.name FROM Desk X"), // inherited attribute
    // `drawer_center` is declared on subclasses of Office_Object only:
    // the extent may hold desks, so the path is dynamically resolvable.
    (
        Mode::Default,
        "SELECT X FROM Office_Object X WHERE X.drawer_center[C] AND (C)",
    ),
    (
        Mode::Default,
        "SELECT Y FROM Desk X WHERE X.drawer[Y] AND Y.extent[E]",
    ),
    (
        Mode::Default,
        "SELECT X FROM Desk X WHERE (X.extent AND w <= 1)",
    ),
    (
        Mode::Default,
        "SELECT X FROM Office_Object X WHERE X.name = 'desk'",
    ),
    (
        Mode::Default,
        "SELECT X FROM Desk X WHERE X.extent[E] AND (E(a,b))",
    ),
    (
        Mode::Default,
        "SELECT D, ((x,y) | 2 * x - y <= 1) FROM Desk D",
    ),
    (
        Mode::Default,
        "SELECT MAX(w SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    ),
    (Mode::Default, "SELECT D, ((x) | NOT (x <= 1)) FROM Desk D"),
    (
        Mode::Strict,
        "SELECT D, ((x) | x <= z AND z <= 1) FROM Desk D",
    ),
    (
        Mode::Strict,
        "SELECT D, ((x,y) | x <= 1 AND y != 0 AND y <= x) FROM Desk D",
    ),
    (
        Mode::Default,
        "SELECT D, ((x,y) | x <= 1 AND y <= 1) FROM Desk D",
    ),
    (Mode::Default, "SELECT X, O FROM Desk X, Office_Object O"),
    (
        Mode::Default,
        "SELECT D, ((x) | x >= 1 AND x <= 2) FROM Desk D",
    ),
    (
        Mode::Deep,
        "SELECT D, ((x,y) | (x <= 0 OR y <= 0) AND x + y >= -3) FROM Desk D",
    ),
    // Relaxing the STATIC_UNSAT positive's sum keeps every box nonempty.
    (
        Mode::Default,
        "SELECT D, ((x,y) | x >= 2 AND y >= 3 AND x + y <= 10) FROM Desk D",
    ),
    // And the relaxed branch is live, so no disjunct is dead.
    (
        Mode::Default,
        "SELECT D, ((x,y) | (x >= 2 AND y >= 3 AND x + y <= 6) OR x <= 1) FROM Desk D",
    ),
];

/// The §4.1 paper queries and the repo's example queries, verbatim. The
/// interval-box lints are always on, so they must never fire on a
/// legitimate query — a false positive here would spam every `:check`.
const PAPER_CORPUS: &[&str] = &[
    "SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']",
    "SELECT O, ((u,v) | E AND D AND L(x,y))
     FROM Office_Object O, Office_Object L
     WHERE O.extent[E] AND O.translation[D] AND L.extent[M]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "CREATE VIEW Overlap AS SUBCLASS OF Thing
     SELECT first = X, second = Y
     SIGNATURE first => Office_Object, second =>> Office_Object
     FROM Office_Object X, Office_Object Y
     OID FUNCTION OF X, Y
     WHERE X.extent[U] AND Y.extent[V]",
    "SELECT MAX(2*x + y SUBJECT TO ((x,y) | C(x,y) AND x >= 0)) FROM Catalog C2",
    "SELECT D FROM Desk D WHERE D.extent[E] AND (E(w,z) AND w >= 1 AND z >= 1)",
    "SELECT D FROM Desk D WHERE D.extent[E] AND (E(w,z) AND w <= -1 AND z >= 1)",
    "SELECT MAX(w SUBJECT TO ((w,z) | E AND z >= 1)) FROM Desk D WHERE D.extent[E]",
    "SELECT MAX(w SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    "SELECT MAX_POINT(z SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    "SELECT D FROM Desk D WHERE D.drawer_center[C] AND (C(p,q) AND q != -1)",
    "SELECT D1, D2 FROM Drawer D1, Drawer D2
     WHERE D1.extent[U] AND D2.extent[V] AND (U AND V) AND D1.color = D2.color",
    "SELECT X FROM Desk X WHERE (X.color = 'red' OR X.color = 'blue') AND X.drawer[D] AND (D)",
];

#[test]
fn paper_corpus_is_clean_of_box_lints() {
    let new_codes = [
        codes::STATIC_UNSAT,
        codes::STATIC_ENTAILED,
        codes::DEAD_DISJUNCT,
    ];
    for src in PAPER_CORPUS {
        for mode in [Mode::Default, Mode::Strict] {
            let ds = diags(src, mode);
            let fired: Vec<&Diagnostic> =
                ds.iter().filter(|d| new_codes.contains(&d.code)).collect();
            assert!(
                fired.is_empty(),
                "box lint false positive on paper query {src:?}: {fired:?}"
            );
        }
    }
}

#[test]
fn every_positive_fires_with_span() {
    for (code, mode, src, needle) in POSITIVES {
        let ds = diags(src, *mode);
        let hit = ds.iter().find(|d| d.code == *code).unwrap_or_else(|| {
            panic!("expected {code} for {src:?}, got {ds:?}");
        });
        if !needle.is_empty() {
            assert!(
                !hit.span.is_dummy(),
                "{code} should carry a span for {src:?}: {hit:?}"
            );
            let covered = &src[hit.span.start..hit.span.end];
            assert!(
                covered.contains(needle) || needle.contains(covered),
                "{code} span covers {covered:?}, expected around {needle:?} in {src:?}"
            );
        }
    }
}

#[test]
fn every_negative_is_clean() {
    for (mode, src) in NEGATIVES {
        let ds = diags(src, *mode);
        assert!(
            ds.is_empty(),
            "expected clean analysis for {src:?}, got {ds:?}"
        );
    }
}

#[test]
fn corpus_covers_every_code() {
    let exercised: std::collections::BTreeSet<&str> = POSITIVES.iter().map(|(c, ..)| *c).collect();
    for (code, desc) in codes::ALL {
        assert!(
            exercised.contains(code),
            "no golden query exercises {code} ({desc})"
        );
    }
    assert_eq!(exercised.len(), codes::ALL.len());
}

#[test]
fn severities_are_pinned() {
    let warnings: std::collections::BTreeSet<&str> = [
        codes::OPAQUE_NEGATION,
        codes::UNRESTRICTED_PROJECTION,
        codes::DISEQUATION_ELIMINATION,
        codes::UNUSED_BINDING,
        codes::TRIVIALLY_UNSAT,
        codes::LP_UNSAT,
        codes::STATIC_UNSAT,
        codes::STATIC_ENTAILED,
        codes::DEAD_DISJUNCT,
    ]
    .into_iter()
    .collect();
    for (code, mode, src, _) in POSITIVES {
        let ds = diags(src, *mode);
        let hit = ds.iter().find(|d| d.code == *code).expect("positive fires");
        let expected = if warnings.contains(code) {
            Severity::Warning
        } else {
            Severity::Error
        };
        assert_eq!(hit.severity, expected, "{code} severity for {src:?}");
    }
}

#[test]
fn strict_lints_stay_quiet_by_default() {
    for (code, mode, src, _) in POSITIVES {
        if matches!(mode, Mode::Strict) {
            let ds = diags(src, Mode::Default);
            assert!(
                ds.iter().all(|d| d.code != *code),
                "{code} must be strict-only, fired by default for {src:?}"
            );
        }
    }
}

#[test]
fn rendered_diagnostics_point_at_source() {
    let src = "SELECT X FROM Nonexistent X";
    let ds = diags(src, Mode::Default);
    let text = lyric_analyze::render_all(&ds, src);
    assert!(text.contains("error[LYA001]"), "{text}");
    assert!(text.contains("^^^^^^^^^^^"), "{text}");
    assert!(text.contains(src), "{text}");
}

/// The analyzer gate runs before any engine work: a rejected query must
/// never cost a single pivot or FM atom.
#[test]
fn rejected_query_never_reaches_the_engine() {
    let mut db = paper_example::database();
    let (res, stats) =
        lyric_engine::run_with(lyric_engine::EngineBudget::unlimited(), false, || {
            lyric::execute(
                &mut db,
                "SELECT X FROM Desk X WHERE X.extent[E] AND (E(a,b,c))",
            )
        })
        .expect("no budget installed");
    assert!(
        matches!(res, Err(lyric::LyricError::Analysis(_))),
        "expected analyzer rejection"
    );
    assert_eq!(stats.pivots, 0, "no simplex work for a rejected query");
    assert_eq!(stats.fm_atoms, 0, "no FM work for a rejected query");
    assert_eq!(stats.sat_checks, 0, "no sat checks for a rejected query");
}

/// Warnings do not gate execution: an unused binding still evaluates.
#[test]
fn warnings_do_not_block_execution() {
    let mut db = paper_example::database();
    let src = "SELECT X FROM Desk X, Office_Object O";
    let ds = analyze_src(db.schema(), src, &AnalyzerOptions::default());
    assert!(ds.iter().any(|d| d.code == codes::UNUSED_BINDING));
    assert!(ds.iter().all(|d| d.severity == Severity::Warning));
    lyric::execute(&mut db, src).expect("warnings are advisory");
}
