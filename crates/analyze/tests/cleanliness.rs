//! Analyzer cleanliness: every query the reproduction ships — the §4.1
//! paper queries and the queries of each example program — must analyze
//! with zero diagnostics. This is the "no false positives on the blessed
//! corpus" contract: if a new lint fires on any of these, the lint is
//! wrong, not the query.

use lyric_analyze::{analyze_src, render_all, AnalyzerOptions};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Schema};

fn assert_clean(schema: &Schema, queries: &[&str]) {
    for src in queries {
        let ds = analyze_src(schema, src, &AnalyzerOptions::default());
        assert!(
            ds.is_empty(),
            "expected zero diagnostics for {src:?}:\n{}",
            render_all(&ds, src)
        );
    }
}

/// The §4.1 queries of the paper, plus the quickstart example, all over
/// the Figure 2 office-design schema.
#[test]
fn paper_and_quickstart_queries_are_clean() {
    let db = lyric::paper_example::database();
    assert_clean(
        db.schema(),
        &[
            // §4.1 retrieval of constraint oids.
            "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
            // §4.1 translation into room coordinates, explicit and
            // schema-copied variable forms.
            "SELECT CO, ((u,v) | E(w,z) AND D(w,z,x,y,u,v) AND x = 6 AND y = 4)
             FROM Office_Object CO
             WHERE CO.extent[E] AND CO.translation[D]",
            "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
             FROM Office_Object CO
             WHERE CO.extent[E] AND CO.translation[D]",
            // §4.1 drawers of desks located in a room region.
            "SELECT O, ((u,v) | D(w,z,x,y,u,v) AND DD(w1,z1,x1,y1,u1,v1) AND w = u1 AND z = v1
                        AND DC(p,q) AND DE(w1,z1) AND L(x,y))
             FROM Object_In_Room O, Desk DSK
             WHERE O.location[L] AND O.catalog_object[DSK]
               AND (L(x,y) AND 0 <= x AND x <= 10 AND 5 <= y AND y <= 10)
               AND DSK.translation[D] AND DSK.drawer_center[DC]
               AND DSK.drawer.translation[DD] AND DSK.drawer.extent[DE]",
            // §4.1 red desks with centered drawers.
            "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
             FROM Desk DSK
             WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
            // §4.1 desks whose drawer stays inside the room.
            "SELECT DSK
             FROM Object_In_Room O, Desk DSK
             WHERE O.catalog_object[DSK] AND O.location[L]
               AND DSK.drawer_center[C] AND DSK.translation[D]
               AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
               AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
                    AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
                    AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
            // §4.1 classification view: one view class per region.
            "CREATE VIEW X AS SUBCLASS OF Object_In_Room
             SELECT Y
             FROM Object_In_Room Y, Region X
             WHERE Y.catalog_object[CO] AND Y.location[L] AND CO.extent[E] AND CO.translation[D]
               AND (((u,v) | E AND D AND L(x,y)) |= X(u,v))",
            // §2.2 Overlap view with an oid function.
            "CREATE VIEW Overlap AS SUBCLASS OF object
             SELECT first = X, second = Y
             SIGNATURE first => Object_In_Room, second => Object_In_Room
             FROM Object_In_Room X, Object_In_Room Y
             OID FUNCTION OF X, Y
             WHERE X.catalog_object[CX] AND Y.catalog_object[CY]
               AND X.location[LX] AND Y.location[LY]
               AND CX.extent[EX] AND CX.translation[DX]
               AND CY.extent[EY] AND CY.translation[DY]
               AND X != Y
               AND (EX(w,z) AND DX(w,z,x,y,u,v) AND LX(x,y)
                    AND EY(w2,z2) AND DY(w2,z2,x2,y2,u,v) AND LY(x2,y2))",
            // §1.2 cut at a given height.
            "SELECT CO, ((w) | E(w,z) AND z = 0.5) FROM Desk CO WHERE CO.extent[E]",
            // §4.2 generalized linear programming.
            "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E)),
                    MAX_POINT(w + z SUBJECT TO ((w,z) | E))
             FROM Desk D WHERE D.extent[E]",
            // §4.1 attribute variables.
            "SELECT A FROM Desk D WHERE D.A[V] AND D.extent[V]",
            // Scalar comparisons over inherited attributes.
            "SELECT X.name FROM Office_Object X WHERE X.color = 'red'",
            "SELECT X FROM Office_Object X WHERE X.color != 'red'",
            // SET-valued attribute retrieval.
            "SELECT C FROM File_Cabinet F WHERE F.drawer_center[C]",
            // Quickstart corpus.
            "SELECT X.name, O.inv_number
             FROM Office_Object X, Object_In_Room O
             WHERE O.catalog_object[X] AND O.inv_number[N] AND X.name[M]",
            "SELECT O.inv_number FROM Object_In_Room O",
            "SELECT DSK FROM Desk DSK WHERE DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
            "SELECT D.name, MAX(w + z SUBJECT TO ((w,z) | E)),
                    MAX_POINT(w + z SUBJECT TO ((w,z) | E))
             FROM Desk D WHERE D.extent[E]",
            // Office-design free-space extent fetch.
            "SELECT O, ((u,v) | E AND D AND L(x,y))
             FROM Object_In_Room O
             WHERE O.catalog_object[C] AND C.extent[E] AND C.translation[D] AND O.location[L]",
        ],
    );
}

/// The chemical-factory LP schema and queries (examples/factory_lp.rs),
/// with the `format!`-assembled profit/stock fragments spelled out.
#[test]
fn factory_lp_queries_are_clean() {
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Process")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar(
                    "constraint",
                    AttrTarget::cst(["m_acid", "m_base", "p_solvent", "p_resin"]),
                )),
        )
        .expect("schema");
    assert_clean(
        &schema,
        &[
            "SELECT P.name, MAX(5 * p_solvent + 8 * p_resin - m_acid - m_base SUBJECT TO
                 ((m_acid,m_base,p_solvent,p_resin) | C AND m_acid <= 80 AND m_base <= 90))
             FROM Process P WHERE P.constraint[C]",
            "SELECT P.name, MAX_POINT(5 * p_solvent + 8 * p_resin - m_acid - m_base SUBJECT TO
                 ((m_acid,m_base,p_solvent,p_resin) | C AND m_acid <= 80 AND m_base <= 90))
             FROM Process P WHERE P.constraint[C]",
            "SELECT P.name FROM Process P WHERE P.constraint[C]
             AND (C AND m_acid <= 80 AND m_base <= 90 AND p_solvent >= 25)",
            "SELECT P.name, ((p_solvent, p_resin) | C AND m_acid <= 80 AND m_base <= 90)
             FROM Process P WHERE P.constraint[C]",
            "SELECT P.name, ((m_acid, m_base) | C AND p_solvent >= 20 AND p_resin >= 10)
             FROM Process P WHERE P.constraint[C]",
        ],
    );
}

/// The GIS schema and queries (examples/gis_regions.rs), including the
/// classification view whose view name is a FROM variable.
#[test]
fn gis_queries_are_clean() {
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Region")
                .cst_class(2)
                .attr(AttrDef::scalar("name", AttrTarget::class("string"))),
        )
        .expect("schema");
    schema
        .add_class(
            ClassDef::new("Site")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar("footprint", AttrTarget::cst(["u", "v"]))),
        )
        .expect("schema");
    assert_clean(
        &schema,
        &[
            "SELECT S.name, R.name
             FROM Site S, Region R
             WHERE S.footprint[F] AND (F(u,v) |= R(u,v))",
            "SELECT S.name, R.name
             FROM Site S, Region R
             WHERE S.footprint[F] AND (F(u,v) AND R(u,v))",
            "CREATE VIEW R AS SUBCLASS OF Site
             SELECT S
             FROM Site S, Region R
             WHERE S.footprint[F] AND (F(u,v) |= R(u,v))",
            "SELECT R, ((u,v) | R(u,v) AND u <= 75) FROM Region R WHERE R.name = 'harbor'",
        ],
    );
}

/// The Maneuver Decision Aid schema and queries (examples/mda_submarine.rs).
#[test]
fn mda_queries_are_clean() {
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Goal")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar("priority", AttrTarget::class("int")))
                .attr(AttrDef::scalar(
                    "region",
                    AttrTarget::cst(["course", "speed", "depth", "time"]),
                )),
        )
        .expect("schema");
    assert_clean(
        &schema,
        &[
            "SELECT A.name, B.name
             FROM Goal A, Goal B
             WHERE A.region[RA] AND B.region[RB] AND A != B
               AND (RA(course,speed,depth,time) AND RB(course,speed,depth,time))",
            "SELECT ((course,speed,depth,time) |
                       A.region(course,speed,depth,time)
                   AND B.region(course,speed,depth,time)
                   AND C.region(course,speed,depth,time))
             FROM Goal A, Goal B, Goal C
             WHERE A.name = 'operational envelope'
               AND B.name = 'maintain depth near 200ft'
               AND C.name = 'avoid land obstacle to the east'",
            "SELECT MIN(speed SUBJECT TO ((course,speed,depth,time) |
                       A.region(course,speed,depth,time)
                   AND B.region(course,speed,depth,time)
                   AND D.region(course,speed,depth,time))),
                    MIN_POINT(speed SUBJECT TO ((course,speed,depth,time) |
                       A.region(course,speed,depth,time)
                   AND B.region(course,speed,depth,time)
                   AND D.region(course,speed,depth,time)))
             FROM Goal A, Goal B, Goal D
             WHERE A.name = 'operational envelope'
               AND B.name = 'maintain depth near 200ft'
               AND D.name = 'quiet running'",
            "SELECT Q.name
             FROM Goal Q, Goal E
             WHERE Q.name = 'quiet running' AND E.name = 'operational envelope'
               AND Q.region[RQ] AND E.region[RE]
               AND ((RQ(course,speed,depth,time) AND depth <= 800) |= speed <= 30)",
            "SELECT Q.name FROM Goal Q
             WHERE Q.name = 'quiet running' AND Q.region[RQ]
               AND (RQ(course,speed,depth,time) AND speed >= 25 AND depth <= 100)",
        ],
    );
}
