//! Interval (box) abstract interpretation over LyriC linear constraints.
//!
//! This crate is the public façade of the box abstract domain that lives
//! inside [`lyric_constraint`] (it must sit there — the engine consults
//! boxes from `Conjunction::satisfiable`, underneath this crate in the
//! dependency order). It re-exports the domain types and hosts the
//! property suite that pins the domain's one non-negotiable contract,
//! **soundness against the LP oracle**:
//!
//! * an empty [`IntervalBox`] implies `Conjunction::satisfiable() == false`;
//! * every satisfying point the exact solver can produce lies inside the
//!   inferred box.
//!
//! The converse direction is explicitly *not* promised — a nonempty box
//! proves nothing (boxes ignore all inter-variable geometry beyond what
//! single-atom refinement recovers) — which is what makes the domain safe
//! to use as a pre-LP prune: see `Conjunction::satisfiable` and the
//! `boxes_differential` suite for the engine-level guarantees
//! (bit-identical answers with pruning on and off).
//!
//! # Example
//!
//! ```
//! use lyric_absint::IntervalBox;
//! use lyric_constraint::{Atom, Conjunction, LinExpr, Var};
//!
//! let x = || LinExpr::var(Var::new("x"));
//! let y = || LinExpr::var(Var::new("y"));
//! // x ≥ 2 ∧ y ≥ 3 ∧ x + y ≤ 4: no single atom is false, but interval
//! // propagation proves the conjunction empty without any LP.
//! let c = Conjunction::of([
//!     Atom::ge(x(), LinExpr::from(2)),
//!     Atom::ge(y(), LinExpr::from(3)),
//!     Atom::le(x() + y(), LinExpr::from(4)),
//! ]);
//! let bx = IntervalBox::of_conjunction(&c);
//! assert!(bx.is_empty());
//! assert!(!c.satisfiable()); // the exact oracle agrees
//! ```

#![warn(missing_docs)]

pub use lyric_constraint::{Interval, IntervalBox, MAX_ROUNDS};

#[cfg(test)]
mod differential {
    use lyric_arith::Rational;
    use lyric_constraint::{Atom, Conjunction, IntervalBox, LinExpr, Var};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random linear atom over `nvars` variables with small integer
    /// coefficients; includes the occasional disequation (the bench
    /// workload generator omits them, and the ≠ transfer has its own
    /// soundness obligations).
    fn random_atom(r: &mut StdRng, nvars: usize) -> Atom {
        let mut e = LinExpr::zero();
        for i in 0..nvars {
            let c = r.gen_range(-3..=3i64);
            if c != 0 {
                e = e + LinExpr::term(Var::new(format!("v{i}")), Rational::from_int(c));
            }
        }
        let rhs = LinExpr::from(r.gen_range(-10..=10i64));
        match r.gen_range(0..10) {
            0 => Atom::eq(e, rhs),
            1 => Atom::lt(e, rhs),
            2 => Atom::neq(e, rhs),
            _ => Atom::le(e, rhs),
        }
    }

    fn random_conjunction(seed: u64, nvars: usize, m: usize) -> Conjunction {
        let mut r = StdRng::seed_from_u64(seed);
        Conjunction::of((0..m).map(|_| random_atom(&mut r, nvars)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soundness, the refutation direction: an empty box is a proof of
        /// unsatisfiability, so it must never contradict the simplex
        /// oracle. (This is the exact property the engine's prune relies
        /// on — a violation here would silently change query answers.)
        #[test]
        fn empty_box_implies_lp_unsat(seed in 0u64..1_000_000, m in 1usize..7) {
            let c = random_conjunction(seed, 3, m);
            if IntervalBox::of_conjunction(&c).is_empty() {
                prop_assert!(!c.satisfiable(), "box empty but LP found {:?} satisfiable", c);
            }
        }

        /// Soundness, the containment direction: any satisfying point the
        /// exact solver produces lies inside the box.
        #[test]
        fn witness_points_lie_inside_the_box(seed in 0u64..1_000_000, m in 1usize..7) {
            let c = random_conjunction(seed, 3, m);
            let bx = IntervalBox::of_conjunction(&c);
            if let Some(p) = c.find_point() {
                prop_assert!(bx.contains(&p), "witness {p:?} escapes box {bx} of {c}");
            }
        }

        /// The hull of two boxes contains everything either box contains
        /// (the object-level box of a disjunction is built this way).
        #[test]
        fn hull_is_an_upper_bound(seed in 0u64..1_000_000) {
            let a = random_conjunction(seed, 2, 4);
            let b = random_conjunction(seed.wrapping_add(0x9E37), 2, 4);
            let hull = IntervalBox::of_conjunction(&a).hull(&IntervalBox::of_conjunction(&b));
            for c in [&a, &b] {
                if let Some(p) = c.find_point() {
                    prop_assert!(hull.contains(&p), "hull drops a witness of {c}");
                }
            }
        }

        /// Conjunction refines: the box of `a ∧ b` is contained in the
        /// intersection of the operand boxes, so a disjoint intersection
        /// proves the conjunction unsatisfiable (the engine's
        /// query-box ∩ object-box test).
        #[test]
        fn disjoint_boxes_imply_unsat_conjunction(seed in 0u64..1_000_000) {
            let a = random_conjunction(seed, 2, 4);
            let b = random_conjunction(seed.wrapping_add(0x79B9), 2, 4);
            let meet = IntervalBox::of_conjunction(&a).intersect(&IntervalBox::of_conjunction(&b));
            if meet.is_empty() {
                prop_assert!(!a.and(&b).satisfiable());
            }
        }

        /// The box refines monotonically under conjunction: adding atoms
        /// never widens any interval (checked through witness containment
        /// of the stronger conjunction in the weaker one's box).
        #[test]
        fn stronger_conjunctions_stay_inside_weaker_boxes(seed in 0u64..1_000_000) {
            let a = random_conjunction(seed, 3, 3);
            let b = random_conjunction(seed.wrapping_add(1), 3, 3);
            let both = a.and(&b);
            let weak = IntervalBox::of_conjunction(&a);
            if let Some(p) = both.find_point() {
                prop_assert!(weak.contains(&p));
            }
        }
    }
}
