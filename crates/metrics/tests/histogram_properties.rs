//! Property tests for the log-linear histogram and the Prometheus
//! exposition layer.
//!
//! The quantile oracle is a sorted vector: for sampled observation sets
//! and sampled quantiles, the histogram estimate must sit within the
//! bucket-error contract of `lyric_metrics::hist` — never below the true
//! nearest-rank value, and at most `v/16` above it (exact below 16).
//! Merging is checked associative against joint recording, and the
//! Prometheus text format must round-trip (`parse(render(snapshot))`)
//! back to an identical exposition model.

use lyric_metrics::hist::SUB_BUCKETS;
use lyric_metrics::{prometheus, LocalHistogram, Registry};
use proptest::prelude::*;

/// The nearest-rank quantile on a sorted sample — the oracle the
/// histogram estimate is compared against.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Observations spanning the interesting ranges: exact low buckets,
/// octave boundaries, and wide values.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0..64u64,
        3 => 0..100_000u64,
        2 => 0..10_000_000_000u64,
        1 => Just(u64::MAX),
    ]
}

fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(value_strategy(), 1..200)
}

fn record(values: &[u64]) -> LocalHistogram {
    let mut h = LocalHistogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    /// Differential quantiles: for sampled data and sampled q, the
    /// histogram estimate obeys `oracle <= estimate <= oracle + oracle/16`
    /// (and is exact when the oracle value is below [`SUB_BUCKETS`]).
    #[test]
    fn quantile_matches_sorted_oracle(values in values_strategy(), qx in 0..=100u32) {
        let q = qx as f64 / 100.0;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let truth = oracle_quantile(&sorted, q);
        let est = record(&values).snapshot().quantile(q);
        prop_assert!(est >= truth, "estimate {est} below oracle {truth} at q={q}");
        prop_assert!(
            est - truth <= truth / 16,
            "estimate {est} exceeds oracle {truth} by more than 1/16 at q={q}"
        );
        if truth < SUB_BUCKETS as u64 {
            prop_assert_eq!(est, truth, "low values must be exact");
        }
    }

    /// Count, sum, and max are exact regardless of bucketing.
    #[test]
    fn count_sum_max_are_exact(values in values_strategy()) {
        let s = record(&values).snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        let mut sum = 0u64;
        for &v in &values {
            sum = sum.wrapping_add(v);
        }
        prop_assert_eq!(s.sum, sum);
        prop_assert_eq!(s.max, values.iter().copied().max().unwrap_or(0));
    }

    /// Merge is associative and equals joint recording: `(a ∪ b) ∪ c` and
    /// `a ∪ (b ∪ c)` both match one histogram fed all three sets.
    #[test]
    fn merge_is_associative(
        a in values_strategy(),
        b in values_strategy(),
        c in values_strategy(),
    ) {
        let (ha, hb, hc) = (record(&a), record(&b), record(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        let joint: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left.snapshot(), record(&joint).snapshot());
        prop_assert_eq!(right.snapshot(), record(&joint).snapshot());
    }

    /// Prometheus round-trip: rendering a registry snapshot and parsing
    /// the text back yields an identical exposition model, and the
    /// histogram's `_count`/`_sum`/`+Inf` samples match the snapshot
    /// exactly.
    #[test]
    fn prometheus_roundtrip(values in values_strategy(), bump in 0..1000u64) {
        let r = Registry::new();
        r.counter("t_events_total", "sampled events").add(bump);
        r.counter_with("t_labeled_total", "labeled events", &[("kind", "a\"b\\c\nd")])
            .add(bump + 1);
        r.gauge("t_level", "a gauge").set(bump);
        let h = r.histogram("t_latency_us", "sampled latency");
        for &v in &values {
            h.observe(v);
        }

        let snap = r.snapshot();
        let model = prometheus::exposition(&snap);
        let text = prometheus::render(&snap);
        let parsed = prometheus::parse(&text).expect("own rendering parses");
        prop_assert_eq!(&parsed, &model, "round-trip changed the model");

        let count = prometheus::sample_value(&parsed, "t_latency_us_count", &[]);
        prop_assert_eq!(count, Some(values.len() as f64));
        let inf = prometheus::sample_value(&parsed, "t_latency_us_bucket", &[("le", "+Inf")]);
        prop_assert_eq!(inf, Some(values.len() as f64));
        let mut sum = 0u64;
        for &v in &values {
            sum = sum.wrapping_add(v);
        }
        let rendered_sum = prometheus::sample_value(&parsed, "t_latency_us_sum", &[]);
        prop_assert_eq!(rendered_sum, Some(sum as f64));
    }

    /// Rendered cumulative bucket counts are exact: every `le` boundary
    /// emitted by the renderer has the form `2^k − 1`, which aligns with a
    /// bucket edge, so the rendered count equals a direct count of
    /// `values <= le`.
    #[test]
    fn rendered_buckets_count_exactly(values in values_strategy()) {
        let r = Registry::new();
        let h = r.histogram("t_exact_us", "exactness check");
        for &v in &values {
            h.observe(v);
        }
        let parsed = prometheus::parse(&prometheus::render(&r.snapshot()))
            .expect("rendering parses");
        let family = parsed
            .families
            .iter()
            .find(|f| f.name == "t_exact_us")
            .expect("histogram family present");
        for sample in &family.samples {
            if !sample.name.ends_with("_bucket") {
                continue;
            }
            let le = &sample.labels.iter().find(|(k, _)| k == "le").expect("le label").1;
            let expected = if le == "+Inf" {
                values.len() as u64
            } else {
                let bound: u64 = le.parse().expect("finite le bounds are integers");
                values.iter().filter(|&&v| v <= bound).count() as u64
            };
            prop_assert_eq!(
                sample.value, expected as f64,
                "bucket le={} reported {} but {} values are <= it",
                le, sample.value, expected
            );
        }
    }
}
