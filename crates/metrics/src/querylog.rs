//! A structured JSON query log: one line per executed query.
//!
//! # Schema (v2)
//!
//! Every line is a self-contained JSON object:
//!
//! ```json
//! {"v":2,"query_hash":"b51c3e4f9a21d807","git_rev":"13d0522",
//!  "outcome":"ok","rows":12,"duration_us":1834,"threads":4,
//!  "trace_id":117,"slow":false,"stats":{"pivots":96,"lp_runs":24,...}}
//! ```
//!
//! * `v` — schema version, currently [`SCHEMA_VERSION`] (2). v1 lines
//!   (no `v`, no `git_rev`) remain parseable; consumers should treat a
//!   missing `v` as 1.
//! * `query_hash` — FNV-1a 64-bit hash of the query source, hex; stable
//!   across runs so log lines for the same query aggregate.
//! * `git_rev` — the build's short git revision ([`crate::build`]), so
//!   log lines from mixed deployments attribute to the right build.
//!   New in v2.
//! * `outcome` — `"ok"`, `"budget_exceeded"` (plus a `"resource"`
//!   field), or `"error"`.
//! * `trace_id` — the engine context generation, matching the per-query
//!   memo-cache generation; unique per context within a process run.
//! * `stats` — the per-query engine counters, keyed like
//!   `EngineStats::COUNTER_NAMES`.
//! * `slow` — present and `true` when `LYRIC_SLOW_MS` is configured and
//!   the query met the threshold.
//!
//! The full member-by-member schema (both versions) is documented in
//! DESIGN.md §4g.
//!
//! # Sinks and thresholds
//!
//! The log is off until a sink is installed — [`set_sink`]/[`capture`]
//! in code, or the `LYRIC_QUERY_LOG` environment variable (`stderr` or a
//! file path, appended). When `LYRIC_SLOW_MS` (or [`set_slow_ms`]) is
//! set, only queries at or above the threshold are written — a classic
//! slow-query log — and each one also bumps the
//! `lyric_slow_queries_total` counter. Lines are written atomically
//! under one mutex, so concurrent queries never interleave bytes.

use std::io::Write;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};

/// The query-log line schema version written by [`format_record`].
/// Bumped to 2 when `git_rev` (and the `v` member itself) were added;
/// v1 lines carry neither.
pub const SCHEMA_VERSION: u64 = 2;

/// FNV-1a 64-bit hash of a query's source text.
pub fn query_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How one query ended, for the `outcome` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome<'a> {
    /// Evaluation completed.
    Ok,
    /// A resource budget tripped; carries the resource name.
    BudgetExceeded(&'a str),
    /// Any other evaluation error.
    Error,
}

/// One query-log record; [`log`] serializes it as a single JSON line.
pub struct Record<'a> {
    /// The query source text (hashed, never logged verbatim).
    pub query: &'a str,
    /// How the query ended.
    pub outcome: Outcome<'a>,
    /// Result rows (0 on error).
    pub rows: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// The thread budget the query ran with.
    pub threads: usize,
    /// The engine context generation (doubles as a per-process trace id).
    pub trace_id: u64,
    /// Per-query engine counters as `(name, value)` pairs.
    pub stats: &'a [(&'static str, u64)],
    /// Pre-serialized compact explain-analyze summary (the top nodes by
    /// exclusive time), spliced verbatim into the line as the `explain`
    /// member. Populated only when `LYRIC_SLOW_EXPLAIN=1` and the slow
    /// threshold is configured; `None` otherwise.
    pub explain: Option<&'a str>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

type Sink = Box<dyn Write + Send>;

fn sink_slot() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    static ENV: Once = Once::new();
    let slot = SINK.get_or_init(|| Mutex::new(None));
    ENV.call_once(|| {
        if let Ok(target) = std::env::var("LYRIC_QUERY_LOG") {
            let target = target.trim().to_string();
            let sink: Option<Sink> = if target.is_empty() {
                None
            } else if target == "stderr" || target == "-" {
                Some(Box::new(std::io::stderr()))
            } else {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&target)
                    .ok()
                    .map(|f| Box::new(f) as Sink)
            };
            if sink.is_some() {
                *lock(slot) = sink;
            }
        }
    });
    slot
}

/// Install (or, with `None`, remove) the query-log sink. Whole lines are
/// written and flushed under one lock, so writers never interleave.
pub fn set_sink(sink: Option<Box<dyn Write + Send>>) {
    *lock(sink_slot()) = sink;
}

/// True when a sink is installed (callers can skip building records).
pub fn active() -> bool {
    lock(sink_slot()).is_some()
}

struct BufSink(Arc<Mutex<Vec<u8>>>);

impl Write for BufSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        lock(&self.0).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Install an in-memory sink and return the shared buffer — the test and
/// smoke-binary hook for asserting on log output.
pub fn capture() -> Arc<Mutex<Vec<u8>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    set_sink(Some(Box::new(BufSink(Arc::clone(&buf)))));
    buf
}

/// Slow threshold in milliseconds; negative = unset. Initialized from
/// `LYRIC_SLOW_MS` once, overridable via [`set_slow_ms`].
fn slow_cell() -> &'static AtomicI64 {
    static SLOW: OnceLock<AtomicI64> = OnceLock::new();
    SLOW.get_or_init(|| {
        let from_env = std::env::var("LYRIC_SLOW_MS")
            .ok()
            .and_then(|s| s.trim().parse::<i64>().ok())
            .filter(|&v| v >= 0);
        AtomicI64::new(from_env.unwrap_or(-1))
    })
}

/// Override the slow-query threshold (`None` clears it, logging every
/// query again).
pub fn set_slow_ms(ms: Option<u64>) {
    slow_cell().store(ms.map_or(-1, |v| v as i64), Ordering::Relaxed);
}

/// The configured slow-query threshold, if any.
pub fn slow_ms() -> Option<u64> {
    let v = slow_cell().load(Ordering::Relaxed);
    (v >= 0).then_some(v as u64)
}

/// Whether slow-query log lines should carry an explain-analyze summary;
/// 0 = off, 1 = on, unset = read `LYRIC_SLOW_EXPLAIN` once.
fn slow_explain_cell() -> &'static AtomicI64 {
    static SLOW_EXPLAIN: OnceLock<AtomicI64> = OnceLock::new();
    SLOW_EXPLAIN.get_or_init(|| {
        let on = std::env::var("LYRIC_SLOW_EXPLAIN")
            .map(|s| {
                let s = s.trim().to_ascii_lowercase();
                s == "1" || s == "on" || s == "true"
            })
            .unwrap_or(false);
        AtomicI64::new(i64::from(on))
    })
}

/// Override the slow-explain gate (the `LYRIC_SLOW_EXPLAIN` default).
pub fn set_slow_explain(on: bool) {
    slow_explain_cell().store(i64::from(on), Ordering::Relaxed);
}

/// True when slow-query lines should carry an explain-analyze summary:
/// the gate is on **and** a slow threshold is configured (without a
/// threshold every query would pay the explain instrumentation).
pub fn slow_explain() -> bool {
    slow_explain_cell().load(Ordering::Relaxed) != 0 && slow_ms().is_some()
}

fn slow_counter() -> &'static crate::Counter {
    static C: OnceLock<crate::Counter> = OnceLock::new();
    C.get_or_init(|| {
        crate::global().counter(
            "lyric_slow_queries_total",
            "Queries at or above the LYRIC_SLOW_MS threshold.",
        )
    })
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a record as its one-line JSON form (no trailing newline).
pub fn format_record(r: &Record<'_>) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!("{{\"v\":{SCHEMA_VERSION},\"query_hash\":"));
    push_json_str(&mut out, &format!("{:016x}", query_hash(r.query)));
    out.push_str(",\"git_rev\":");
    push_json_str(&mut out, crate::build::git_rev());
    out.push_str(",\"outcome\":");
    match r.outcome {
        Outcome::Ok => out.push_str("\"ok\""),
        Outcome::BudgetExceeded(resource) => {
            out.push_str("\"budget_exceeded\",\"resource\":");
            push_json_str(&mut out, resource);
        }
        Outcome::Error => out.push_str("\"error\""),
    }
    out.push_str(&format!(
        ",\"rows\":{},\"duration_us\":{},\"threads\":{},\"trace_id\":{}",
        r.rows, r.duration_us, r.threads, r.trace_id
    ));
    if let Some(thr) = slow_ms() {
        let slow = r.duration_us >= thr.saturating_mul(1000);
        out.push_str(if slow {
            ",\"slow\":true"
        } else {
            ",\"slow\":false"
        });
    }
    if let Some(explain) = r.explain {
        out.push_str(",\"explain\":");
        out.push_str(explain);
    }
    out.push_str(",\"stats\":{");
    for (i, (name, value)) in r.stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        out.push_str(&format!(":{value}"));
    }
    out.push_str("}}");
    out
}

/// Log one query. A no-op when metrics are disabled or no sink is
/// installed; when a slow threshold is configured, only queries at or
/// above it are written (each also bumping `lyric_slow_queries_total`).
pub fn log(r: &Record<'_>) {
    if !crate::enabled() {
        return;
    }
    let slow = match slow_ms() {
        Some(thr) => {
            let slow = r.duration_us >= thr.saturating_mul(1000);
            if slow {
                slow_counter().inc();
            }
            Some(slow)
        }
        None => None,
    };
    if slow == Some(false) {
        return;
    }
    let mut guard = lock(sink_slot());
    let Some(sink) = guard.as_mut() else {
        return;
    };
    let mut line = format_record(r);
    line.push('\n');
    let _ = sink.write_all(line.as_bytes());
    let _ = sink.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record<'a>(stats: &'a [(&'static str, u64)]) -> Record<'a> {
        Record {
            query: "SELECT X FROM Desk X",
            outcome: Outcome::Ok,
            rows: 3,
            duration_us: 1500,
            threads: 2,
            trace_id: 41,
            stats,
            explain: None,
        }
    }

    #[test]
    fn fnv_hash_is_stable() {
        assert_eq!(query_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(query_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(query_hash("SELECT X"), query_hash("SELECT  X"));
    }

    #[test]
    fn record_formats_as_one_json_line() {
        let stats = [("pivots", 7u64), ("cache_hits", 2u64)];
        let line = format_record(&record(&stats));
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"v\":2,\"query_hash\":\""));
        assert!(line.contains("\"git_rev\":\""));
        assert!(line.contains("\"outcome\":\"ok\""));
        assert!(line.contains("\"rows\":3"));
        assert!(line.contains("\"duration_us\":1500"));
        assert!(line.contains("\"trace_id\":41"));
        assert!(line.contains("\"stats\":{\"pivots\":7,\"cache_hits\":2}"));
    }

    #[test]
    fn v2_members_precede_the_v1_body() {
        // The v2 additions are a prefix extension: everything after
        // `git_rev` is byte-identical to a v1 line, so consumers that
        // scan for `"outcome"`, `"explain"`, or `"stats"` substrings
        // keep working unchanged on both versions.
        let stats = [("pivots", 7u64)];
        let line = format_record(&record(&stats));
        let outcome_at = line.find("\"outcome\"").unwrap();
        assert!(line.find("\"v\":2").unwrap() < outcome_at);
        assert!(line.find("\"git_rev\"").unwrap() < outcome_at);
    }

    #[test]
    fn budget_outcome_carries_the_resource() {
        let stats = [("pivots", 100u64)];
        let mut r = record(&stats);
        r.outcome = Outcome::BudgetExceeded("simplex pivots");
        let line = format_record(&r);
        assert!(line.contains("\"outcome\":\"budget_exceeded\""));
        assert!(line.contains("\"resource\":\"simplex pivots\""));
    }

    #[test]
    fn explain_summary_is_spliced_verbatim() {
        let stats = [("pivots", 7u64)];
        let mut r = record(&stats);
        r.explain = Some("[{\"node\":3,\"op\":\"sat\",\"self_us\":120}]");
        let line = format_record(&r);
        assert!(
            line.contains(",\"explain\":[{\"node\":3,\"op\":\"sat\",\"self_us\":120}],\"stats\":{"),
            "{line}"
        );
    }

    #[test]
    fn slow_explain_gate_requires_a_threshold() {
        set_slow_explain(true);
        set_slow_ms(None);
        assert!(!slow_explain(), "no threshold, nothing to attach to");
        set_slow_ms(Some(5));
        assert!(slow_explain());
        set_slow_explain(false);
        assert!(!slow_explain());
        set_slow_ms(None);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
