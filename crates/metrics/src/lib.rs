//! Process-lifetime metrics for the LyriC engine.
//!
//! Per-query telemetry ([`EngineStats`], traces) dies with its
//! `QueryResult`; a long-lived engine needs the *cumulative* picture —
//! how many pivots since startup, what the p99 query latency is, how
//! often budgets trip. This crate is that layer, and it is deliberately
//! dependency-free (std only) so it can sit below every other crate in
//! the workspace:
//!
//! * a global [`Registry`] of named metrics: monotonic [`Counter`]s
//!   (stripe-sharded atomics, so hot increment sites do not contend),
//!   [`Gauge`]s, and log-linear [`Histogram`]s with mergeable buckets
//!   and p50/p90/p99/max quantile estimation (see [`hist`] for the
//!   documented error bound);
//! * Prometheus text-format 0.0.4 exposition via [`render_prometheus`],
//!   with a validating [`prometheus::parse`] used by the tests and the
//!   `metrics_smoke` CI binary;
//! * a structured JSON query log ([`querylog`]): one line per query with
//!   the query hash, row count, duration, per-query engine counters,
//!   thread count, budget outcome, and trace id, plus a slow-query
//!   threshold configurable through `LYRIC_SLOW_MS`.
//!
//! Metrics are enabled by default; [`set_enabled`] (or the
//! `LYRIC_METRICS=0` environment variable) turns every recording path
//! into an early return so the overhead of the disabled path is one
//! relaxed atomic load (experiment E12 pins the enabled-path overhead).
//!
//! [`EngineStats`]: https://example.org/lyric

#![warn(missing_docs)]

pub mod build;
pub mod hist;
pub mod profile;
pub mod prometheus;
pub mod querylog;
mod registry;

pub use hist::{HistSnapshot, LocalHistogram};
pub use registry::{
    global, render_table, Counter, FamilySnapshot, Gauge, Histogram, MetricKind, MetricValue,
    Registry, SeriesSnapshot, Snapshot,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_ONCE: Once = Once::new();

/// Apply the `LYRIC_METRICS` environment default exactly once, before the
/// first read or explicit override.
fn apply_env_default() {
    ENV_ONCE.call_once(|| {
        if let Ok(v) = std::env::var("LYRIC_METRICS") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
}

/// True when metric recording is enabled (the default). Controlled by
/// [`set_enabled`] and initially by the `LYRIC_METRICS` environment
/// variable (`0`/`off`/`false` disables).
pub fn enabled() -> bool {
    apply_env_default();
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable all metric recording process-wide. Reading
/// ([`Registry::snapshot`], [`render_prometheus`]) always works; only the
/// recording paths are gated.
pub fn set_enabled(on: bool) {
    apply_env_default();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Render the global registry in Prometheus text format 0.0.4. Output is
/// deterministic for a quiescent registry: families sort by name and
/// series by their label sets.
pub fn render_prometheus() -> String {
    prometheus::render(&global().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_toggles() {
        // Registers nothing in the global registry; only flips the flag.
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
