//! Prometheus text-format 0.0.4 exposition and a validating parser.
//!
//! The renderer works off a frozen [`Snapshot`] through an intermediate
//! [`Exposition`] model (families of flat samples); the parser inverts
//! the text back into the same model, so the round-trip property tested
//! by the suite is literally `parse(render(model)) == model`.
//!
//! Histogram `le` boundaries are of the form `2^k − 1`, which align
//! exactly with the log-linear bucket edges (see [`crate::hist`]): every
//! rendered cumulative count is exact, not an approximation. Boundaries
//! are emitted from 1 up to the first one covering the observed maximum,
//! then `+Inf`.

use crate::hist::HistSnapshot;
use crate::registry::{MetricKind, MetricValue, Snapshot};
use std::fmt::Write as _;

/// A parsed (or to-be-rendered) exposition: families in text order.
#[derive(Clone, Debug, PartialEq)]
pub struct Exposition {
    /// Metric families in order of appearance.
    pub families: Vec<ExpositionFamily>,
}

/// One `# TYPE` block: the family metadata plus its flat samples.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpositionFamily {
    /// Family name (histogram samples append `_bucket`/`_sum`/`_count`).
    pub name: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Help text (escaped in transit).
    pub help: String,
    /// Samples in text order.
    pub samples: Vec<Sample>,
}

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full sample name, including any histogram suffix.
    pub name: String,
    /// Label pairs in text order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`f64::INFINITY` only ever appears in `le`
    /// labels, never here).
    pub value: f64,
}

/// Format a value the way the renderer does: integers without a decimal
/// point, everything else via `f64` display.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// The `le` boundaries rendered for `h`: `2^k − 1` for `k = 1..`, up to
/// the first boundary at or above the observed maximum (at least one).
fn le_boundaries(h: &HistSnapshot) -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut k = 1u32;
    loop {
        let bound = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
        bounds.push(bound);
        if bound >= h.max || bound == u64::MAX {
            return bounds;
        }
        k += 1;
    }
}

/// Build the exposition model for a registry snapshot.
pub fn exposition(snap: &Snapshot) -> Exposition {
    let mut families = Vec::new();
    for fam in &snap.families {
        let mut samples = Vec::new();
        for series in &fam.series {
            let labels: Vec<(String, String)> = series.labels.clone();
            match &series.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => samples.push(Sample {
                    name: fam.name.clone(),
                    labels,
                    value: *v as f64,
                }),
                MetricValue::Histogram(h) => {
                    for bound in le_boundaries(h) {
                        let mut l = labels.clone();
                        l.push(("le".to_string(), bound.to_string()));
                        samples.push(Sample {
                            name: format!("{}_bucket", fam.name),
                            labels: l,
                            value: h.cumulative_le(bound) as f64,
                        });
                    }
                    let mut l = labels.clone();
                    l.push(("le".to_string(), "+Inf".to_string()));
                    samples.push(Sample {
                        name: format!("{}_bucket", fam.name),
                        labels: l,
                        value: h.count as f64,
                    });
                    samples.push(Sample {
                        name: format!("{}_sum", fam.name),
                        labels: labels.clone(),
                        value: h.sum as f64,
                    });
                    samples.push(Sample {
                        name: format!("{}_count", fam.name),
                        labels,
                        value: h.count as f64,
                    });
                }
            }
        }
        families.push(ExpositionFamily {
            name: fam.name.clone(),
            kind: fam.kind,
            help: fam.help.clone(),
            samples,
        });
    }
    Exposition { families }
}

/// Write an exposition model as Prometheus text format 0.0.4.
pub fn write_exposition(exp: &Exposition) -> String {
    let mut out = String::new();
    for fam in &exp.families {
        let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for s in &fam.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", format_value(s.value));
        }
    }
    out
}

/// Render a snapshot in Prometheus text format 0.0.4.
pub fn render(snap: &Snapshot) -> String {
    write_exposition(&exposition(snap))
}

// ------------------------------------------------------------- parsing

/// A parse failure: line number (1-based) and message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn unescape(s: &str, line: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => return err(line, format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// Parse `name{labels}` off the front of a sample line, returning the
/// name, labels, and the rest (the value text).
#[allow(clippy::type_complexity)]
fn parse_sample_head(
    text: &str,
    line: usize,
) -> Result<(String, Vec<(String, String)>, String), ParseError> {
    let (head, rest) = match text.find(['{', ' ']) {
        Some(i) if text.as_bytes()[i] == b'{' => {
            let name = &text[..i];
            let body_end = match text[i..].find('}') {
                Some(j) => i + j,
                None => return err(line, "unterminated label set"),
            };
            (
                (name, Some(&text[i + 1..body_end])),
                text[body_end + 1..].trim_start().to_string(),
            )
        }
        Some(i) => ((&text[..i], None), text[i + 1..].trim_start().to_string()),
        None => return err(line, "sample line has no value"),
    };
    let (name, label_body) = head;
    if !valid_name(name) {
        return err(line, format!("invalid metric name `{name}`"));
    }
    let mut labels = Vec::new();
    if let Some(body) = label_body {
        let mut rest = body.trim();
        while !rest.is_empty() {
            let eq = match rest.find('=') {
                Some(e) => e,
                None => return err(line, "label without `=`"),
            };
            let key = rest[..eq].trim();
            if !valid_name(key) {
                return err(line, format!("invalid label name `{key}`"));
            }
            let after = rest[eq + 1..].trim_start();
            if !after.starts_with('"') {
                return err(line, "label value must be quoted");
            }
            // Find the closing quote, honoring backslash escapes.
            let bytes = after.as_bytes();
            let mut i = 1;
            loop {
                match bytes.get(i) {
                    None => return err(line, "unterminated label value"),
                    Some(b'\\') => i += 2,
                    Some(b'"') => break,
                    Some(_) => i += 1,
                }
            }
            let value = unescape(&after[1..i], line)?;
            labels.push((key.to_string(), value));
            rest = after[i + 1..].trim_start();
            if let Some(stripped) = rest.strip_prefix(',') {
                rest = stripped.trim_start();
            } else if !rest.is_empty() {
                return err(line, "expected `,` between labels");
            }
        }
    }
    Ok((name.to_string(), labels, rest))
}

/// Parse Prometheus text format 0.0.4 back into an [`Exposition`],
/// validating structure as it goes: every sample must follow a `# TYPE`
/// line for its family, histogram samples may only use the
/// `_bucket`/`_sum`/`_count` suffixes, label syntax must be well-formed,
/// and values must parse as floats.
pub fn parse(text: &str) -> Result<Exposition, ParseError> {
    let mut families: Vec<ExpositionFamily> = Vec::new();
    let mut pending_help: Option<(String, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = match rest.split_once(' ') {
                Some((n, h)) => (n, h),
                None => (rest, ""),
            };
            if !valid_name(name) {
                return err(lineno, format!("invalid metric name `{name}`"));
            }
            pending_help = Some((name.to_string(), unescape(help, lineno)?));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = match rest.split_once(' ') {
                Some(pair) => pair,
                None => return err(lineno, "TYPE line needs `name kind`"),
            };
            if !valid_name(name) {
                return err(lineno, format!("invalid metric name `{name}`"));
            }
            let kind = match kind {
                "counter" => MetricKind::Counter,
                "gauge" => MetricKind::Gauge,
                "histogram" => MetricKind::Histogram,
                other => return err(lineno, format!("unknown metric kind `{other}`")),
            };
            if families.iter().any(|f| f.name == name) {
                return err(lineno, format!("duplicate TYPE for `{name}`"));
            }
            let help = match pending_help.take() {
                Some((help_name, help)) if help_name == name => help,
                Some((help_name, _)) => {
                    return err(
                        lineno,
                        format!("HELP for `{help_name}` precedes TYPE `{name}`"),
                    )
                }
                None => String::new(),
            };
            families.push(ExpositionFamily {
                name: name.to_string(),
                kind,
                help,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // free comment
        }
        let (name, labels, value_text) = parse_sample_head(line, lineno)?;
        if value_text.is_empty() {
            return err(lineno, "sample line has no value");
        }
        let value: f64 = match value_text.split_whitespace().next().unwrap().parse() {
            Ok(v) => v,
            Err(_) => return err(lineno, format!("bad sample value `{value_text}`")),
        };
        let family = match families.last_mut() {
            Some(f) => f,
            None => return err(lineno, "sample before any # TYPE line"),
        };
        let base_ok = match family.kind {
            MetricKind::Histogram => {
                name == format!("{}_bucket", family.name)
                    || name == format!("{}_sum", family.name)
                    || name == format!("{}_count", family.name)
            }
            _ => name == family.name,
        };
        if !base_ok {
            return err(
                lineno,
                format!(
                    "sample `{name}` does not belong to family `{}`",
                    family.name
                ),
            );
        }
        if family
            .samples
            .iter()
            .any(|s| s.name == name && s.labels == labels)
        {
            return err(lineno, format!("duplicate series `{name}`"));
        }
        family.samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(Exposition { families })
}

/// Convenience for tests and smoke binaries: the value of the sample
/// `name` with `labels` (order-insensitive), if present.
pub fn sample_value(exp: &Exposition, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let mut want: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    want.sort();
    for fam in &exp.families {
        for s in &fam.samples {
            if s.name != name {
                continue;
            }
            let mut have = s.labels.clone();
            have.sort();
            if have == want {
                return Some(s.value);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("demo_queries_total", "Total queries.").add(7);
        r.counter_with(
            "demo_aborts_total",
            "Aborts by resource.",
            &[("resource", "pivots")],
        )
        .add(2);
        r.gauge("demo_threads", "Thread budget.").set(4);
        let h = r.histogram("demo_latency_us", "Latency in \"micros\".");
        for v in [3, 18, 500, 70_000] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn render_parse_round_trips() {
        let snap = sample_registry().snapshot();
        let model = exposition(&snap);
        let text = write_exposition(&model);
        let parsed = parse(&text).expect("rendered text parses");
        assert_eq!(parsed, model);
    }

    #[test]
    fn histogram_bucket_counts_are_exact_cumulatives() {
        let snap = sample_registry().snapshot();
        let text = render(&snap);
        let exp = parse(&text).unwrap();
        assert_eq!(
            sample_value(&exp, "demo_latency_us_bucket", &[("le", "3")]),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&exp, "demo_latency_us_bucket", &[("le", "+Inf")]),
            Some(4.0)
        );
        assert_eq!(sample_value(&exp, "demo_latency_us_count", &[]), Some(4.0));
        assert_eq!(
            sample_value(&exp, "demo_latency_us_sum", &[]),
            Some((3 + 18 + 500 + 70_000) as f64)
        );
        assert_eq!(
            sample_value(&exp, "demo_aborts_total", &[("resource", "pivots")]),
            Some(2.0)
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("demo_total 1").is_err(), "sample before TYPE");
        assert!(parse("# TYPE x banana\n").is_err(), "unknown kind");
        assert!(
            parse("# TYPE x counter\nx{a=unquoted} 1\n").is_err(),
            "unquoted label value"
        );
        assert!(
            parse("# TYPE x counter\nx 1\nx 2\n").is_err(),
            "duplicate series"
        );
        assert!(
            parse("# TYPE x counter\ny 1\n").is_err(),
            "sample outside family"
        );
        assert!(
            parse("# TYPE x counter\nx{a=\"v} 1\n").is_err(),
            "unterminated label value"
        );
        assert!(
            parse("# TYPE x counter\nx notanumber\n").is_err(),
            "bad value"
        );
    }

    #[test]
    fn label_escapes_round_trip() {
        let r = Registry::new();
        r.counter_with("esc_total", "e", &[("q", "say \"hi\"\\n")])
            .inc();
        let model = exposition(&r.snapshot());
        let parsed = parse(&write_exposition(&model)).unwrap();
        assert_eq!(parsed, model);
    }
}
