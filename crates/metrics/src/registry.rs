//! The global metric registry: named counters, gauges, and histograms.
//!
//! Registration is idempotent — asking for an existing name + label set
//! returns a clone of the existing handle, so independent modules (the
//! engine, the query log, the serve binary) can all register the metrics
//! they touch without coordination. Handles are `Arc`s; the hot
//! recording paths never take the registry lock.
//!
//! Counters are striped across cache-line-aligned atomic shards keyed by
//! a per-thread stripe id, so concurrent workers incrementing the same
//! counter do not bounce one cache line; reads sum the stripes.
//!
//! Snapshots (and therefore the Prometheus and table renderings) are
//! deterministic: metrics are kept in a `BTreeMap` ordered by name and
//! then by the sorted label set.

use crate::hist::{AtomicHistogram, HistSnapshot};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Number of counter stripes; power of two so the stripe pick is a mask.
const STRIPES: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

/// This thread's stripe index, assigned round-robin at first use.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
            s.set(i);
        }
        i
    })
}

struct CounterCore {
    stripes: [Stripe; STRIPES],
}

/// A monotonic counter handle. Cloning shares the underlying cells;
/// increments are no-ops while metrics are disabled.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The current total (sum over stripes).
    pub fn value(&self) -> u64 {
        self.0
            .stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A gauge handle: a value that can move both ways (thread counts,
/// configured thresholds). Writes are no-ops while metrics are disabled.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replace the value.
    pub fn set(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle; see [`crate::hist`] for the bucket layout and
/// quantile error contract. Observations are no-ops while metrics are
/// disabled.
#[derive(Clone)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.observe(v);
    }

    /// Fold a worker-local histogram into this one.
    pub fn merge_local(&self, local: &crate::LocalHistogram) {
        if !crate::enabled() {
            return;
        }
        self.0.merge_local(local);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.snapshot()
    }
}

/// The kind of a registered metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Value distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One metric family: kind, help text, and the per-label-set series.
struct Family {
    kind: MetricKind,
    help: String,
    series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// A registry of named metrics. Most code uses the process-wide
/// [`global`] registry; tests may build private ones.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = lock(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .series
            .entry(sorted_labels(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Register (or fetch) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter with labels. Re-registering the same
    /// name and labels returns the existing handle; the same name with a
    /// different kind panics.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter, || {
            Metric::Counter(Counter(Arc::new(CounterCore {
                stripes: Default::default(),
            })))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or fetch) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge with labels. Re-registering the same
    /// name and labels returns the existing handle; the same name with a
    /// different kind panics.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge, || {
            Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or fetch) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, &[], MetricKind::Histogram, || {
            Metric::Histogram(Histogram(Arc::new(AtomicHistogram::new())))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// A deterministic point-in-time copy of every registered metric,
    /// ordered by family name and then label set.
    pub fn snapshot(&self) -> Snapshot {
        let families = lock(&self.families);
        Snapshot {
            families: families
                .iter()
                .map(|(name, fam)| FamilySnapshot {
                    name: name.clone(),
                    kind: fam.kind,
                    help: fam.help.clone(),
                    series: fam
                        .series
                        .iter()
                        .map(|(labels, metric)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match metric {
                                Metric::Counter(c) => MetricValue::Counter(c.value()),
                                Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// The process-wide registry used by the engine instrumentation, the
/// query log, the REPL `:metrics` command, and `lyric-serve`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A frozen copy of a registry; see [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Families ordered by name.
    pub families: Vec<FamilySnapshot>,
}

/// One metric family in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    /// Family name (`lyric_queries_total`, …).
    pub name: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Help text from the first registration.
    pub help: String,
    /// Series ordered by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// One labelled series of a family.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// Sorted `(key, value)` label pairs; empty for unlabelled metrics.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram distribution.
    Histogram(HistSnapshot),
}

fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// Render a snapshot as a human-readable table (the REPL `:metrics`
/// view). Histograms show count, quantile estimates, max, and sum.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        for series in &fam.series {
            let name = format!("{}{}", fam.name, format_labels(&series.labels));
            match &series.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name:<56} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name:<56} count={} p50={} p90={} p99={} max={} sum={}\n",
                        h.count,
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max,
                        h.sum
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("c_total", "a counter");
        let b = r.counter("c_total", "a counter");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3, "both handles hit the same cells");
    }

    #[test]
    fn labelled_series_are_distinct_and_sorted() {
        let r = Registry::new();
        let x = r.counter_with("t_total", "t", &[("b", "2"), ("a", "1")]);
        let y = r.counter_with("t_total", "t", &[("a", "1"), ("b", "2")]);
        let z = r.counter_with("t_total", "t", &[("a", "other")]);
        x.inc();
        y.inc();
        z.add(5);
        assert_eq!(x.value(), 2, "label order does not matter");
        assert_eq!(z.value(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].series.len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("same_name", "x");
        let _ = r.gauge("same_name", "x");
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let r = Registry::new();
        let c = r.counter("striped_total", "x");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn snapshot_is_ordered_by_name() {
        let r = Registry::new();
        let _ = r.gauge("zz_gauge", "z");
        let _ = r.counter("aa_total", "a");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["aa_total", "zz_gauge"]);
    }
}
