//! Build / host identification, exposed as the `lyric_build_info` metric
//! and stamped into query-log lines and flight-recorder dumps.
//!
//! Production triage starts with "what exactly is running?": a scrape or
//! a black-box dump is only actionable if it names the revision that
//! produced it. `BENCH_report.json` has carried the git revision since
//! E12; this module makes the same identity available at runtime to
//! every surface — the Prometheus exposition (a gauge-style `…_info`
//! metric with the values as labels and a constant sample of 1, the
//! Prometheus idiom for build metadata), the structured query log
//! (`git_rev` on every line), and `lyric-flight` anomaly dumps.
//!
//! The revision is resolved once per process: the `LYRIC_GIT_REV`
//! environment variable wins (containers without a `.git` checkout set
//! it at deploy time), then `git rev-parse --short HEAD` (matching the
//! bench `report` binary), then the literal `"unknown"`.

use std::sync::OnceLock;

/// The short git revision of the running build, or `"unknown"`.
pub fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        if let Ok(rev) = std::env::var("LYRIC_GIT_REV") {
            let rev = rev.trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// The workspace crate version (`CARGO_PKG_VERSION` of this build).
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The host's available parallelism (1 when unknown), as a decimal
/// string for use as a label value.
pub fn host_parallelism() -> &'static str {
    static HP: OnceLock<String> = OnceLock::new();
    HP.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .to_string()
    })
}

/// Register the `lyric_build_info` gauge in the global registry (idempotent)
/// and set its constant sample of 1. Called by every long-lived surface at
/// startup — the engine's metric bootstrap, `lyric-serve`, the REPL, the
/// bench `report` binary — so a `/metrics` scrape always identifies the
/// build even before the first query.
pub fn register_build_info() {
    crate::global()
        .gauge_with(
            "lyric_build_info",
            "Build identification; value is constant 1, the identity is in the labels.",
            &[
                ("git_rev", git_rev()),
                ("version", version()),
                ("host_parallelism", host_parallelism()),
            ],
        )
        .set(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_stable_and_nonempty() {
        assert!(!git_rev().is_empty());
        assert_eq!(git_rev(), git_rev());
        assert_eq!(version(), env!("CARGO_PKG_VERSION"));
        assert!(host_parallelism().parse::<u64>().unwrap() >= 1);
    }

    #[test]
    fn build_info_gauge_registers_idempotently() {
        register_build_info();
        register_build_info();
        let snap = crate::global().snapshot();
        let fam = snap
            .families
            .iter()
            .find(|f| f.name == "lyric_build_info")
            .expect("registered");
        assert_eq!(
            fam.series.len(),
            1,
            "one series regardless of re-registration"
        );
        let series = &fam.series[0];
        assert!(series
            .labels
            .iter()
            .any(|(k, v)| k == "git_rev" && v == git_rev()));
        assert_eq!(series.value, crate::MetricValue::Gauge(1));
    }
}
