//! Log-linear (HDR-style) histograms over `u64` values.
//!
//! # Bucket layout
//!
//! Values below [`SUB_BUCKETS`] (16) get one exact bucket each. Above
//! that, each power-of-two octave `[2^k, 2^(k+1))` is subdivided into 16
//! linear sub-buckets of width `2^(k-4)`, so a bucket's width is at most
//! 1/16 of its lower bound. Quantile estimation returns the inclusive
//! upper bound of the selected bucket, which yields the documented error
//! contract: the estimate `e` for a true quantile value `v` satisfies
//! `v <= e <= v + v/16` — an over-estimate by at most **6.25%**, and
//! exact for values below 16. The histogram-oracle differential tests
//! pin exactly this bound.
//!
//! # Merging
//!
//! Buckets are plain per-index counts, so merging is element-wise
//! addition (plus `count`/`sum` addition and a `max` of maxima) —
//! associative and commutative by construction. Parallel workers record
//! into a private [`LocalHistogram`] and the parent merges them in
//! worker-id order on join, mirroring how `EngineStats` merge.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave; also the bound below
/// which every value has an exact bucket.
pub const SUB_BUCKETS: usize = 16;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;

/// Total bucket count: 16 exact low buckets plus 16 sub-buckets for each
/// of the 60 octaves `k = 4..=63`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// The bucket index recording value `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let k = 63 - v.leading_zeros(); // 2^k <= v < 2^(k+1), k >= 4
    let sub = (v >> (k - SUB_BITS)) as usize - SUB_BUCKETS;
    SUB_BUCKETS * (k as usize - 3) + sub
}

/// The value range `[lo, hi)` covered by bucket `index`; `hi` saturates
/// at `u64::MAX` for the topmost bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        return (index as u64, index as u64 + 1);
    }
    let k = (index / SUB_BUCKETS + 3) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    let lo = (SUB_BUCKETS as u64 + sub) << (k - SUB_BITS);
    let hi = (SUB_BUCKETS as u128 + sub as u128 + 1) << (k - SUB_BITS);
    (lo, u64::try_from(hi).unwrap_or(u64::MAX))
}

/// A thread-safe histogram: atomic bucket counts plus `count`, `sum`,
/// and an exact `max`. Created through
/// [`Registry::histogram`](crate::Registry::histogram); shared handles
/// are cheap clones.
pub struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl AtomicHistogram {
    pub(crate) fn new() -> Self {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a worker-local histogram into this one.
    pub fn merge_local(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
        for (i, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy of the distribution. Individual fields are
    /// read with relaxed ordering, so a snapshot taken while writers are
    /// active may be mid-observation inconsistent; quiescent snapshots
    /// are exact.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A single-threaded histogram with the same bucket layout as
/// [`AtomicHistogram`], used by parallel workers so the hot record path
/// is a plain add; merged into the shared histogram on join.
#[derive(Clone, Debug, Default)]
pub struct LocalHistogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl LocalHistogram {
    /// An empty local histogram.
    pub fn new() -> Self {
        LocalHistogram::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another local histogram into this one (element-wise bucket
    /// addition — associative and commutative).
    pub fn merge(&mut self, other: &LocalHistogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
    }

    /// A frozen copy of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: if self.buckets.is_empty() {
                vec![0; NUM_BUCKETS]
            } else {
                self.buckets.clone()
            },
        }
    }
}

/// A frozen histogram: bucket counts plus `count`/`sum`/`max`, with
/// quantile estimation under the module-level error contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) under the nearest-rank
    /// definition: the estimate covers the `max(1, ceil(q·count))`-th
    /// smallest observation. Returns the inclusive upper bound of that
    /// observation's bucket — never below the true value and at most
    /// 6.25% above it (exact below 16). Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The inclusive upper bound: `hi` is exclusive, except for
                // the topmost bucket where it saturates (true bound 2^64),
                // making `u64::MAX` itself the inclusive bound.
                let (_, hi) = bucket_bounds(i);
                return if i == NUM_BUCKETS - 1 { hi } else { hi - 1 };
            }
        }
        self.max
    }

    /// The median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Observations less than or equal to `bound` — exact whenever
    /// `bound + 1` is a bucket boundary (the Prometheus renderer only
    /// emits such bounds, of the form `2^k − 1`).
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(i);
            if hi - 1 <= bound {
                total += n;
            } else if lo > bound {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev_hi = 0;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_hi, "gap before bucket {i}");
            assert!(hi > lo);
            prev_hi = hi;
            // The bounds invert the index on both edges.
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi - 1), i);
        }
        assert_eq!(prev_hi, u64::MAX, "layout covers the full u64 range");
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn width_is_at_most_a_sixteenth_of_the_lower_bound() {
        for i in SUB_BUCKETS..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!((hi - lo) * 16 <= lo, "bucket {i}: [{lo}, {hi})");
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let mut h = LocalHistogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        let p50 = s.p50();
        assert!((50..=54).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((99..=105).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(0.0), 1, "rank clamps to the minimum");
    }

    #[test]
    fn merge_matches_joint_recording() {
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        let mut joint = LocalHistogram::new();
        for v in [0, 3, 17, 900, 70_000, u64::MAX] {
            a.observe(v);
            joint.observe(v);
        }
        for v in [1, 15, 16, 1_000_000] {
            b.observe(v);
            joint.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.snapshot(), joint.snapshot());
    }

    #[test]
    fn atomic_and_local_agree() {
        let atomic = AtomicHistogram::new();
        let mut local = LocalHistogram::new();
        for v in [5, 42, 1_000, 123_456_789] {
            atomic.observe(v);
            local.observe(v);
        }
        assert_eq!(atomic.snapshot(), local.snapshot());
        // merge_local doubles every bucket.
        atomic.merge_local(&local);
        let s = atomic.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 2 * (5 + 42 + 1_000 + 123_456_789));
    }

    #[test]
    fn cumulative_le_on_power_boundaries() {
        let mut h = LocalHistogram::new();
        for v in [0, 1, 7, 8, 15, 16, 31, 32, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.cumulative_le(0), 1);
        assert_eq!(s.cumulative_le(7), 3);
        assert_eq!(s.cumulative_le(15), 5);
        assert_eq!(s.cumulative_le(31), 7);
        assert_eq!(s.cumulative_le(u64::MAX), 9);
    }
}
