//! The cost-profile store: exponentially-decayed per-plan-node
//! observations, keyed by `(query-shape hash, node id)`, accumulated for
//! the process lifetime.
//!
//! Every `execute_explained` run feeds one [`Obs`] per plan node here;
//! the store keeps an exponentially-weighted moving average of each
//! feature with **α = 1/8**: after observation `x`, each average moves
//! `x̄ ← x̄ + α·(x − x̄)` (the first observation seeds `x̄ = x` directly).
//! A site's weight on the value observed `k` runs ago is `α·(1−α)^(k−1)`,
//! so roughly the last `1/α = 8` observations dominate — recent plan
//! behaviour wins, but one outlier query cannot erase the history. This
//! is the live feed the future cost-based planner (ROADMAP item 5)
//! consumes: per-site cardinalities, exclusive time, and the
//! constraint-complexity counters (sat/entail checks, LP runs/pivots,
//! box prunes, cache traffic).
//!
//! The store is bounded at [`MAX_SITES`] sites; observations for new
//! sites past the cap are counted (`lyric_profile_dropped_total`) but not
//! stored. `lyric-serve` exposes [`snapshot_json`] at `GET /profiles`,
//! and the summary counters/gauges ride the normal Prometheus
//! exposition.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Decay factor: the weight of the newest observation.
pub const ALPHA: f64 = 0.125;

/// Cap on distinct `(shape, node)` sites retained.
pub const MAX_SITES: usize = 4096;

/// One runtime observation of one plan node, as fed by
/// `execute_explained`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Obs<'a> {
    /// Exclusive wall-clock microseconds attributed to the node.
    pub self_us: f64,
    /// Input cardinality (bindings/rows entering the operator).
    pub rows_in: u64,
    /// Output cardinality.
    pub rows_out: u64,
    /// The node's nonzero exclusive engine counters, `(name, value)`.
    pub counters: &'a [(&'static str, u64)],
}

/// The decayed averages retained for one `(shape, node)` site.
#[derive(Debug, Clone, Default)]
struct Site {
    op: String,
    count: u64,
    self_us: f64,
    rows_in: f64,
    rows_out: f64,
    counters: BTreeMap<&'static str, f64>,
}

struct Store {
    sites: BTreeMap<(u64, u32), Site>,
    dropped: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(Store {
            sites: BTreeMap::new(),
            dropped: 0,
        })
    })
}

fn observations_counter() -> &'static crate::Counter {
    static C: OnceLock<crate::Counter> = OnceLock::new();
    C.get_or_init(|| {
        crate::global().counter(
            "lyric_profile_observations_total",
            "Per-node explain observations fed to the cost-profile store.",
        )
    })
}

fn dropped_counter() -> &'static crate::Counter {
    static C: OnceLock<crate::Counter> = OnceLock::new();
    C.get_or_init(|| {
        crate::global().counter(
            "lyric_profile_dropped_total",
            "Observations for new sites rejected by the profile-store site cap.",
        )
    })
}

fn sites_gauge() -> &'static crate::Gauge {
    static G: OnceLock<crate::Gauge> = OnceLock::new();
    G.get_or_init(|| {
        crate::global().gauge(
            "lyric_profile_sites",
            "Distinct (query shape, plan node) sites in the cost-profile store.",
        )
    })
}

fn ewma(avg: &mut f64, x: f64, first: bool) {
    if first {
        *avg = x;
    } else {
        *avg += ALPHA * (x - *avg);
    }
}

/// Feed one observation for `(shape_hash, node_id)`. `op` is the node's
/// stable operator name (re-stamped on every observation, so a shape-hash
/// collision at least reports the newest operator). A no-op when metrics
/// are disabled.
pub fn record(shape_hash: u64, node_id: u32, op: &str, obs: &Obs<'_>) {
    if !crate::enabled() {
        return;
    }
    let mut guard = lock(store());
    let Store { sites, dropped } = &mut *guard;
    let site = match sites.get_mut(&(shape_hash, node_id)) {
        Some(site) => site,
        None => {
            if sites.len() >= MAX_SITES {
                *dropped += 1;
                dropped_counter().inc();
                return;
            }
            sites.entry((shape_hash, node_id)).or_default()
        }
    };
    let first = site.count == 0;
    site.count += 1;
    if site.op != op {
        site.op = op.to_string();
    }
    ewma(&mut site.self_us, obs.self_us, first);
    ewma(&mut site.rows_in, obs.rows_in as f64, first);
    ewma(&mut site.rows_out, obs.rows_out as f64, first);
    // Counters absent from this observation decay toward zero; observed
    // counters update in place. Union over both key sets.
    let mut updated: BTreeMap<&'static str, f64> = std::mem::take(&mut site.counters);
    for (name, avg) in updated.iter_mut() {
        let x = obs
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v as f64);
        ewma(avg, x, false);
    }
    for (name, v) in obs.counters {
        updated.entry(name).or_insert(*v as f64);
    }
    site.counters = updated;
    let site_count = sites.len() as u64;
    drop(guard);
    observations_counter().inc();
    sites_gauge().set(site_count);
}

fn push_f64(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v:.3}"));
    }
}

/// Serialize the whole store as one JSON document (the `GET /profiles`
/// body): configuration (`alpha`, `max_sites`), totals, and one profile
/// object per site in deterministic `(shape, node)` order.
pub fn snapshot_json() -> String {
    let guard = lock(store());
    let mut out = String::with_capacity(256 + guard.sites.len() * 160);
    out.push_str(&format!(
        "{{\"alpha\":{ALPHA},\"max_sites\":{MAX_SITES},\"sites\":{},\"dropped\":{},\"profiles\":[",
        guard.sites.len(),
        guard.dropped
    ));
    for (i, ((shape, node), site)) in guard.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"shape\":");
        crate::querylog::push_json_str(&mut out, &format!("{shape:016x}"));
        out.push_str(&format!(",\"node\":{node},\"op\":"));
        crate::querylog::push_json_str(&mut out, &site.op);
        out.push_str(&format!(",\"count\":{},\"self_us\":", site.count));
        push_f64(&mut out, site.self_us);
        out.push_str(",\"rows_in\":");
        push_f64(&mut out, site.rows_in);
        out.push_str(",\"rows_out\":");
        push_f64(&mut out, site.rows_out);
        out.push_str(",\"counters\":{");
        for (j, (name, avg)) in site.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            crate::querylog::push_json_str(&mut out, name);
            out.push(':');
            push_f64(&mut out, *avg);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Number of sites currently retained.
pub fn site_count() -> usize {
    lock(store()).sites.len()
}

/// Drop every site and reset the drop tally — the test hook.
pub fn clear() {
    let mut guard = lock(store());
    guard.sites.clear();
    guard.dropped = 0;
    drop(guard);
    sites_gauge().set(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The store is process-global; tests share it, so each uses a unique
    // shape hash and asserts only on its own sites.

    #[test]
    fn ewma_seeds_then_decays() {
        let shape = 0x1111_0000_0000_0001;
        let counters = [("pivots", 8u64)];
        record(
            shape,
            0,
            "select",
            &Obs {
                self_us: 100.0,
                rows_in: 10,
                rows_out: 4,
                counters: &counters,
            },
        );
        record(
            shape,
            0,
            "select",
            &Obs {
                self_us: 200.0,
                rows_in: 10,
                rows_out: 4,
                counters: &[],
            },
        );
        let snap = snapshot_json();
        // After seed 100 then 200: 100 + (200-100)/8 = 112.5.
        let me = snap
            .split("{\"shape\":\"1111000000000001\"")
            .nth(1)
            .expect("site serialized");
        assert!(me.contains("\"count\":2"), "{me}");
        assert!(me.contains("\"self_us\":112.5"), "{me}");
        // pivots seeded at 8, then decayed toward 0: 8 - 8/8 = 7.
        assert!(me.contains("\"pivots\":7"), "{me}");
    }

    #[test]
    fn snapshot_is_valid_json_and_ordered() {
        let shape = 0x2222_0000_0000_0002;
        for node in [2u32, 0, 1] {
            record(shape, node, "op", &Obs::default());
        }
        let snap = snapshot_json();
        assert!(snap.starts_with("{\"alpha\":0.125,\"max_sites\":4096,"));
        let a = snap
            .find("\"shape\":\"2222000000000002\",\"node\":0")
            .unwrap();
        let b = snap
            .find("\"shape\":\"2222000000000002\",\"node\":1")
            .unwrap();
        let c = snap
            .find("\"shape\":\"2222000000000002\",\"node\":2")
            .unwrap();
        assert!(a < b && b < c, "sites are in (shape, node) order");
    }
}
