//! Exact rational numbers with a two-tier representation.
//!
//! A [`Rational`] is either *small* — an inline `i64` numerator/denominator
//! pair, the representation that covers essentially all coefficients real
//! constraint workloads produce — or *big*, a boxed [`BigInt`] pair.
//! Arithmetic on two small values runs in `i128` intermediates (which
//! provably cannot overflow for canonical `i64/i64` operands, see the
//! bound notes on [`from_i128_reduced`]) and only *promotes* to the big
//! representation when the **reduced** result no longer fits in `i64`.
//! Both variants maintain the same invariants — denominator strictly
//! positive, `gcd(|num|, den) == 1`, zero stored as `0/1` — so equality,
//! ordering, and hashing are representation-independent: a value that
//! fits in the small form hashes and compares identically whether it is
//! stored small or big.
//!
//! The fast path can be disabled per thread (see [`crate::fastpath`]),
//! in which case every constructor and operation uses the `BigInt` path —
//! this is the measurement baseline and the oracle for the arithmetic
//! differential tests.

use crate::fastpath;
use crate::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// The arbitrary-precision representation, boxed so `Rational` stays a
/// small (24-byte) value regardless of magnitude.
#[derive(Debug, Clone)]
struct BigPair {
    num: BigInt,
    den: BigInt,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Canonical `num/den` with `den > 0`, `gcd(|num|, den) == 1`.
    Small(i64, i64),
    /// Same invariants over `BigInt`. May hold small-magnitude values
    /// when the fast path is off; never when it is on (constructors and
    /// operations demote eagerly).
    Big(Box<BigPair>),
}

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive, and
/// `gcd(|num|, den) == 1` (zero is represented as `0/1`). Every constructor
/// and operation re-establishes these, so two `Rational`s are equal iff
/// their canonical fractions are equal — which lets the constraint engine
/// use `Rational` directly as a map key and in canonical forms. Equality
/// and hashing are value-based and independent of whether the value is
/// currently stored inline or as a `BigInt` pair.
#[derive(Debug, Clone)]
pub struct Rational {
    repr: Repr,
}

/// `gcd` of two `u64`s by the Euclidean algorithm; `gcd(0, x) == x`.
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Canonicalize `n / d` with `i128` intermediates and store it small if
/// the reduced fraction fits in `i64`, promoting to `BigInt` otherwise.
///
/// Callers must guarantee `d != 0` and that neither operand is
/// `i128::MIN` (so negation cannot overflow). Every small-path operation
/// satisfies this by construction: with canonical `i64/i64` operands,
/// each cross product is bounded by `2^63 * (2^63 - 1) < 2^126`, so sums
/// of two products stay below `2^127 - 2^64 < i128::MAX`.
fn from_i128_reduced(n: i128, d: i128) -> Rational {
    debug_assert!(d != 0, "Rational with zero denominator");
    debug_assert!(n != i128::MIN && d != i128::MIN);
    let (n, d) = if d < 0 { (-n, -d) } else { (n, d) };
    if n == 0 {
        return Rational {
            repr: Repr::Small(0, 1),
        };
    }
    let g = gcd_u128(n.unsigned_abs(), d as u128) as i128;
    let (n, d) = (n / g, d / g);
    match (i64::try_from(n), i64::try_from(d)) {
        (Ok(sn), Ok(sd)) => Rational {
            repr: Repr::Small(sn, sd),
        },
        _ => {
            fastpath::count_promotion();
            Rational {
                repr: Repr::Big(Box::new(BigPair {
                    num: BigInt::from(n),
                    den: BigInt::from(d),
                })),
            }
        }
    }
}

/// Canonicalize a `BigInt` pair. With the fast path on, the result is
/// demoted to the inline form when it fits.
fn big_normalized(mut num: BigInt, mut den: BigInt) -> Rational {
    debug_assert!(!den.is_zero(), "Rational with zero denominator");
    if den.is_negative() {
        num = -num;
        den = -den;
    }
    if num.is_zero() {
        den = BigInt::one();
    } else {
        let g = num.gcd(&den);
        if g != BigInt::one() {
            num = num.div_exact(&g);
            den = den.div_exact(&g);
        }
    }
    finish_big(num, den)
}

/// Wrap an already-canonical `BigInt` pair, demoting to the inline form
/// when the fast path is on and the value fits.
fn finish_big(num: BigInt, den: BigInt) -> Rational {
    if fastpath::fast_path_enabled() {
        if let (Some(n), Some(d)) = (num.to_i64(), den.to_i64()) {
            return Rational {
                repr: Repr::Small(n, d),
            };
        }
    }
    Rational {
        repr: Repr::Big(Box::new(BigPair { num, den })),
    }
}

/// Borrow `r`'s components as `BigInt`s, materializing inline values into
/// `buf`. Lets the big-path binops work by reference without cloning the
/// `BigInt` pair of an already-big operand.
fn big_parts<'a>(
    r: &'a Rational,
    buf: &'a mut Option<(BigInt, BigInt)>,
) -> (&'a BigInt, &'a BigInt) {
    match &r.repr {
        Repr::Big(b) => (&b.num, &b.den),
        Repr::Small(n, d) => {
            let (bn, bd) = buf.insert((BigInt::from(*n), BigInt::from(*d)));
            (&*bn, &*bd)
        }
    }
}

impl Rational {
    /// 0.
    pub fn zero() -> Self {
        Rational::from_int(0)
    }

    /// 1.
    pub fn one() -> Self {
        Rational::from_int(1)
    }

    /// Construct `num / den`, normalizing. Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        big_normalized(num, den)
    }

    /// Construct from an integer pair, e.g. `Rational::from_pair(1, 2)`.
    ///
    /// Panics if `den == 0`. Sign normalization is exact for the whole
    /// `i64` range — `from_pair(i64::MIN, -1)` and friends negate in
    /// `i128` and promote if the result exceeds `i64`.
    pub fn from_pair(num: i64, den: i64) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        if fastpath::fast_path_enabled() {
            from_i128_reduced(num as i128, den as i128)
        } else {
            big_normalized(BigInt::from(num), BigInt::from(den))
        }
    }

    /// Construct from an integer pair wider than `i64`. Panics if
    /// `den == 0`. Reduces in `u128` and stores inline when the reduced
    /// fraction fits.
    pub fn from_i128_pair(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        if fastpath::fast_path_enabled() && num != i128::MIN && den != i128::MIN {
            from_i128_reduced(num, den)
        } else {
            big_normalized(BigInt::from(num), BigInt::from(den))
        }
    }

    /// Construct from an integer.
    pub fn from_int(v: i64) -> Self {
        if fastpath::fast_path_enabled() {
            Rational {
                repr: Repr::Small(v, 1),
            }
        } else {
            Rational {
                repr: Repr::Big(Box::new(BigPair {
                    num: BigInt::from(v),
                    den: BigInt::one(),
                })),
            }
        }
    }

    /// The inline `(numerator, denominator)` pair, or `None` when the
    /// value is held in the `BigInt` representation.
    pub fn small_parts(&self) -> Option<(i64, i64)> {
        match self.repr {
            Repr::Small(n, d) => Some((n, d)),
            Repr::Big(_) => None,
        }
    }

    /// True when the value is stored in the inline representation.
    pub fn is_small(&self) -> bool {
        matches!(self.repr, Repr::Small(..))
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> BigInt {
        match &self.repr {
            Repr::Small(n, _) => BigInt::from(*n),
            Repr::Big(b) => b.num.clone(),
        }
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> BigInt {
        match &self.repr {
            Repr::Small(_, d) => BigInt::from(*d),
            Repr::Big(b) => b.den.clone(),
        }
    }

    /// Is the value exactly zero?
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n == 0,
            Repr::Big(b) => b.num.is_zero(),
        }
    }

    /// Is the value strictly positive?
    pub fn is_positive(&self) -> bool {
        self.signum() > 0
    }

    /// Is the value strictly negative?
    pub fn is_negative(&self) -> bool {
        self.signum() < 0
    }

    /// True iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Small(_, d) => *d == 1,
            Repr::Big(b) => b.den == BigInt::one(),
        }
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        match &self.repr {
            Repr::Small(n, _) => n.signum() as i32,
            Repr::Big(b) => b.num.signum(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        if self.is_negative() {
            -self
        } else {
            self.clone()
        }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        match &self.repr {
            Repr::Small(n, d) if fastpath::fast_path_enabled() => {
                fastpath::count_small();
                // Already reduced; only the sign moves to the numerator.
                from_i128_reduced(*d as i128, *n as i128)
            }
            _ => {
                fastpath::count_big();
                let mut buf = None;
                let (n, d) = big_parts(self, &mut buf);
                big_normalized(d.clone(), n.clone())
            }
        }
    }

    /// Lossy conversion for reporting.
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(n, d) => *n as f64 / *d as f64,
            Repr::Big(b) => b.num.to_f64() / b.den.to_f64(),
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        match &self.repr {
            // div_euclid floors for the (always positive) denominator.
            Repr::Small(n, d) => BigInt::from((*n as i128).div_euclid(*d as i128)),
            Repr::Big(b) => {
                let (q, r) = b.num.div_rem(&b.den);
                if r.is_negative() {
                    &q - &BigInt::one()
                } else {
                    q
                }
            }
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        match &self.repr {
            Repr::Small(n, d) => BigInt::from(-(-(*n as i128)).div_euclid(*d as i128)),
            Repr::Big(b) => {
                let (q, r) = b.num.div_rem(&b.den);
                if r.is_positive() {
                    &q + &BigInt::one()
                } else {
                    q
                }
            }
        }
    }

    /// Minimum of two rationals by value.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals by value.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        finish_big(v, BigInt::one())
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        // Both representations are canonical, so equality is
        // componentwise even across the small/big divide.
        match (&self.repr, &other.repr) {
            (Repr::Small(an, ad), Repr::Small(bn, bd)) => an == bn && ad == bd,
            (Repr::Big(a), Repr::Big(b)) => a.num == b.num && a.den == b.den,
            (Repr::Small(n, d), Repr::Big(b)) | (Repr::Big(b), Repr::Small(n, d)) => {
                b.num.to_i64() == Some(*n) && b.den.to_i64() == Some(*d)
            }
        }
    }
}

impl Eq for Rational {}

/// Hash one canonical component so that the inline form produces exactly
/// the bytes `BigInt::hash` would: the sign as `i32`, then the magnitude
/// as a little-endian `u64` slice with no trailing zeros (empty for 0).
fn hash_component<H: Hasher>(v: i64, state: &mut H) {
    (v.signum() as i32).hash(state);
    if v == 0 {
        (&[] as &[u64]).hash(state);
    } else {
        [v.unsigned_abs()].as_slice().hash(state);
    }
}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match &self.repr {
            Repr::Small(n, d) => {
                hash_component(*n, state);
                hash_component(*d, state);
            }
            Repr::Big(b) => {
                b.num.hash(state);
                b.den.hash(state);
            }
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &other.repr) {
            if fastpath::fast_path_enabled() {
                fastpath::count_small();
                return from_i128_reduced(
                    *an as i128 * *bd as i128 + *bn as i128 * *ad as i128,
                    *ad as i128 * *bd as i128,
                );
            }
        }
        fastpath::count_big();
        let (mut sb, mut ob) = (None, None);
        let (an, ad) = big_parts(self, &mut sb);
        let (bn, bd) = big_parts(other, &mut ob);
        big_normalized(an * bd + bn * ad, ad * bd)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &other.repr) {
            if fastpath::fast_path_enabled() {
                fastpath::count_small();
                return from_i128_reduced(
                    *an as i128 * *bd as i128 - *bn as i128 * *ad as i128,
                    *ad as i128 * *bd as i128,
                );
            }
        }
        fastpath::count_big();
        let (mut sb, mut ob) = (None, None);
        let (an, ad) = big_parts(self, &mut sb);
        let (bn, bd) = big_parts(other, &mut ob);
        big_normalized(an * bd - bn * ad, ad * bd)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &other.repr) {
            if fastpath::fast_path_enabled() {
                fastpath::count_small();
                return from_i128_reduced(*an as i128 * *bn as i128, *ad as i128 * *bd as i128);
            }
        }
        fastpath::count_big();
        let (mut sb, mut ob) = (None, None);
        let (an, ad) = big_parts(self, &mut sb);
        let (bn, bd) = big_parts(other, &mut ob);
        big_normalized(an * bn, ad * bd)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "Rational division by zero");
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &other.repr) {
            if fastpath::fast_path_enabled() {
                fastpath::count_small();
                return from_i128_reduced(*an as i128 * *bd as i128, *ad as i128 * *bn as i128);
            }
        }
        fastpath::count_big();
        let (mut sb, mut ob) = (None, None);
        let (an, ad) = big_parts(self, &mut sb);
        let (bn, bd) = big_parts(other, &mut ob);
        big_normalized(an * bd, ad * bn)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, other: &Rational) -> Rational {
                (&self).$method(other)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        match &self.repr {
            // -i64::MIN overflows; that numerator promotes on negation.
            Repr::Small(n, d) => {
                if let Some(nn) = n.checked_neg() {
                    Rational {
                        repr: Repr::Small(nn, *d),
                    }
                } else {
                    fastpath::count_promotion();
                    Rational {
                        repr: Repr::Big(Box::new(BigPair {
                            num: BigInt::from(-(*n as i128)),
                            den: BigInt::from(*d),
                        })),
                    }
                }
            }
            Repr::Big(b) => finish_big(-&b.num, b.den.clone()),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -&self
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &other.repr) {
            if fastpath::fast_path_enabled() {
                fastpath::count_small();
                // Denominators are positive, so cross-multiplication
                // preserves order; products fit in i128.
                return (*an as i128 * *bd as i128).cmp(&(*bn as i128 * *ad as i128));
            }
        }
        fastpath::count_big();
        let (mut sb, mut ob) = (None, None);
        let (an, ad) = big_parts(self, &mut sb);
        let (bn, bd) = big_parts(other, &mut ob);
        (an * bd).cmp(&(bn * ad))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(n, 1) => write!(f, "{n}"),
            Repr::Small(n, d) => write!(f, "{n}/{d}"),
            Repr::Big(b) => {
                if b.den == BigInt::one() {
                    write!(f, "{}", b.num)
                } else {
                    write!(f, "{}/{}", b.num, b.den)
                }
            }
        }
    }
}

/// Error when parsing a [`Rational`] literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal")
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Accepts integers (`-3`), fractions (`1/2`), and decimals (`2.75`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse().map_err(|_| ParseRationalError)?;
            let den: BigInt = d.trim().parse().map_err(|_| ParseRationalError)?;
            if den.is_zero() {
                return Err(ParseRationalError);
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let (neg, int_digits) = match int_part.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, int_part.strip_prefix('+').unwrap_or(int_part)),
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRationalError);
            }
            let int_val: BigInt = if int_digits.is_empty() {
                BigInt::zero()
            } else {
                int_digits.parse().map_err(|_| ParseRationalError)?
            };
            let frac_val: BigInt = frac_part.parse().map_err(|_| ParseRationalError)?;
            let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
            let num = &int_val * &scale + frac_val;
            let r = Rational::new(num, scale);
            return Ok(if neg { -r } else { r });
        }
        let num: BigInt = s.parse().map_err(|_| ParseRationalError)?;
        Ok(Rational::from(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_pair(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert!(r(0, -5).denom() == BigInt::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    #[should_panic(expected = "Rational with zero denominator")]
    fn zero_denominator_panic_message_is_pinned() {
        // The message is load-bearing: callers' `should_panic(expected)`
        // filters and user-facing REPL errors quote it.
        let _ = r(7, 0);
    }

    #[test]
    fn i64_min_sign_normalization_is_exact() {
        // Negating i64::MIN overflows i64; from_pair must route the sign
        // flip through i128 and promote. The resulting value is exact:
        // MIN/-1 = 2^63 (> i64::MAX) and MIN/MIN = 1.
        let v = Rational::from_pair(i64::MIN, -1);
        assert_eq!(v, Rational::from(BigInt::from(i64::MIN)).abs());
        assert!(v.is_positive());
        assert_eq!(v.to_string(), "9223372036854775808");
        assert_eq!(Rational::from_pair(i64::MIN, i64::MIN), Rational::one());
        assert_eq!(
            Rational::from_pair(i64::MIN, 2),
            Rational::from(BigInt::from(i64::MIN / 2))
        );
        // And negation of an i64::MIN numerator promotes rather than
        // wrapping.
        let m = Rational::from_pair(i64::MIN, 1);
        assert_eq!((-&m).to_string(), "9223372036854775808");
        assert_eq!(-(-&m), m);
    }

    #[test]
    fn field_operations() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
        assert!(r(-5, 2) < Rational::zero());
        assert_eq!(r(3, 4).max(r(2, 3)), r(3, 4));
        assert_eq!(r(3, 4).min(r(2, 3)), r(2, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3".parse::<Rational>().unwrap(), r(3, 1));
        assert_eq!("-3".parse::<Rational>().unwrap(), r(-3, 1));
        assert_eq!("1/2".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("-6/4".parse::<Rational>().unwrap(), r(-3, 2));
        assert_eq!("2.75".parse::<Rational>().unwrap(), r(11, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), r(-1, 2));
        assert_eq!(".5".parse::<Rational>().unwrap(), r(1, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
    }

    #[test]
    fn signum_and_predicates() {
        assert_eq!(r(-3, 7).signum(), -1);
        assert_eq!(Rational::zero().signum(), 0);
        assert!(r(5, 1).is_integer());
        assert!(!r(5, 2).is_integer());
        assert!(r(1, 9).is_positive());
        assert!(r(-1, 9).is_negative());
    }

    #[test]
    fn promotion_is_transparent_and_exact() {
        let was = crate::set_fast_path(true);
        // (2^62 / 3) * (3 / 1) stays small; (2^62) * (2^62) must promote.
        let big = r(1 << 62, 1);
        let sq = &big * &big;
        assert!(!sq.is_small(), "2^124 cannot fit inline");
        assert_eq!(&sq / &big, big, "round-trips through the big form");
        assert!((&sq / &big).is_small(), "demotes when it fits again");
        crate::set_fast_path(was);
    }

    #[test]
    fn small_and_big_forms_are_interchangeable() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let was = crate::set_fast_path(true);
        let small = r(-22, 7);
        // Force the big representation of the same value.
        crate::set_fast_path(false);
        let big = Rational::from_pair(-22, 7);
        crate::set_fast_path(was);
        assert!(small.is_small());
        assert!(!big.is_small());
        assert_eq!(small, big);
        assert_eq!(small.cmp(&big), Ordering::Equal);
        let h = |v: &Rational| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&small), h(&big), "hash must be representation-free");
        crate::set_fast_path(was);
    }

    #[test]
    fn fast_path_off_never_builds_small_values() {
        let was = crate::set_fast_path(false);
        assert!(!Rational::zero().is_small());
        assert!(!Rational::one().is_small());
        assert!(!(r(1, 2) + r(1, 3)).is_small());
        assert!(!"2.75".parse::<Rational>().unwrap().is_small());
        crate::set_fast_path(was);
    }

    #[test]
    fn gcd_u64_basics() {
        assert_eq!(gcd_u64(0, 9), 9);
        assert_eq!(gcd_u64(9, 0), 9);
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(u64::MAX, 1), 1);
    }
}
