//! Exact rational numbers over [`BigInt`].

use crate::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive, and
/// `gcd(|num|, den) == 1` (zero is represented as `0/1`). Every constructor
/// and operation re-establishes these, so two `Rational`s are equal iff they
/// are structurally equal — which lets the constraint engine use `Rational`
/// directly as a map key and in canonical forms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// 0.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// 1.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Construct `num / den`, normalizing. Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        let mut r = Rational { num, den };
        r.normalize();
        r
    }

    /// Construct from an integer pair, e.g. `Rational::from_pair(1, 2)`.
    pub fn from_pair(num: i64, den: i64) -> Self {
        Rational::new(BigInt::from(num), BigInt::from(den))
    }

    /// Construct from an integer.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    fn normalize(&mut self) {
        if self.den.is_negative() {
            self.num = -std::mem::replace(&mut self.num, BigInt::zero());
            self.den = -std::mem::replace(&mut self.den, BigInt::zero());
        }
        if self.num.is_zero() {
            self.den = BigInt::one();
            return;
        }
        let g = self.num.gcd(&self.den);
        if g != BigInt::one() {
            self.num = self.num.div_exact(&g);
            self.den = self.den.div_exact(&g);
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Lossy conversion for reporting.
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            &q - &BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            &q + &BigInt::one()
        } else {
            q
        }
    }

    /// Minimum of two rationals by value.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals by value.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        Rational::new(
            &self.num * &other.den + &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        Rational::new(
            &self.num * &other.den - &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        Rational::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "Rational division by zero");
        Rational::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, other: &Rational) -> Rational {
                (&self).$method(other)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(mut self) -> Rational {
        self.num = -self.num;
        self
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error when parsing a [`Rational`] literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal")
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Accepts integers (`-3`), fractions (`1/2`), and decimals (`2.75`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse().map_err(|_| ParseRationalError)?;
            let den: BigInt = d.trim().parse().map_err(|_| ParseRationalError)?;
            if den.is_zero() {
                return Err(ParseRationalError);
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let (neg, int_digits) = match int_part.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, int_part.strip_prefix('+').unwrap_or(int_part)),
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRationalError);
            }
            let int_val: BigInt = if int_digits.is_empty() {
                BigInt::zero()
            } else {
                int_digits.parse().map_err(|_| ParseRationalError)?
            };
            let frac_val: BigInt = frac_part.parse().map_err(|_| ParseRationalError)?;
            let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
            let num = &int_val * &scale + frac_val;
            let r = Rational::new(num, scale);
            return Ok(if neg { -r } else { r });
        }
        let num: BigInt = s.parse().map_err(|_| ParseRationalError)?;
        Ok(Rational::from(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_pair(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert!(r(0, -5).denom() == &BigInt::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn field_operations() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
        assert!(r(-5, 2) < Rational::zero());
        assert_eq!(r(3, 4).max(r(2, 3)), r(3, 4));
        assert_eq!(r(3, 4).min(r(2, 3)), r(2, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3".parse::<Rational>().unwrap(), r(3, 1));
        assert_eq!("-3".parse::<Rational>().unwrap(), r(-3, 1));
        assert_eq!("1/2".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("-6/4".parse::<Rational>().unwrap(), r(-3, 2));
        assert_eq!("2.75".parse::<Rational>().unwrap(), r(11, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), r(-1, 2));
        assert_eq!(".5".parse::<Rational>().unwrap(), r(1, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
    }

    #[test]
    fn signum_and_predicates() {
        assert_eq!(r(-3, 7).signum(), -1);
        assert_eq!(Rational::zero().signum(), 0);
        assert!(r(5, 1).is_integer());
        assert!(!r(5, 2).is_integer());
        assert!(r(1, 9).is_positive());
        assert!(r(-1, 9).is_negative());
    }
}
