//! Buffer recycling for the engine's hot loops.
//!
//! The simplex pivot loop and Fourier–Motzkin products burn through
//! short-lived vectors (tableau rows, bound lists, scratch atom sets).
//! Instead of a bump allocator — which would force lifetime plumbing
//! through `lyric-simplex` and `lyric-constraint` — the hot paths keep a
//! thread-local [`Pool`] of reusable buffers: acquiring returns a
//! [`Lease`] that dereferences to the buffer and, on drop, clears it and
//! hands it back to the pool with its *capacity intact*. After the first
//! solve of a given shape, the inner loops run entirely on recycled
//! capacity and never touch the global allocator (pinned by the
//! `zero_alloc_pivot` integration test in `lyric-simplex`).
//!
//! Pool traffic is reported two ways:
//! - **Deterministic** byte counts (the logical size of the data a solve
//!   placed in pooled buffers) are tallied by the *callers* into
//!   `EngineStats::arena_bytes`, so differential tests can compare them
//!   exactly across thread counts and arithmetic modes.
//! - **Nondeterministic** process-lifetime totals (hits, misses, recycled
//!   capacity) live in the global atomics behind [`arena_stats`] and
//!   surface as Prometheus gauges via `lyric-metrics`.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buffers retained per pool; anything beyond this is dropped on release
/// so a one-off spike cannot pin memory for the thread's lifetime.
const POOL_CAP: usize = 8;

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime pool traffic, for metrics gauges. Monotonic and
/// global across threads, hence *not* part of `EngineStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Acquisitions served by a recycled buffer.
    pub pool_hits: u64,
    /// Acquisitions that had to construct a fresh buffer.
    pub pool_misses: u64,
    /// Capacity bytes returned to pools across all releases.
    pub recycled_bytes: u64,
}

/// Snapshot of the process-lifetime pool counters.
pub fn arena_stats() -> ArenaStats {
    ArenaStats {
        pool_hits: POOL_HITS.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
        recycled_bytes: RECYCLED_BYTES.load(Ordering::Relaxed),
    }
}

/// A buffer that can be reset for reuse while keeping its allocation.
pub trait Recycle: Default {
    /// Clear logical contents; retained capacity is the point.
    fn recycle(&mut self);
    /// Capacity bytes this buffer keeps alive while pooled (metrics only).
    fn retained_bytes(&self) -> usize {
        0
    }
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
    fn retained_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

/// A thread-local free list of reusable buffers. Clone shares the list.
#[derive(Debug)]
pub struct Pool<T: Recycle> {
    free: Rc<RefCell<Vec<T>>>,
}

impl<T: Recycle> Pool<T> {
    /// An empty pool (no recycled buffers yet).
    pub fn new() -> Self {
        Pool {
            free: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Take a recycled buffer (or construct a default one) under a lease
    /// that returns it to this pool on drop.
    pub fn acquire(&self) -> Lease<T> {
        let recycled = self.free.borrow_mut().pop();
        let value = match recycled {
            Some(v) => {
                POOL_HITS.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                POOL_MISSES.fetch_add(1, Ordering::Relaxed);
                T::default()
            }
        };
        Lease {
            value: Some(value),
            home: Rc::clone(&self.free),
        }
    }
}

impl<T: Recycle> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Recycle> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            free: Rc::clone(&self.free),
        }
    }
}

/// Owning handle to a pooled buffer; recycles it back on drop.
#[derive(Debug)]
pub struct Lease<T: Recycle> {
    value: Option<T>,
    home: Rc<RefCell<Vec<T>>>,
}

impl<T: Recycle> Deref for Lease<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.value.as_ref().expect("lease holds a value until drop")
    }
}

impl<T: Recycle> DerefMut for Lease<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("lease holds a value until drop")
    }
}

impl<T: Recycle> Drop for Lease<T> {
    fn drop(&mut self) {
        let mut v = self.value.take().expect("lease dropped once");
        v.recycle();
        let mut free = self.home.borrow_mut();
        if free.len() < POOL_CAP {
            RECYCLED_BYTES.fetch_add(v.retained_bytes() as u64, Ordering::Relaxed);
            free.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_round_trips_capacity_through_the_pool() {
        let pool: Pool<Vec<u64>> = Pool::new();
        let ptr;
        {
            let mut a = pool.acquire();
            a.extend(0..100);
            assert_eq!(a.len(), 100);
            ptr = a.as_ptr();
        }
        // The recycled buffer comes back cleared but with its allocation.
        let b = pool.acquire();
        assert!(b.is_empty());
        assert!(b.capacity() >= 100);
        assert_eq!(b.as_ptr(), ptr, "same allocation must be reused");
    }

    #[test]
    fn pool_counts_hits_misses_and_recycled_bytes() {
        let before = arena_stats();
        let pool: Pool<Vec<u8>> = Pool::new();
        {
            let mut a = pool.acquire(); // miss
            a.extend_from_slice(&[1, 2, 3]);
        }
        drop(pool.acquire()); // hit
        let after = arena_stats();
        assert!(after.pool_misses > before.pool_misses);
        assert!(after.pool_hits > before.pool_hits);
        assert!(after.recycled_bytes > before.recycled_bytes);
    }

    #[test]
    fn pool_retains_at_most_the_cap() {
        let pool: Pool<Vec<u8>> = Pool::new();
        let leases: Vec<_> = (0..POOL_CAP + 4).map(|_| pool.acquire()).collect();
        drop(leases);
        assert_eq!(pool.free.borrow().len(), POOL_CAP);
    }
}
