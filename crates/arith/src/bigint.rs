//! Sign-magnitude arbitrary-precision integers.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limb;
//! the empty limb vector is zero and always carries [`Sign::Zero`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sign {
    Neg,
    Zero,
    Pos,
}

/// An arbitrary-precision signed integer.
///
/// All arithmetic is exact; operations never overflow. Construction from
/// primitive integers is provided through `From` impls, decimal round-trip
/// through [`FromStr`] and [`fmt::Display`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian magnitude; invariant: no trailing (most-significant)
    /// zero limb; empty iff `sign == Sign::Zero`.
    mag: Vec<u64>,
}

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// True iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Pos
    }

    /// True iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Neg
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        match self.sign {
            Sign::Neg => -1,
            Sign::Zero => 0,
            Sign::Pos => 1,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Zero {
                Sign::Zero
            } else {
                Sign::Pos
            },
            mag: self.mag.clone(),
        }
    }

    fn from_mag(sign: Sign, mut mag: Vec<u64>) -> BigInt {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, mag }
        }
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.mag.len() {
            return false;
        }
        (self.mag[limb] >> (i % 64)) & 1 == 1
    }

    /// `self + other` computed via magnitude arithmetic.
    fn add_signed(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, mag_add(&self.mag, &other.mag)),
            (a, _) => match mag_cmp(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(a, mag_sub(&self.mag, &other.mag)),
                Ordering::Less => BigInt::from_mag(other.sign, mag_sub(&other.mag, &self.mag)),
            },
        }
    }

    /// Truncated division with remainder: returns `(q, r)` with
    /// `self == q * other + r`, `|r| < |other|`, and `r` having the sign of
    /// `self` (or zero). Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        if mag_cmp(&self.mag, &other.mag) == Ordering::Less {
            return (BigInt::zero(), self.clone());
        }
        let (qm, rm) = mag_divrem(&self.mag, &other.mag);
        let qsign = if self.sign == other.sign {
            Sign::Pos
        } else {
            Sign::Neg
        };
        (BigInt::from_mag(qsign, qm), BigInt::from_mag(self.sign, rm))
    }

    /// Exact quotient; panics (in debug) if the division has a remainder.
    pub fn div_exact(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        debug_assert!(r.is_zero(), "div_exact with nonzero remainder");
        q
    }

    /// Greatest common divisor of the magnitudes (always non-negative;
    /// `gcd(0, x) == |x|`). Binary (Stein) algorithm — no division needed.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.mag.clone();
        let mut b = other.mag.clone();
        if a.is_empty() {
            return BigInt::from_mag(bool_sign(!b.is_empty()), b);
        }
        if b.is_empty() {
            return BigInt::from_mag(Sign::Pos, a);
        }
        let sa = mag_trailing_zeros(&a);
        let sb = mag_trailing_zeros(&b);
        let shift = sa.min(sb);
        mag_shr(&mut a, sa);
        mag_shr(&mut b, sb);
        // Invariant: a, b odd.
        loop {
            match mag_cmp(&a, &b) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a = mag_sub(&a, &b);
            let tz = mag_trailing_zeros(&a);
            mag_shr(&mut a, tz);
        }
        mag_shl(&mut a, shift);
        BigInt::from_mag(Sign::Pos, a)
    }

    /// `self * 2^n`.
    pub fn shl(&self, n: usize) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        let mut mag = self.mag.clone();
        mag_shl(&mut mag, n);
        BigInt::from_mag(self.sign, mag)
    }

    /// Raise to a small power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Lossy conversion to `f64` (used only for reporting, never inside the
    /// exact engine).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign == Sign::Neg {
            -v
        } else {
            v
        }
    }

    /// Checked conversion to `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                match self.sign {
                    Sign::Pos if m <= i64::MAX as u64 => Some(m as i64),
                    Sign::Neg if m <= i64::MAX as u64 + 1 => Some(-(m as i128) as i64),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

fn bool_sign(pos: bool) -> Sign {
    if pos {
        Sign::Pos
    } else {
        Sign::Zero
    }
}

// ---- magnitude (unsigned little-endian limb vector) helpers ----

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[allow(clippy::needless_range_loop)]
fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = long[i].overflowing_add(s);
        let (y, c2) = x.overflowing_add(carry);
        out.push(y);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry > 0 {
        out.push(carry);
    }
    out
}

/// Requires `a >= b`.
#[allow(clippy::needless_range_loop)]
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = a[i].overflowing_sub(s);
        let (y, b2) = x.overflowing_sub(borrow);
        out.push(y);
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn mag_trailing_zeros(a: &[u64]) -> usize {
    for (i, &limb) in a.iter().enumerate() {
        if limb != 0 {
            return i * 64 + limb.trailing_zeros() as usize;
        }
    }
    0
}

fn mag_shr(a: &mut Vec<u64>, n: usize) {
    if n == 0 || a.is_empty() {
        return;
    }
    let limbs = n / 64;
    let bits = n % 64;
    if limbs >= a.len() {
        a.clear();
        return;
    }
    a.drain(..limbs);
    if bits > 0 {
        let mut carry = 0u64;
        for limb in a.iter_mut().rev() {
            let new_carry = *limb << (64 - bits);
            *limb = (*limb >> bits) | carry;
            carry = new_carry;
        }
    }
    while a.last() == Some(&0) {
        a.pop();
    }
}

fn mag_shl(a: &mut Vec<u64>, n: usize) {
    if n == 0 || a.is_empty() {
        return;
    }
    let limbs = n / 64;
    let bits = n % 64;
    if bits > 0 {
        let mut carry = 0u64;
        for limb in a.iter_mut() {
            let new_carry = *limb >> (64 - bits);
            *limb = (*limb << bits) | carry;
            carry = new_carry;
        }
        if carry > 0 {
            a.push(carry);
        }
    }
    if limbs > 0 {
        let mut shifted = vec![0u64; limbs];
        shifted.extend_from_slice(a);
        *a = shifted;
    }
}

/// Binary long division of magnitudes: returns `(quotient, remainder)`.
/// `b` must be nonzero. O(bits(a) · limbs(b)); adequate for the small
/// coefficients produced by gcd-normalized constraints.
fn mag_divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(!b.is_empty());
    // Fast path: single-limb divisor.
    if b.len() == 1 {
        let d = b[0] as u128;
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        let r = if rem == 0 {
            Vec::new()
        } else {
            vec![rem as u64]
        };
        return (q, r);
    }
    let a_bits = BigInt {
        sign: Sign::Pos,
        mag: a.to_vec(),
    };
    let nbits = a_bits.bit_len();
    let mut q = vec![0u64; a.len()];
    let mut r: Vec<u64> = Vec::new();
    for i in (0..nbits).rev() {
        mag_shl(&mut r, 1);
        if a_bits.bit(i) {
            if r.is_empty() {
                r.push(1);
            } else {
                r[0] |= 1;
            }
        }
        if mag_cmp(&r, b) != Ordering::Less {
            r = mag_sub(&r, b);
            q[i / 64] |= 1u64 << (i % 64);
        }
    }
    while q.last() == Some(&0) {
        q.pop();
    }
    (q, r)
}

// ---- trait impls ----

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Pos,
                mag: vec![v as u64],
            },
            Ordering::Less => BigInt {
                sign: Sign::Neg,
                mag: vec![(v as i128).unsigned_abs() as u64],
            },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Pos,
                mag: vec![v],
            }
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let sign = match v.cmp(&0) {
            Ordering::Equal => return BigInt::zero(),
            Ordering::Greater => Sign::Pos,
            Ordering::Less => Sign::Neg,
        };
        let m = v.unsigned_abs();
        BigInt::from_mag(sign, vec![m as u64, (m >> 64) as u64])
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: match self.sign {
                Sign::Neg => Sign::Pos,
                Sign::Zero => Sign::Zero,
                Sign::Pos => Sign::Neg,
            },
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = match self.sign {
            Sign::Neg => Sign::Pos,
            Sign::Zero => Sign::Zero,
            Sign::Pos => Sign::Neg,
        };
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        self.add_signed(other)
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self.add_signed(&-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        let sign = match (self.sign, other.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return BigInt::zero(),
            (a, b) if a == b => Sign::Pos,
            _ => Sign::Neg,
        };
        BigInt::from_mag(sign, mag_mul(&self.mag, &other.mag))
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Neg, Sign::Neg) => mag_cmp(&other.mag, &self.mag),
            (Sign::Neg, _) => Ordering::Less,
            (Sign::Zero, Sign::Neg) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Pos) => Ordering::Less,
            (Sign::Pos, Sign::Pos) => mag_cmp(&self.mag, &other.mag),
            (Sign::Pos, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for BigInt {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.signum().hash(state);
        self.mag.hash(state);
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.sign == Sign::Neg {
            write!(f, "-")?;
        }
        // Peel off 19 decimal digits at a time (10^19 fits in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = mag_divrem(&mag, &[CHUNK]);
            chunks.push(r.first().copied().unwrap_or(0));
            mag = q;
        }
        let mut iter = chunks.iter().rev();
        if let Some(first) = iter.next() {
            write!(f, "{}", first)?;
        }
        for chunk in iter {
            write!(f, "{:019}", chunk)?;
        }
        Ok(())
    }
}

/// Error when parsing a [`BigInt`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let ten_pow_19 = BigInt::from(10_000_000_000_000_000_000u64);
        let mut acc = BigInt::zero();
        let bytes = digits.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(19);
            let chunk: u64 = digits[i..i + take].parse().map_err(|_| ParseBigIntError)?;
            let scale = if take == 19 {
                ten_pow_19.clone()
            } else {
                BigInt::from(10u64).pow(take as u32)
            };
            acc = &acc * &scale + BigInt::from(chunk);
            i += take;
        }
        Ok(if neg { -acc } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_identities() {
        assert!(BigInt::zero().is_zero());
        assert_eq!(&b(5) + &BigInt::zero(), b(5));
        assert_eq!(&BigInt::zero() + &b(-5), b(-5));
        assert_eq!(&b(5) * &BigInt::zero(), BigInt::zero());
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(&b(2) + &b(3), b(5));
        assert_eq!(&b(2) - &b(3), b(-1));
        assert_eq!(&b(-2) * &b(3), b(-6));
        assert_eq!(&b(-2) * &b(-3), b(6));
        assert_eq!(-b(7), b(-7));
    }

    #[test]
    fn carry_and_borrow_across_limbs() {
        let big = BigInt::from(u64::MAX);
        let sum = &big + &b(1);
        assert_eq!(sum.to_string(), "18446744073709551616");
        assert_eq!(&sum - &b(1), big);
    }

    #[test]
    fn multiplication_multi_limb() {
        let a = BigInt::from_str("123456789012345678901234567890").unwrap();
        let bq = BigInt::from_str("987654321098765432109876543210").unwrap();
        let p = &a * &bq;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn div_rem_signs_follow_truncation() {
        for (a, d) in [(7i64, 2i64), (-7, 2), (7, -2), (-7, -2)] {
            let (q, r) = b(a).div_rem(&b(d));
            assert_eq!(q, b(a / d), "quotient of {a}/{d}");
            assert_eq!(r, b(a % d), "remainder of {a}/{d}");
        }
    }

    #[test]
    fn div_rem_large() {
        let a = BigInt::from_str("340282366920938463463374607431768211455").unwrap();
        let d = BigInt::from_str("18446744073709551629").unwrap();
        let (q, r) = a.div_rem(&d);
        assert_eq!(&(&q * &d) + &r, a);
        assert!(r.abs() < d.abs());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = b(1).div_rem(&BigInt::zero());
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(-7)), b(7));
        assert_eq!(b(7).gcd(&b(0)), b(7));
        assert_eq!(b(1).gcd(&b(1)), b(1));
        assert_eq!(b(17).gcd(&b(13)), b(1));
    }

    #[test]
    fn ordering_total() {
        let mut v = vec![b(3), b(-1), b(0), b(100), b(-100)];
        v.sort();
        assert_eq!(v, vec![b(-100), b(-1), b(0), b(3), b(100)]);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-99999999999999999999999999",
        ] {
            let v = BigInt::from_str(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!(BigInt::from_str("").is_err());
        assert!(BigInt::from_str("12a").is_err());
        assert!(BigInt::from_str("-").is_err());
    }

    #[test]
    fn pow_small() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(10).pow(0), b(1));
        assert_eq!(b(-3).pow(3), b(-27));
        assert_eq!(b(10).pow(25).to_string(), "10000000000000000000000000");
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(b(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!((&b(i64::MAX) + &b(1)).to_i64(), None);
        assert_eq!(BigInt::zero().to_i64(), Some(0));
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(b(5).to_f64(), 5.0);
        assert_eq!(b(-5).to_f64(), -5.0);
        let big = BigInt::from_str("18446744073709551616").unwrap();
        assert!((big.to_f64() - 1.8446744073709552e19).abs() < 1e5);
    }

    #[test]
    fn shl_matches_pow2_multiplication() {
        assert_eq!(b(3).shl(70), &b(3) * &b(2).pow(70));
        assert_eq!(BigInt::zero().shl(100), BigInt::zero());
    }

    #[test]
    fn i128_conversion() {
        let v = BigInt::from(i128::MAX);
        assert_eq!(v.to_string(), i128::MAX.to_string());
        let v = BigInt::from(i128::MIN);
        assert_eq!(v.to_string(), i128::MIN.to_string());
    }
}
