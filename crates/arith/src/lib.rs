//! Exact arithmetic substrate for the LyriC constraint engine.
//!
//! Linear-constraint manipulation — Fourier–Motzkin elimination, exact
//! simplex pivoting, canonical-form normalization — multiplies and divides
//! rational coefficients repeatedly. With fixed-width integers the
//! intermediate numerators/denominators overflow quickly (FM squares the
//! number of constraints per step and multiplies coefficients pairwise), so
//! the engine is built on arbitrary-precision integers and exact rationals.
//!
//! Three types are exported:
//!
//! * [`BigInt`] — sign-magnitude arbitrary-precision integer.
//! * [`Rational`] — always-normalized fraction of two [`BigInt`]s.
//! * [`EpsRational`] — `a + b·ε` with ε an infinitesimal, ordered
//!   lexicographically. Used by the simplex solver to treat strict
//!   inequalities (`x < c` becomes `x ≤ c − ε`) without case analysis, in
//!   the style of the Simplex-for-SMT literature.
//!
//! ```
//! use lyric_arith::{BigInt, Rational, EpsRational};
//! use std::str::FromStr;
//!
//! // Exact rationals: no drift, structural equality after normalization.
//! let a = Rational::from_pair(1, 3);
//! let b = "2/6".parse::<Rational>().unwrap();
//! assert_eq!(a, b);
//! assert_eq!((&a + &b).to_string(), "2/3");
//!
//! // Arbitrary precision: 2^200 round-trips through decimal.
//! let big = BigInt::from(2i64).pow(200);
//! assert_eq!(BigInt::from_str(&big.to_string()).unwrap(), big);
//!
//! // ε-extended values order lexicographically: 1 − ε < 1.
//! let below_one = EpsRational::new(Rational::one(), -Rational::one());
//! assert!(below_one < EpsRational::from_rational(Rational::one()));
//! ```
//!
//! The implementation favours simplicity and auditability for the
//! arbitrary-precision tier — schoolbook multiplication, binary long
//! division, binary GCD — but since coefficients arising from
//! gcd-normalized constraint atoms stay small in practice, [`Rational`]
//! keeps a *two-tier* representation: an inline `i64/i64` fast path with
//! `i128` intermediates that transparently promotes to the [`BigInt`]
//! pair on overflow (see [`Rational`] and [`fastpath`]). The
//! [`arena`] module adds buffer recycling for the simplex/FM hot loops.
//! The benchmark suite (crate `lyric-bench`) measures the engine
//! end-to-end with this arithmetic; experiment E13 pins the fast-path
//! speedup.

#![warn(missing_docs)]

pub mod arena;
mod bigint;
mod eps;
pub mod fastpath;
mod rational;

pub use arena::{arena_stats, ArenaStats, Lease, Pool, Recycle};
pub use bigint::BigInt;
pub use eps::EpsRational;
pub use fastpath::{default_fast_path, fast_path_enabled, op_counters, set_fast_path, OpCounters};
pub use rational::{gcd_u64, ParseRationalError, Rational};
