//! Exact arithmetic substrate for the LyriC constraint engine.
//!
//! Linear-constraint manipulation — Fourier–Motzkin elimination, exact
//! simplex pivoting, canonical-form normalization — multiplies and divides
//! rational coefficients repeatedly. With fixed-width integers the
//! intermediate numerators/denominators overflow quickly (FM squares the
//! number of constraints per step and multiplies coefficients pairwise), so
//! the engine is built on arbitrary-precision integers and exact rationals.
//!
//! Three types are exported:
//!
//! * [`BigInt`] — sign-magnitude arbitrary-precision integer.
//! * [`Rational`] — always-normalized fraction of two [`BigInt`]s.
//! * [`EpsRational`] — `a + b·ε` with ε an infinitesimal, ordered
//!   lexicographically. Used by the simplex solver to treat strict
//!   inequalities (`x < c` becomes `x ≤ c − ε`) without case analysis, in
//!   the style of the Simplex-for-SMT literature.
//!
//! ```
//! use lyric_arith::{BigInt, Rational, EpsRational};
//! use std::str::FromStr;
//!
//! // Exact rationals: no drift, structural equality after normalization.
//! let a = Rational::from_pair(1, 3);
//! let b = "2/6".parse::<Rational>().unwrap();
//! assert_eq!(a, b);
//! assert_eq!((&a + &b).to_string(), "2/3");
//!
//! // Arbitrary precision: 2^200 round-trips through decimal.
//! let big = BigInt::from(2i64).pow(200);
//! assert_eq!(BigInt::from_str(&big.to_string()).unwrap(), big);
//!
//! // ε-extended values order lexicographically: 1 − ε < 1.
//! let below_one = EpsRational::new(Rational::one(), -Rational::one());
//! assert!(below_one < EpsRational::from_rational(Rational::one()));
//! ```
//!
//! The implementation deliberately favours simplicity and auditability over
//! raw throughput: schoolbook multiplication, binary long division, binary
//! GCD. Coefficients arising from gcd-normalized constraint atoms stay small
//! in practice, and the benchmark suite (crate `lyric-bench`) measures the
//! engine end-to-end with this arithmetic.

mod bigint;
mod eps;
mod rational;

pub use bigint::BigInt;
pub use eps::EpsRational;
pub use rational::{ParseRationalError, Rational};
