//! The small-coefficient fast-path switch and its per-thread counters.
//!
//! [`Rational`](crate::Rational) keeps two representations: an inline
//! `i64/i64` pair for the small coefficients that dominate real query
//! workloads, and the arbitrary-precision `BigInt` pair it transparently
//! promotes to on overflow. This module owns the *mode switch* between
//! "use the inline path when possible" and "always use `BigInt`" (the
//! measurement baseline), plus the counters that report how often each
//! path ran and how often a small operation had to promote.
//!
//! The switch is **thread-local** so that concurrent engine contexts with
//! different `ExecOptions` cannot race each other: the engine sets the
//! flag on the query thread (and on every pool worker) for the duration
//! of a run and restores the previous value afterwards. A fresh thread
//! starts in the *unset* state and lazily resolves its mode from the
//! `LYRIC_ARITH_FAST` environment variable (any value other than `0`
//! enables the fast path; unset means enabled).
//!
//! The counters are likewise thread-local and cumulative for the thread's
//! lifetime; callers (the engine's stat refresh) take snapshots with
//! [`op_counters`] and difference them, exactly like `EngineStats`
//! deltas.

use std::cell::Cell;
use std::sync::OnceLock;

/// Cumulative arithmetic-path counters for the current thread.
///
/// `small_ops + big_ops` is the total number of counted rational
/// operations (add/sub/mul/div/cmp/recip); `promotions` counts the small
/// operations whose exact result no longer fit in `i64/i64` and was
/// promoted to the `BigInt` representation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Operations completed entirely on the inline `i64`/`i128` path.
    pub small_ops: u64,
    /// Operations that ran on the arbitrary-precision `BigInt` path.
    pub big_ops: u64,
    /// Small-path results that overflowed `i64` and promoted to `BigInt`.
    pub promotions: u64,
}

// Mode encoding: 0 = unset (resolve lazily from the environment),
// 1 = fast path off, 2 = fast path on.
thread_local! {
    static MODE: Cell<u8> = const { Cell::new(0) };
    static SMALL_OPS: Cell<u64> = const { Cell::new(0) };
    static BIG_OPS: Cell<u64> = const { Cell::new(0) };
    static PROMOTIONS: Cell<u64> = const { Cell::new(0) };
}

/// The process-wide default for the fast path, read once from the
/// `LYRIC_ARITH_FAST` environment variable: `0` disables it, anything
/// else (including unset) enables it.
pub fn default_fast_path() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("LYRIC_ARITH_FAST")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

/// Whether the current thread uses the inline small-coefficient path.
/// Threads that never called [`set_fast_path`] resolve (and then cache)
/// the process default on first use.
#[inline]
pub fn fast_path_enabled() -> bool {
    MODE.with(|m| match m.get() {
        1 => false,
        2 => true,
        _ => {
            let on = default_fast_path();
            m.set(if on { 2 } else { 1 });
            on
        }
    })
}

/// Set the fast-path mode for the current thread, returning the previous
/// effective mode so callers can restore it (the engine brackets each
/// query run this way).
pub fn set_fast_path(on: bool) -> bool {
    let was = fast_path_enabled();
    MODE.with(|m| m.set(if on { 2 } else { 1 }));
    was
}

/// Snapshot of the current thread's cumulative arithmetic-path counters.
pub fn op_counters() -> OpCounters {
    OpCounters {
        small_ops: SMALL_OPS.with(Cell::get),
        big_ops: BIG_OPS.with(Cell::get),
        promotions: PROMOTIONS.with(Cell::get),
    }
}

#[inline]
pub(crate) fn count_small() {
    SMALL_OPS.with(|c| c.set(c.get().wrapping_add(1)));
}

#[inline]
pub(crate) fn count_big() {
    BIG_OPS.with(|c| c.set(c.get().wrapping_add(1)));
}

#[inline]
pub(crate) fn count_promotion() {
    PROMOTIONS.with(|c| c.set(c.get().wrapping_add(1)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_returns_previous_mode_and_sticks() {
        let initial = fast_path_enabled();
        assert_eq!(set_fast_path(false), initial);
        assert!(!fast_path_enabled());
        assert!(!set_fast_path(true));
        assert!(fast_path_enabled());
        set_fast_path(initial);
    }

    #[test]
    fn counters_are_monotonic_snapshots() {
        let before = op_counters();
        count_small();
        count_big();
        count_promotion();
        let after = op_counters();
        assert_eq!(after.small_ops - before.small_ops, 1);
        assert_eq!(after.big_ops - before.big_ops, 1);
        assert_eq!(after.promotions - before.promotions, 1);
    }
}
