//! Rationals extended with a symbolic infinitesimal ε.
//!
//! `EpsRational` represents `a + b·ε` where ε is an arbitrarily small
//! positive quantity. The order is lexicographic: `a + b·ε < c + d·ε` iff
//! `a < c`, or `a == c` and `b < d`. This makes strict linear inequalities
//! expressible as non-strict ones (`x < c` ⇔ `x ≤ c − ε`), which is how the
//! `lyric-simplex` solver supports the `<` and `>` relops of the paper's
//! linear arithmetic constraints without any case analysis.
//!
//! `EpsRational` is a module over [`Rational`] (addition, subtraction,
//! scaling by a rational); it is *not* closed under multiplication because
//! ε² terms are dropped — the simplex algorithm only ever scales rows by
//! rational pivot coefficients, so this is exactly the structure needed.

use crate::Rational;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// `real + inf·ε` with ε an infinitesimal; ordered lexicographically.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct EpsRational {
    /// The standard (real) part.
    pub real: Rational,
    /// The coefficient of ε.
    pub inf: Rational,
}

impl EpsRational {
    /// 0.
    pub fn zero() -> Self {
        EpsRational {
            real: Rational::zero(),
            inf: Rational::zero(),
        }
    }

    /// A pure rational (ε-coefficient zero).
    pub fn from_rational(r: Rational) -> Self {
        EpsRational {
            real: r,
            inf: Rational::zero(),
        }
    }

    /// The infinitesimal ε itself.
    pub fn epsilon() -> Self {
        EpsRational {
            real: Rational::zero(),
            inf: Rational::one(),
        }
    }

    /// Construct `real + inf·ε`.
    /// Build `real + inf·ε`.
    pub fn new(real: Rational, inf: Rational) -> Self {
        EpsRational { real, inf }
    }

    /// Is the value exactly zero (both components)?
    pub fn is_zero(&self) -> bool {
        self.real.is_zero() && self.inf.is_zero()
    }

    /// True iff the value has no ε component — i.e. it is an ordinary
    /// rational and, when it is the optimum of an LP, the bound is attained.
    pub fn is_exact(&self) -> bool {
        self.inf.is_zero()
    }

    /// Scale by a rational: `(a + b·ε)·c = ac + bc·ε`.
    pub fn scale(&self, c: &Rational) -> EpsRational {
        EpsRational {
            real: &self.real * c,
            inf: &self.inf * c,
        }
    }

    /// Evaluate at a concrete positive value of ε.
    pub fn evaluate_at(&self, eps: &Rational) -> Rational {
        &self.real + &(&self.inf * eps)
    }

    /// Sign of the value (using the lexicographic order): -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        match self.real.signum() {
            0 => self.inf.signum(),
            s => s,
        }
    }

    /// Is the value strictly positive (lexicographic order)?
    pub fn is_positive(&self) -> bool {
        self.signum() > 0
    }

    /// Is the value strictly negative (lexicographic order)?
    pub fn is_negative(&self) -> bool {
        self.signum() < 0
    }
}

impl From<Rational> for EpsRational {
    fn from(r: Rational) -> Self {
        EpsRational::from_rational(r)
    }
}

impl From<i64> for EpsRational {
    fn from(v: i64) -> Self {
        EpsRational::from_rational(Rational::from_int(v))
    }
}

impl Add for &EpsRational {
    type Output = EpsRational;
    fn add(self, other: &EpsRational) -> EpsRational {
        EpsRational {
            real: &self.real + &other.real,
            inf: &self.inf + &other.inf,
        }
    }
}

impl Sub for &EpsRational {
    type Output = EpsRational;
    fn sub(self, other: &EpsRational) -> EpsRational {
        EpsRational {
            real: &self.real - &other.real,
            inf: &self.inf - &other.inf,
        }
    }
}

impl Add for EpsRational {
    type Output = EpsRational;
    fn add(self, other: EpsRational) -> EpsRational {
        &self + &other
    }
}

impl Sub for EpsRational {
    type Output = EpsRational;
    fn sub(self, other: EpsRational) -> EpsRational {
        &self - &other
    }
}

impl AddAssign<&EpsRational> for EpsRational {
    fn add_assign(&mut self, other: &EpsRational) {
        self.real += &other.real;
        self.inf += &other.inf;
    }
}

impl SubAssign<&EpsRational> for EpsRational {
    fn sub_assign(&mut self, other: &EpsRational) {
        self.real -= &other.real;
        self.inf -= &other.inf;
    }
}

impl Neg for &EpsRational {
    type Output = EpsRational;
    fn neg(self) -> EpsRational {
        EpsRational {
            real: -&self.real,
            inf: -&self.inf,
        }
    }
}

impl Neg for EpsRational {
    type Output = EpsRational;
    fn neg(self) -> EpsRational {
        -&self
    }
}

impl Ord for EpsRational {
    fn cmp(&self, other: &Self) -> Ordering {
        self.real
            .cmp(&other.real)
            .then_with(|| self.inf.cmp(&other.inf))
    }
}

impl PartialOrd for EpsRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for EpsRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inf.is_zero() {
            write!(f, "{}", self.real)
        } else if self.real.is_zero() {
            write!(f, "{}ε", self.inf)
        } else if self.inf.is_negative() {
            write!(f, "{} - {}ε", self.real, self.inf.abs())
        } else {
            write!(f, "{} + {}ε", self.real, self.inf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: i64, b: i64) -> EpsRational {
        EpsRational::new(Rational::from_int(a), Rational::from_int(b))
    }

    #[test]
    fn lexicographic_order() {
        assert!(e(1, 0) < e(2, -100));
        assert!(e(1, -1) < e(1, 0));
        assert!(e(1, 0) < e(1, 1));
        assert!(EpsRational::epsilon() > EpsRational::zero());
        assert!(EpsRational::epsilon() < EpsRational::from(1));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&e(1, 2) + &e(3, -1), e(4, 1));
        assert_eq!(&e(1, 2) - &e(3, -1), e(-2, 3));
        assert_eq!(-&e(1, -2), e(-1, 2));
        assert_eq!(e(2, 4).scale(&Rational::from_pair(1, 2)), e(1, 2));
    }

    #[test]
    fn signum_uses_eps_on_tie() {
        assert_eq!(e(0, 0).signum(), 0);
        assert_eq!(e(0, 1).signum(), 1);
        assert_eq!(e(0, -1).signum(), -1);
        assert_eq!(e(-1, 100).signum(), -1);
        assert!(e(0, 1).is_positive());
        assert!(e(0, -3).is_negative());
    }

    #[test]
    fn evaluate_at_concrete_eps() {
        let v = e(2, -3);
        assert_eq!(
            v.evaluate_at(&Rational::from_pair(1, 6)),
            Rational::from_pair(3, 2)
        );
    }

    #[test]
    fn exactness_flag() {
        assert!(e(5, 0).is_exact());
        assert!(!e(5, -1).is_exact());
    }

    #[test]
    fn display() {
        assert_eq!(e(3, 0).to_string(), "3");
        assert_eq!(e(0, 2).to_string(), "2ε");
        assert_eq!(e(3, -1).to_string(), "3 - 1ε");
        assert_eq!(e(3, 2).to_string(), "3 + 2ε");
    }
}
