//! Differential properties for the two-tier `Rational` representation.
//!
//! Every arithmetic operation is computed twice — once with the
//! small-coefficient fast path enabled (inline `i64/i64` with `i128`
//! intermediates) and once with it disabled (the all-`BigInt` baseline
//! that served as the only representation before the fast path landed).
//! The two results must be indistinguishable: equal as values, equal
//! under `Ord`, and equal under `Hash`. The input generator is biased
//! hard toward the overflow boundaries (`i64::MIN`, `i64::MAX`,
//! near-overflow products) so that the transparent promotion into the
//! `BigInt` tier is exercised on a large fraction of cases rather than
//! almost never.

use lyric_arith::{gcd_u64, op_counters, set_fast_path, BigInt, Rational};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Run `f` with the fast path forced to `on`, restoring the previous
/// thread-local mode afterwards.
fn with_mode<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = set_fast_path(on);
    let out = f();
    set_fast_path(prev);
    out
}

/// `i64` values concentrated on the overflow boundaries: the exact
/// extremes, their immediate neighbourhoods, powers of two whose
/// products straddle `i64`/`i128`, and a thin tail of uniform values.
fn boundary_i64() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MIN + 1),
        Just(i64::MAX),
        Just(i64::MAX - 1),
        Just(0i64),
        Just(1i64),
        Just(-1i64),
        Just(1i64 << 31),
        Just(1i64 << 32),
        Just(1i64 << 62),
        Just(-(1i64 << 62)),
        Just(3_037_000_499i64), // floor(sqrt(i64::MAX)): products sit right at the edge
        (i64::MAX - 1_000)..i64::MAX,
        i64::MIN..(i64::MIN + 1_000),
        -1_000i64..1_000,
        any::<i64>(),
    ]
}

fn nonzero_boundary_i64() -> impl Strategy<Value = i64> {
    boundary_i64().prop_filter("denominator must be non-zero", |v| *v != 0)
}

/// A boundary-biased rational as raw parts (denominator non-zero).
fn parts() -> impl Strategy<Value = (i64, i64)> {
    (boundary_i64(), nonzero_boundary_i64())
}

fn hash_of(r: &Rational) -> u64 {
    let mut h = DefaultHasher::new();
    r.hash(&mut h);
    h.finish()
}

/// Canonical-form invariants that must hold for *any* representation:
/// positive denominator, fully reduced, zero as 0/1.
fn assert_canonical(r: &Rational) {
    let num = r.numer();
    let den = r.denom();
    assert!(den.is_positive(), "denominator not positive: {r}");
    if num.is_zero() {
        assert_eq!(den, BigInt::one(), "zero not canonical: {r}");
    } else {
        assert_eq!(num.gcd(&den), BigInt::one(), "not reduced: {r}");
    }
    if let Some((n, d)) = r.small_parts() {
        assert_eq!(BigInt::from(n), num, "small numerator diverges: {r}");
        assert_eq!(BigInt::from(d), den, "small denominator diverges: {r}");
    }
}

/// Check a fast-path result against the all-BigInt oracle for the same
/// computation: value equality (both directions, catching asymmetric
/// `PartialEq` bugs), `Ord` equality, hash equality, canonical form.
fn assert_matches_oracle(fast: &Rational, slow: &Rational) {
    assert_eq!(fast, slow, "fast {fast} != oracle {slow}");
    assert_eq!(slow, fast, "oracle {slow} != fast {fast}");
    assert_eq!(fast.cmp(slow), Ordering::Equal);
    assert_eq!(hash_of(fast), hash_of(slow), "hash diverges for {fast}");
    assert_canonical(fast);
    assert_canonical(slow);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn normalize_matches_oracle(p in parts()) {
        let fast = with_mode(true, || Rational::from_pair(p.0, p.1));
        let slow = with_mode(false, || Rational::from_pair(p.0, p.1));
        prop_assert!(!slow.is_small(), "oracle mode must stay in the BigInt tier");
        assert_matches_oracle(&fast, &slow);
    }

    #[test]
    fn add_matches_oracle(a in parts(), b in parts()) {
        let fast = with_mode(true, || &Rational::from_pair(a.0, a.1) + &Rational::from_pair(b.0, b.1));
        let slow = with_mode(false, || &Rational::from_pair(a.0, a.1) + &Rational::from_pair(b.0, b.1));
        assert_matches_oracle(&fast, &slow);
    }

    #[test]
    fn sub_matches_oracle(a in parts(), b in parts()) {
        let fast = with_mode(true, || &Rational::from_pair(a.0, a.1) - &Rational::from_pair(b.0, b.1));
        let slow = with_mode(false, || &Rational::from_pair(a.0, a.1) - &Rational::from_pair(b.0, b.1));
        assert_matches_oracle(&fast, &slow);
    }

    #[test]
    fn mul_matches_oracle(a in parts(), b in parts()) {
        let fast = with_mode(true, || &Rational::from_pair(a.0, a.1) * &Rational::from_pair(b.0, b.1));
        let slow = with_mode(false, || &Rational::from_pair(a.0, a.1) * &Rational::from_pair(b.0, b.1));
        assert_matches_oracle(&fast, &slow);
    }

    #[test]
    fn div_matches_oracle(a in parts(), b in parts()) {
        prop_assume!(b.0 != 0);
        let fast = with_mode(true, || &Rational::from_pair(a.0, a.1) / &Rational::from_pair(b.0, b.1));
        let slow = with_mode(false, || &Rational::from_pair(a.0, a.1) / &Rational::from_pair(b.0, b.1));
        assert_matches_oracle(&fast, &slow);
    }

    #[test]
    fn neg_and_recip_match_oracle(a in parts()) {
        let fast = with_mode(true, || -&Rational::from_pair(a.0, a.1));
        let slow = with_mode(false, || -&Rational::from_pair(a.0, a.1));
        assert_matches_oracle(&fast, &slow);
        if a.0 != 0 {
            let fast = with_mode(true, || Rational::from_pair(a.0, a.1).recip());
            let slow = with_mode(false, || Rational::from_pair(a.0, a.1).recip());
            assert_matches_oracle(&fast, &slow);
        }
    }

    #[test]
    fn cmp_matches_oracle(a in parts(), b in parts()) {
        let fast = with_mode(true, || {
            let (x, y) = (Rational::from_pair(a.0, a.1), Rational::from_pair(b.0, b.1));
            (x.cmp(&y), x == y)
        });
        let slow = with_mode(false, || {
            let (x, y) = (Rational::from_pair(a.0, a.1), Rational::from_pair(b.0, b.1));
            (x.cmp(&y), x == y)
        });
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn floor_ceil_abs_match_oracle(a in parts()) {
        let fast = with_mode(true, || {
            let x = Rational::from_pair(a.0, a.1);
            (x.floor(), x.ceil(), x.abs(), x.signum(), x.to_string())
        });
        let slow = with_mode(false, || {
            let x = Rational::from_pair(a.0, a.1);
            (x.floor(), x.ceil(), x.abs(), x.signum(), x.to_string())
        });
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn gcd_u64_matches_bigint_gcd(a in any::<u64>(), b in any::<u64>()) {
        let oracle = BigInt::from(a as i128).gcd(&BigInt::from(b as i128));
        prop_assert_eq!(BigInt::from(gcd_u64(a, b) as i128), oracle);
    }

    /// Cross-representation interchangeability: a value freshly promoted
    /// to the BigInt tier and the same value in the small tier must be
    /// equal, hash-equal, and order the same against a third value.
    #[test]
    fn mixed_representation_ops_match(a in parts(), b in parts()) {
        let small_a = with_mode(true, || Rational::from_pair(a.0, a.1));
        let big_a = with_mode(false, || Rational::from_pair(a.0, a.1));
        let small_b = with_mode(true, || Rational::from_pair(b.0, b.1));
        // Mixed-tier binary ops must agree with same-tier ops.
        let mixed = with_mode(true, || (&big_a + &small_b, &big_a * &small_b));
        let pure = with_mode(true, || (&small_a + &small_b, &small_a * &small_b));
        prop_assert_eq!(&mixed.0, &pure.0);
        prop_assert_eq!(&mixed.1, &pure.1);
        prop_assert_eq!(hash_of(&small_a), hash_of(&big_a));
        prop_assert_eq!(small_a.cmp(&small_b), big_a.cmp(&small_b));
    }

    /// Force overflow: products of near-`sqrt(i64::MAX)`-and-above
    /// factors must transparently promote and still be exact.
    #[test]
    fn overflow_products_promote_exactly(shift_a in 32u32..63, shift_b in 32u32..63) {
        with_mode(true, || {
            let before = op_counters();
            let a = Rational::from_int(1i64 << shift_a);
            let b = Rational::from_int(1i64 << shift_b);
            let prod = &a * &b;
            // 2^(sa+sb) with sa+sb >= 64 cannot fit the small tier.
            assert!(!prod.is_small(), "2^{} stayed small", shift_a + shift_b);
            assert!(op_counters().promotions > before.promotions,
                    "overflow product did not count a promotion");
            // The value is exact: dividing back recovers the factor (and
            // demotes back into the small tier).
            let back = &prod / &b;
            assert_eq!(&back, &a);
            assert!(back.is_small(), "quotient did not demote");
        });
    }
}

/// The fast path must never be *required*: with the toggle off every
/// operation stays in the BigInt tier and counts as a big op.
#[test]
fn disabled_fast_path_counts_only_big_ops() {
    with_mode(false, || {
        let before = op_counters();
        let a = Rational::from_pair(3, 7);
        let b = Rational::from_pair(-2, 9);
        let _ = &(&a + &b) * &(&a - &b);
        let after = op_counters();
        assert_eq!(after.small_ops, before.small_ops);
        assert!(after.big_ops > before.big_ops);
    });
}

/// And with the toggle on, all-small inputs stay entirely on the fast
/// path with zero promotions.
#[test]
fn small_workload_never_touches_bigint_tier() {
    with_mode(true, || {
        let before = op_counters();
        let a = Rational::from_pair(3, 7);
        let b = Rational::from_pair(-2, 9);
        let c = &(&a + &b) * &(&a - &b);
        assert!(c.is_small());
        let after = op_counters();
        assert_eq!(after.big_ops, before.big_ops);
        assert_eq!(after.promotions, before.promotions);
        assert!(after.small_ops >= before.small_ops + 3);
    });
}
