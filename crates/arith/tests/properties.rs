//! Property-based tests for the exact-arithmetic substrate.
//!
//! `BigInt` is checked against `i128` as a reference model on values that
//! fit, and against algebraic laws on values that don't. `Rational` is
//! checked against field axioms, and `EpsRational` against ordered-module
//! laws.

use lyric_arith::{BigInt, EpsRational, Rational};
use proptest::prelude::*;
use std::str::FromStr;

fn bigint_strategy() -> impl Strategy<Value = BigInt> {
    // Mix small values (edge cases near zero / limb boundaries) with
    // multi-limb values built from decimal strings.
    prop_oneof![
        any::<i64>().prop_map(BigInt::from),
        (any::<i128>()).prop_map(BigInt::from),
        proptest::collection::vec(any::<u64>(), 1..5).prop_map(|limbs| {
            let mut acc = BigInt::zero();
            for l in limbs {
                acc = acc.shl(64) + BigInt::from(l);
            }
            acc
        }),
    ]
}

fn rational_strategy() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1..10_000i64).prop_map(|(n, d)| Rational::from_pair(n, d))
}

proptest! {
    #[test]
    fn bigint_matches_i128_model(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!(&ba + &bb, BigInt::from(a as i128 + b as i128));
        prop_assert_eq!(&ba - &bb, BigInt::from(a as i128 - b as i128));
        prop_assert_eq!(&ba * &bb, BigInt::from(a as i128 * b as i128));
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }

    #[test]
    fn bigint_div_rem_reconstructs(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Truncated division: remainder sign matches dividend (or zero).
        prop_assert!(r.is_zero() || r.signum() == a.signum());
    }

    #[test]
    fn bigint_gcd_divides_both(a in bigint_strategy(), b in bigint_strategy()) {
        let g = a.gcd(&b);
        if g.is_zero() {
            prop_assert!(a.is_zero() && b.is_zero());
        } else {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
            prop_assert!(g.is_positive());
        }
    }

    #[test]
    fn bigint_ring_axioms(a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, BigInt::zero());
    }

    #[test]
    fn bigint_display_parse_roundtrip(a in bigint_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(BigInt::from_str(&s).unwrap(), a);
    }

    #[test]
    fn rational_field_axioms(a in rational_strategy(), b in rational_strategy(), c in rational_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
            prop_assert_eq!(&b * &b.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_order_compatible_with_ops(a in rational_strategy(), b in rational_strategy(), c in rational_strategy()) {
        if a < b {
            prop_assert!(&a + &c < &b + &c);
            if c.is_positive() {
                prop_assert!(&a * &c < &b * &c);
            } else if c.is_negative() {
                prop_assert!(&a * &c > &b * &c);
            }
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(a in rational_strategy()) {
        let fl = Rational::from(a.floor());
        let ce = Rational::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rational::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }

    #[test]
    fn rational_display_parse_roundtrip(a in rational_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
    }

    #[test]
    fn eps_order_is_lexicographic(ar in rational_strategy(), ai in rational_strategy(),
                                  br in rational_strategy(), bi in rational_strategy()) {
        let a = EpsRational::new(ar.clone(), ai.clone());
        let b = EpsRational::new(br.clone(), bi.clone());
        let expected = ar.cmp(&br).then(ai.cmp(&bi));
        prop_assert_eq!(a.cmp(&b), expected);
    }

    #[test]
    fn eps_module_laws(ar in rational_strategy(), ai in rational_strategy(), s in rational_strategy()) {
        let a = EpsRational::new(ar, ai);
        prop_assert_eq!(&a + &(-&a), EpsRational::zero());
        prop_assert_eq!(a.scale(&Rational::one()), a.clone());
        let doubled = &a + &a;
        prop_assert_eq!(a.scale(&Rational::from_int(2)), doubled);
        prop_assert_eq!(a.scale(&s).evaluate_at(&Rational::one()),
                        &a.evaluate_at(&Rational::one()) * &s);
    }

    #[test]
    fn eps_evaluate_small_enough_preserves_sign(ar in rational_strategy(), ai in rational_strategy()) {
        let a = EpsRational::new(ar, ai);
        // For a strictly positive eps-value there is a concrete small ε
        // making the evaluation positive: the defining property of the
        // infinitesimal encoding.
        if a.is_positive() {
            let eps = if a.real.is_positive() && a.inf.is_negative() {
                // need ε < real/|inf|
                (&a.real / &a.inf.abs()) * Rational::from_pair(1, 2)
            } else {
                Rational::one()
            };
            prop_assert!(a.evaluate_at(&eps).is_positive());
        }
    }
}
