//! A minimal work-stealing index queue for parallel regions.
//!
//! [`StealQueue`] partitions `0..total` into one contiguous range per
//! worker. A worker pops indices off the front of its own range; when it
//! runs dry it *steals* the upper half of the fullest other range. Ranges
//! are tiny (two `usize`s) behind per-worker mutexes, so the queue is
//! std-only with no atomic-deque machinery — contention is bounded by the
//! number of steals, which is `O(workers · log items)` for the halving
//! policy, not by the number of items.
//!
//! The queue hands out *indices*, never item references, so result order
//! is reconstructed deterministically by the caller regardless of which
//! worker evaluated which index.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

struct Range {
    start: usize,
    end: usize,
}

/// Lock a mutex, surviving poisoning (a worker panicking with a budget
/// unwind must not wedge its siblings' steals).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) struct StealQueue {
    ranges: Vec<Mutex<Range>>,
    aborted: AtomicBool,
}

impl StealQueue {
    /// Partition `0..total` evenly across `workers` ranges.
    pub(crate) fn new(total: usize, workers: usize) -> StealQueue {
        let workers = workers.max(1);
        let chunk = total.div_ceil(workers);
        let ranges = (0..workers)
            .map(|w| {
                Mutex::new(Range {
                    start: (w * chunk).min(total),
                    end: ((w + 1) * chunk).min(total),
                })
            })
            .collect();
        StealQueue {
            ranges,
            aborted: AtomicBool::new(false),
        }
    }

    /// Stop handing out indices (a sibling worker panicked); in-flight
    /// items finish, queued ones are abandoned.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
    }

    /// The next index for `worker`, stealing when its own range is empty.
    /// `None` when the region is drained or aborted.
    pub(crate) fn next(&self, worker: usize) -> Option<usize> {
        loop {
            if self.aborted.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(i) = self.pop_local(worker) {
                return Some(i);
            }
            if !self.steal(worker) {
                return None;
            }
        }
    }

    fn pop_local(&self, worker: usize) -> Option<usize> {
        let mut r = lock(&self.ranges[worker]);
        (r.start < r.end).then(|| {
            let i = r.start;
            r.start += 1;
            i
        })
    }

    /// Move the upper half of the fullest victim's range into `worker`'s
    /// (which is empty — only a dry worker steals, and nobody else ever
    /// writes another worker's range). Locks are never nested, so steals
    /// cannot deadlock. Returns false when every other range is empty.
    fn steal(&self, worker: usize) -> bool {
        loop {
            let victim = (0..self.ranges.len())
                .filter(|&v| v != worker)
                .map(|v| {
                    let r = lock(&self.ranges[v]);
                    (r.end - r.start, v)
                })
                .max();
            let Some((remaining, victim)) = victim else {
                return false;
            };
            if remaining == 0 {
                return false;
            }
            let stolen = {
                let mut r = lock(&self.ranges[victim]);
                let rem = r.end - r.start;
                if rem == 0 {
                    // The victim drained between the scan and the lock;
                    // rescan (total work only shrinks, so this terminates).
                    continue;
                }
                let take = rem.div_ceil(2);
                let mid = r.end - take;
                let span = Range {
                    start: mid,
                    end: r.end,
                };
                r.end = mid;
                span
            };
            let mut own = lock(&self.ranges[worker]);
            own.start = stolen.start;
            own.end = stolen.end;
            drop(own);
            crate::metrics::pool_steal();
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn every_index_is_handed_out_exactly_once() {
        const TOTAL: usize = 1_000;
        const WORKERS: usize = 4;
        let q = StealQueue::new(TOTAL, WORKERS);
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(i) = q.next(w) {
                        mine.push(i);
                    }
                    seen.lock().unwrap().extend(mine);
                });
            }
        });
        let got = seen.into_inner().unwrap();
        assert_eq!(got.len(), TOTAL, "no index dropped or duplicated");
        let distinct: BTreeSet<usize> = got.into_iter().collect();
        assert_eq!(distinct.len(), TOTAL);
        assert_eq!(distinct.last(), Some(&(TOTAL - 1)));
    }

    #[test]
    fn uneven_partitions_cover_everything() {
        // total not divisible by workers, and fewer items than workers.
        for (total, workers) in [(7, 3), (2, 8), (0, 4), (1, 1)] {
            let q = StealQueue::new(total, workers);
            let mut got = BTreeSet::new();
            for w in 0..workers {
                while let Some(i) = q.next(w) {
                    assert!(got.insert(i), "duplicate index {i}");
                }
            }
            assert_eq!(got.len(), total);
        }
    }

    #[test]
    fn abort_stops_the_handout() {
        let q = StealQueue::new(100, 2);
        assert!(q.next(0).is_some());
        q.abort();
        assert_eq!(q.next(0), None);
        assert_eq!(q.next(1), None);
    }

    #[test]
    fn dry_worker_steals_from_the_fullest_victim() {
        let q = StealQueue::new(100, 4);
        // Drain worker 3's own range (indices 75..100).
        let mut own = Vec::new();
        for _ in 0..25 {
            own.push(q.next(3).unwrap());
        }
        assert_eq!(own, (75..100).collect::<Vec<_>>());
        // The next call steals — from worker 0's untouched range, upper half.
        let stolen = q.next(3).unwrap();
        assert!((0..75).contains(&stolen));
    }
}
