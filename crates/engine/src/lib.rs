//! Evaluation budgets and engine statistics for the LyriC constraint
//! pipeline.
//!
//! The paper's central design tension is that every LyriC operation must
//! stay tractable: it refuses eager quantifier elimination precisely
//! because Fourier–Motzkin and DNF negation can explode exponentially.
//! This crate is the engine's defense and its instrumentation: a
//! per-query [`EngineBudget`] (pivots, FM atoms, DNF disjuncts, deadline)
//! and an [`EngineStats`] counter set, carried in a thread-local
//! context so the deep call graph (simplex pivot loop, FM product
//! loop, DNF products) does not need threading a handle through every
//! signature.
//!
//! # Usage
//!
//! Cost sites call [`note`] (or [`note_many`]) with a [`Resource`]; the
//! active context counts the work and, when a budget limit is crossed,
//! unwinds with a [`BudgetExceeded`] payload. [`run_with`] installs a
//! context, catches that unwind at the boundary, and returns
//! `Err(BudgetExceeded)` instead — ordinary panics propagate untouched.
//! With no active context (`note` outside `run_with`) all accounting is a
//! no-op, so library code is usable standalone at zero cost beyond one
//! thread-local read.
//!
//! The unwind-based abort uses [`std::panic::panic_any`] with a private
//! payload type; callers never observe it because `run_with` downcasts at
//! the boundary. Cost sites therefore keep their existing infallible
//! signatures — exactly the "degrade gracefully instead of hanging"
//! contract from the roadmap.

//!
//! # Tracing
//!
//! [`run_traced`] installs the same context with a [`trace::Collector`]
//! attached: cost sites additionally open hierarchical spans via [`span`]
//! and attach structured events via [`trace_event`], and the collector
//! seals the per-query span tree ([`trace::Trace`]) at the boundary. With
//! a plain [`run_with`] context (or none), every tracing hook is a no-op
//! that allocates nothing and never invokes its label/event closures —
//! tracing is strictly opt-in per query.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod metrics;
mod parallel;
mod pool;

pub use parallel::{parallel_map, MIN_PARALLEL_ITEMS};

/// Default minimum `|left|·|right|` pair count before a DNF product is
/// evaluated row-parallel (see `lyric-constraint`); tunable per query
/// via [`ExecOptions::with_dnf_min_pairs`] or the `LYRIC_DNF_MIN_PAIRS`
/// environment variable.
pub const DNF_PARALLEL_MIN_PAIRS: usize = 64;

/// The trace data model and sinks (re-exported so dependents need no
/// direct `lyric-trace` dependency).
pub use lyric_trace as trace;
pub use lyric_trace::{EventKind, SpanKind};

/// The flight recorder and in-flight registry (re-exported so dependents
/// need no direct `lyric-flight` dependency). The engine mirrors its
/// budgeted counters into a registered query's [`flight::Progress`] when
/// one is attached via [`run_with_opts_flight`] /
/// [`run_traced_opts_flight`].
pub use lyric_flight as flight;

/// The budgetable resources of the constraint pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Simplex pivot steps (phase 1 + phase 2).
    Pivots,
    /// Atoms produced by Fourier–Motzkin elimination (the |L|·|U| product).
    FmAtoms,
    /// Disjuncts produced by DNF products (`and`) and negation.
    Disjuncts,
    /// Wall-clock evaluation time.
    Time,
}

impl Resource {
    /// Human-readable resource name, as used in budget error messages.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Pivots => "simplex pivots",
            Resource::FmAtoms => "fourier-motzkin atoms",
            Resource::Disjuncts => "dnf disjuncts",
            Resource::Time => "wall-clock time",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Raised (as an `Err` from [`run_with`]) when a budget limit is crossed.
/// `limit`/`consumed` are in the resource's native unit — counts for the
/// counter resources, milliseconds for [`Resource::Time`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BudgetExceeded {
    /// The resource whose limit was crossed.
    pub resource: Resource,
    /// The configured limit for that resource.
    pub limit: u64,
    /// How much had been consumed when the evaluation was aborted.
    pub consumed: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evaluation budget exceeded: {} (consumed {} of limit {})",
            self.resource, self.consumed, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Per-query resource limits. `None` means unlimited. The default budget
/// is fully unlimited so that installing a context for *statistics* never
/// changes results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineBudget {
    /// Cap on simplex pivot steps across all LP runs of the query.
    pub max_pivots: Option<u64>,
    /// Cap on atoms produced by Fourier–Motzkin elimination.
    pub max_fm_atoms: Option<u64>,
    /// Cap on disjuncts produced by DNF products and negation.
    pub max_disjuncts: Option<u64>,
    /// Wall-clock deadline for the whole evaluation.
    pub deadline: Option<Duration>,
}

impl EngineBudget {
    /// Unlimited on every axis.
    pub fn unlimited() -> Self {
        EngineBudget::default()
    }

    /// A conservative interactive envelope: generous enough for every
    /// paper query, small enough to stop adversarial blowups in well
    /// under a second of wall-clock on current hardware.
    pub fn interactive() -> Self {
        EngineBudget {
            max_pivots: Some(200_000),
            max_fm_atoms: Some(50_000),
            max_disjuncts: Some(20_000),
            deadline: Some(Duration::from_secs(5)),
        }
    }

    /// Replace the pivot cap.
    pub fn with_max_pivots(mut self, n: u64) -> Self {
        self.max_pivots = Some(n);
        self
    }

    /// Replace the Fourier–Motzkin atom cap.
    pub fn with_max_fm_atoms(mut self, n: u64) -> Self {
        self.max_fm_atoms = Some(n);
        self
    }

    /// Replace the DNF disjunct cap.
    pub fn with_max_disjuncts(mut self, n: u64) -> Self {
        self.max_disjuncts = Some(n);
        self
    }

    /// Replace the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    fn limit_for(&self, r: Resource) -> Option<u64> {
        match r {
            Resource::Pivots => self.max_pivots,
            Resource::FmAtoms => self.max_fm_atoms,
            Resource::Disjuncts => self.max_disjuncts,
            Resource::Time => None, // handled via the deadline clock
        }
    }
}

/// Monotonic work counters for one engine context (defined in
/// [`lyric_trace::stats`] so trace spans can carry typed deltas; see that
/// module for the counter list). [`snapshot`] reads them out mid-run.
pub use lyric_trace::EngineStats;

/// How often the deadline clock is consulted, in [`note`] calls. Reading
/// `Instant::now()` on every counted atom would dominate small solves.
///
/// The trade-off is *overshoot*: after the configured
/// [`EngineBudget::deadline`] passes, evaluation keeps running until the
/// next clock consultation, i.e. for at most `DEADLINE_STRIDE − 1` further
/// counted notes (plus whatever uncounted work sits between them). A
/// `Resource::Time` abort is therefore guaranteed within one stride of the
/// first note after the deadline — the engine tests pin exactly that.
pub const DEADLINE_STRIDE: u64 = 64;

struct ActiveContext {
    budget: EngineBudget,
    stats: EngineStats,
    started: Instant,
    notes_since_clock: u64,
    cache_enabled: bool,
    /// Interval-box pruning of LP calls enabled for this context?
    boxes: bool,
    /// Store-index probing of FROM extents enabled for this context?
    index: bool,
    /// Span/event collector; `Some` only under [`run_traced`].
    tracer: Option<trace::Collector>,
    /// How many deadline thresholds (50%, 90%) have been announced.
    time_thresholds_emitted: usize,
    /// This context's cache generation (copied from [`GENERATION`] at
    /// install time; worker contexts copy their parent's so all workers of
    /// one query share memo entries).
    generation: u64,
    /// Thread budget for parallel regions opened under this context; 1
    /// means strictly serial evaluation.
    threads: usize,
    /// Minimum item count before a [`parallel_map`] region forks.
    min_parallel: usize,
    /// Minimum pair count before DNF products go parallel.
    dnf_min_pairs: usize,
    /// Cross-worker budget state of the enclosing parallel region; `Some`
    /// only in worker contexts. Budgeted counters are mirrored into these
    /// atomics so a limit crossed by the *sum* of all workers aborts
    /// promptly, not just one worker's local share.
    shared: Option<Arc<parallel::SharedRegion>>,
    /// The thread's cumulative arithmetic-path counters at the last
    /// refresh; [`refresh_arith`] drains the delta into `stats`.
    arith_base: lyric_arith::OpCounters,
    /// Live-progress cell of the in-flight registry slot this query
    /// registered, if any. Budgeted counters are mirrored in [`note_many`]
    /// and the non-budgeted trio (sat checks, box prunes, index probes)
    /// is flushed as deltas in [`tally`] — one relaxed `fetch_add` each,
    /// the same cost class as the shared-region mirror.
    flight: Option<Arc<lyric_flight::Progress>>,
    /// The stats values (sat_checks, box_prunes, index_probes) already
    /// flushed into `flight`; [`flush_flight`] sends only the delta since,
    /// and the parallel merge bumps this past absorbed worker sums the
    /// workers already mirrored themselves.
    flight_base: [u64; 3],
}

/// Flush the non-budgeted progress counters (sat checks, box prunes,
/// index probes) into the context's flight cell as deltas since the last
/// flush. No-op without an attached flight cell.
fn flush_flight(active: &mut ActiveContext) {
    let Some(fl) = &active.flight else { return };
    let now = [
        active.stats.sat_checks,
        active.stats.box_prunes,
        active.stats.index_probes,
    ];
    let cells = [&fl.sat_checks, &fl.box_prunes, &fl.index_probes];
    for ((cell, now), base) in cells.iter().zip(now).zip(&mut active.flight_base) {
        if now > *base {
            cell.fetch_add(now - *base, Ordering::Relaxed);
            *base = now;
        }
    }
}

/// Fold the thread's cumulative small/big/promotion arithmetic counters
/// into the active context's stats. Incremental — it adds only the delta
/// since the previous refresh — so worker contributions merged via
/// `EngineStats::absorb` are never clobbered. Called at span entry/exit
/// (so trace self-stats attribute arithmetic to the span that did it), on
/// [`snapshot`], and at context teardown.
fn refresh_arith(active: &mut ActiveContext) {
    let now = lyric_arith::op_counters();
    active.stats.arith_small_ops += now.small_ops - active.arith_base.small_ops;
    active.stats.arith_big_ops += now.big_ops - active.arith_base.big_ops;
    active.stats.arith_promotions += now.promotions - active.arith_base.promotions;
    active.arith_base = now;
}

impl ActiveContext {
    /// True for a parallel-region worker context (nested regions fall back
    /// to serial evaluation inside workers).
    fn is_worker(&self) -> bool {
        self.shared.is_some()
    }
}

thread_local! {
    static CONTEXT: RefCell<Option<ActiveContext>> = const { RefCell::new(None) };
}

/// Bumped every time a context is installed; memo caches in dependent
/// crates key their validity on this so entries never leak across
/// queries with different budgets or databases. Process-global (not
/// thread-local) so concurrent contexts on different threads get distinct
/// generations while the workers of one parallel region share one.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Private unwind payload; `run_with` downcasts it at the boundary.
struct BudgetUnwind(BudgetExceeded);

/// The default panic hook prints a backtrace banner for every panic,
/// including our internal budget unwind. Install (once, process-wide) a
/// hook that stays silent for [`BudgetUnwind`] payloads and delegates to
/// the previous hook otherwise — after handing genuine panics to the
/// flight recorder, which writes a black-box dump when the panicking
/// thread has an in-flight query and a dump directory is configured.
fn silence_budget_unwinds() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<BudgetUnwind>().is_none() {
                let payload = info.payload();
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                lyric_flight::panic_dump(&message);
                previous(info);
            }
        }));
    });
}

/// True when an engine context is installed on this thread.
pub fn is_active() -> bool {
    CONTEXT.with(|c| c.borrow().is_some())
}

/// True when the sat/entailment memo cache should be consulted. False
/// outside any context: standalone library use stays cache-free (and
/// allocation-free).
pub fn cache_enabled() -> bool {
    CONTEXT.with(|c| c.borrow().as_ref().is_some_and(|a| a.cache_enabled))
}

/// True when the interval-box disjointness test should run in front of
/// sat/entailment LP calls. False outside any context: standalone library
/// use stays exact-LP only, so plain unit tests of the constraint layer
/// never depend on the abstract domain.
pub fn boxes_enabled() -> bool {
    CONTEXT.with(|c| c.borrow().as_ref().is_some_and(|a| a.boxes))
}

/// True when FROM extents should be pre-filtered through the store index
/// before binding. False outside any context: standalone library use
/// never builds an index behind the caller's back.
pub fn index_enabled() -> bool {
    CONTEXT.with(|c| c.borrow().as_ref().is_some_and(|a| a.index))
}

/// The current cache generation: the active context's generation, or the
/// process-global counter outside any context. Memo caches must treat
/// entries stored under a different generation as stale.
pub fn generation() -> u64 {
    CONTEXT
        .with(|c| c.borrow().as_ref().map(|a| a.generation))
        .unwrap_or_else(|| GENERATION.load(Ordering::Relaxed))
}

/// The budget-consumption thresholds announced as trace events, percent.
const BUDGET_THRESHOLDS: [u64; 2] = [50, 90];

/// Count `n` units of `r`, aborting the enclosing [`run_with`] when a
/// budget limit is crossed. A no-op without an active context.
pub fn note_many(r: Resource, n: u64) {
    let exceeded = CONTEXT.with(|c| {
        let mut borrow = c.borrow_mut();
        let active = borrow.as_mut()?;
        // Local stats always take the delta (they feed span deltas and the
        // merged per-worker sums); inside a parallel region the budgeted
        // counters are additionally mirrored into the region's shared
        // atomics, and the limit is checked against the *global* total so
        // an abort fires promptly no matter how work is split.
        let local = match r {
            Resource::Pivots => {
                active.stats.pivots += n;
                active.stats.pivots
            }
            Resource::FmAtoms => {
                active.stats.fm_atoms += n;
                active.stats.fm_atoms
            }
            Resource::Disjuncts => {
                active.stats.disjuncts_produced += n;
                active.stats.disjuncts_produced
            }
            Resource::Time => 0,
        };
        if let Some(fl) = &active.flight {
            match r {
                Resource::Pivots => fl.add_budgeted(n, 0, 0),
                Resource::FmAtoms => fl.add_budgeted(0, n, 0),
                Resource::Disjuncts => fl.add_budgeted(0, 0, n),
                Resource::Time => {}
            }
        }
        let (counter, before) = match (&active.shared, r) {
            (_, Resource::Time) => (0, 0),
            (Some(shared), _) => {
                let cell = match r {
                    Resource::Pivots => &shared.pivots,
                    Resource::FmAtoms => &shared.fm_atoms,
                    Resource::Disjuncts => &shared.disjuncts,
                    Resource::Time => unreachable!("handled above"),
                };
                let prev = cell.fetch_add(n, Ordering::Relaxed);
                (prev + n, prev)
            }
            (None, _) => (local, local - n),
        };
        if let Some(limit) = active.budget.limit_for(r) {
            // Counters are monotonic, so each percent line is crossed by
            // exactly one note (under a shared region, by exactly one
            // worker — fetch_add hands out disjoint intervals); announce
            // crossings to the tracer and the process-lifetime registry.
            for pct in BUDGET_THRESHOLDS {
                let before = before as u128 * 100;
                let line = limit as u128 * pct as u128;
                if before <= line && (counter as u128 * 100) > line {
                    metrics::budget_threshold(r, pct);
                    if let Some(tracer) = active.tracer.as_mut() {
                        tracer.event(EventKind::BudgetThreshold {
                            resource: r.name(),
                            percent: pct as u8,
                            consumed: counter,
                            limit,
                        });
                    }
                }
            }
            if counter > limit {
                return Some(BudgetExceeded {
                    resource: r,
                    limit,
                    consumed: counter,
                });
            }
        }
        // Deadline check, amortized over DEADLINE_STRIDE notes.
        active.notes_since_clock += 1;
        if active.notes_since_clock >= DEADLINE_STRIDE {
            active.notes_since_clock = 0;
            if let Some(deadline) = active.budget.deadline {
                let elapsed = active.started.elapsed();
                if !deadline.is_zero() {
                    let pct_elapsed =
                        (elapsed.as_nanos().saturating_mul(100) / deadline.as_nanos()) as u64;
                    while let Some(&pct) = BUDGET_THRESHOLDS.get(active.time_thresholds_emitted) {
                        if pct_elapsed <= pct {
                            break;
                        }
                        active.time_thresholds_emitted += 1;
                        metrics::budget_threshold(Resource::Time, pct);
                        if let Some(tracer) = active.tracer.as_mut() {
                            tracer.event(EventKind::BudgetThreshold {
                                resource: Resource::Time.name(),
                                percent: pct as u8,
                                consumed: elapsed.as_millis() as u64,
                                limit: deadline.as_millis() as u64,
                            });
                        }
                    }
                }
                if elapsed > deadline {
                    return Some(BudgetExceeded {
                        resource: Resource::Time,
                        limit: deadline.as_millis() as u64,
                        consumed: elapsed.as_millis() as u64,
                    });
                }
            }
        }
        None
    });
    if let Some(b) = exceeded {
        panic_any(BudgetUnwind(b));
    }
}

/// Count one unit of `r`. See [`note_many`].
pub fn note(r: Resource) {
    note_many(r, 1);
}

/// Record an uncapped statistic (no budget applies).
pub fn tally(f: impl FnOnce(&mut EngineStats)) {
    CONTEXT.with(|c| {
        if let Some(active) = c.borrow_mut().as_mut() {
            f(&mut active.stats);
            if active.flight.is_some() {
                flush_flight(active);
            }
        }
    });
}

/// Record a memo-cache probe outcome (and, when tracing, attach a
/// cache-hit/miss event to the enclosing span).
pub fn note_cache(hit: bool) {
    CONTEXT.with(|c| {
        if let Some(active) = c.borrow_mut().as_mut() {
            if hit {
                active.stats.cache_hits += 1;
            } else {
                active.stats.cache_misses += 1;
            }
            if let Some(t) = active.tracer.as_mut() {
                t.event(if hit {
                    EventKind::CacheHit
                } else {
                    EventKind::CacheMiss
                });
            }
        }
    });
}

/// Read the current context's counters, or `None` outside a context.
pub fn snapshot() -> Option<EngineStats> {
    CONTEXT.with(|c| {
        c.borrow_mut().as_mut().map(|a| {
            refresh_arith(a);
            a.stats
        })
    })
}

// ---------------------------------------------------------------- tracing

/// True when the active context is collecting a trace. Instrumentation
/// sites may use this to skip building expensive labels, though [`span`]
/// and [`trace_event`] already defer closure evaluation behind the check.
pub fn tracing() -> bool {
    CONTEXT.with(|c| c.borrow().as_ref().is_some_and(|a| a.tracer.is_some()))
}

/// Closes its span when dropped. Returned by [`span`]; inert (and
/// allocation-free) when tracing is off.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CONTEXT.with(|c| {
            if let Some(active) = c.borrow_mut().as_mut() {
                refresh_arith(active);
                let stats = active.stats;
                if let Some(t) = active.tracer.as_mut() {
                    t.exit(stats);
                }
            }
        });
    }
}

/// Open a trace span for the current scope: the span covers the lifetime
/// of the returned guard (drop order closes it even when a budget abort
/// unwinds through). `label` is only invoked — and nothing is allocated —
/// when the active context is tracing; `source` is the byte range of the
/// source fragment the span evaluates, when known.
pub fn span(
    kind: SpanKind,
    label: impl FnOnce() -> String,
    source: Option<(usize, usize)>,
) -> SpanGuard {
    span_node(kind, None, label, source)
}

/// [`span`] with an explain-plan node id stamped on the recorded span.
/// `execute_explained` threads stable node ids through the evaluator's
/// operator sites so the trace→plan attribution fold can charge each
/// span's exclusive time and counters to its plan operator; plain
/// execution passes `None` everywhere (via [`span`]) and pays nothing.
pub fn span_node(
    kind: SpanKind,
    node: Option<u32>,
    label: impl FnOnce() -> String,
    source: Option<(usize, usize)>,
) -> SpanGuard {
    CONTEXT.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(active) = borrow.as_mut() else {
            return SpanGuard { active: false };
        };
        if active.tracer.is_none() {
            return SpanGuard { active: false };
        }
        refresh_arith(active);
        let stats = active.stats;
        let tracer = active.tracer.as_mut().expect("checked above");
        tracer.enter_node(kind, label(), source, stats, node);
        SpanGuard { active: true }
    })
}

/// Attach a structured event to the innermost open span, and tee a
/// sampled copy into the flight recorder's event ring when the query is
/// registered in-flight and the tee is on. `event` is only invoked when
/// at least one consumer wants it — with tracing off and the tee off (or
/// the query unregistered) this remains one thread-local read plus at
/// most one relaxed atomic load, allocating nothing.
pub fn trace_event(event: impl FnOnce() -> EventKind) {
    CONTEXT.with(|c| {
        if let Some(active) = c.borrow_mut().as_mut() {
            let tee = active.flight.is_some() && lyric_flight::event_tick();
            if active.tracer.is_none() && !tee {
                return;
            }
            let kind = event();
            if tee {
                lyric_flight::record_event(active.generation, &kind);
            }
            if let Some(t) = active.tracer.as_mut() {
                t.event(kind);
            }
        }
    });
}

/// Per-execution options: the resource budget, whether the sat/entailment
/// memo cache is consulted, and how many threads parallel regions may use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOptions {
    /// Resource limits for the evaluation.
    pub budget: EngineBudget,
    /// Consult the sat/entailment memo cache?
    pub cache: bool,
    /// Thread budget for parallel regions ([`parallel_map`]); 1 means
    /// strictly serial. Defaults to [`default_threads`].
    pub threads: usize,
    /// Minimum item count before a parallel region forks. Defaults to
    /// [`default_min_parallel`] (`LYRIC_MIN_PARALLEL`, else
    /// [`MIN_PARALLEL_ITEMS`]).
    pub min_parallel: usize,
    /// Minimum `|left|·|right|` pair count before a DNF product is
    /// evaluated in parallel. Defaults to [`default_dnf_min_pairs`]
    /// (`LYRIC_DNF_MIN_PAIRS`, else [`DNF_PARALLEL_MIN_PAIRS`]).
    pub dnf_min_pairs: usize,
    /// Use the inline small-coefficient arithmetic fast path? Defaults to
    /// [`lyric_arith::default_fast_path`] (`LYRIC_ARITH_FAST`, off only
    /// when set to `0`). `false` forces every rational operation onto the
    /// `BigInt` path — the measurement baseline and differential oracle.
    pub arith_fast: bool,
    /// Run the interval-box disjointness test in front of sat/entailment
    /// LP calls? Defaults to [`default_boxes`] (`LYRIC_BOXES`, off only
    /// when set to `0`). `false` sends every check straight to simplex —
    /// the differential baseline for the box-pruning soundness layer.
    pub boxes: bool,
    /// Pre-filter FROM extents through the store index (scalar postings
    /// and bounding-box pages) before binding? Defaults to
    /// [`default_index`] (`LYRIC_INDEX`, off only when set to `0`).
    /// `false` scans every extent in full — the differential baseline for
    /// the scan-vs-index soundness layer.
    pub index: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            budget: EngineBudget::unlimited(),
            cache: true,
            threads: default_threads(),
            min_parallel: default_min_parallel(),
            dnf_min_pairs: default_dnf_min_pairs(),
            arith_fast: lyric_arith::default_fast_path(),
            boxes: default_boxes(),
            index: default_index(),
        }
    }
}

impl ExecOptions {
    /// Replace the budget.
    pub fn with_budget(mut self, budget: EngineBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enable or disable the memo cache.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Replace the thread budget (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replace the minimum item count for forking a parallel region
    /// (clamped to at least 1).
    pub fn with_min_parallel(mut self, items: usize) -> Self {
        self.min_parallel = items.max(1);
        self
    }

    /// Replace the minimum pair count for parallel DNF products
    /// (clamped to at least 1).
    pub fn with_dnf_min_pairs(mut self, pairs: usize) -> Self {
        self.dnf_min_pairs = pairs.max(1);
        self
    }

    /// Enable or disable the small-coefficient arithmetic fast path.
    pub fn with_arith_fast(mut self, fast: bool) -> Self {
        self.arith_fast = fast;
        self
    }

    /// Enable or disable interval-box pruning of LP calls.
    pub fn with_boxes(mut self, boxes: bool) -> Self {
        self.boxes = boxes;
        self
    }

    /// Enable or disable store-index pre-filtering of FROM extents.
    pub fn with_index(mut self, index: bool) -> Self {
        self.index = index;
        self
    }
}

/// The default for interval-box pruning: on unless the `LYRIC_BOXES`
/// environment variable is set to `0` (mirroring `LYRIC_ARITH_FAST`).
/// The box test is sound — it only ever skips LPs whose answer is a
/// foregone conclusion — so it defaults on.
pub fn default_boxes() -> bool {
    std::env::var("LYRIC_BOXES")
        .map(|v| v.trim() != "0")
        .unwrap_or(true)
}

/// The default for store-index probing of FROM extents: on unless the
/// `LYRIC_INDEX` environment variable is set to `0` (mirroring
/// `LYRIC_BOXES`). Probes are sound — every probe returns a superset of
/// the oids a full scan could keep or error on — so the index defaults
/// on.
pub fn default_index() -> bool {
    std::env::var("LYRIC_INDEX")
        .map(|v| v.trim() != "0")
        .unwrap_or(true)
}

/// The default thread budget: the `LYRIC_THREADS` environment variable
/// when set to a positive integer, else
/// [`std::thread::available_parallelism`] (1 when unknown).
pub fn default_threads() -> usize {
    std::env::var("LYRIC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn env_threshold(var: &str, fallback: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(fallback)
}

/// The default minimum item count for forking a parallel region: the
/// `LYRIC_MIN_PARALLEL` environment variable when set to a positive
/// integer, else [`MIN_PARALLEL_ITEMS`].
pub fn default_min_parallel() -> usize {
    env_threshold("LYRIC_MIN_PARALLEL", MIN_PARALLEL_ITEMS)
}

/// The default minimum pair count for parallel DNF products: the
/// `LYRIC_DNF_MIN_PAIRS` environment variable when set to a positive
/// integer, else [`DNF_PARALLEL_MIN_PAIRS`].
pub fn default_dnf_min_pairs() -> usize {
    env_threshold("LYRIC_DNF_MIN_PAIRS", DNF_PARALLEL_MIN_PAIRS)
}

/// The effective minimum pair count for parallel DNF products: the
/// active context's configured value, or [`default_dnf_min_pairs`]
/// outside any context. `lyric-constraint` consults this at each
/// product site.
pub fn dnf_parallel_min_pairs() -> usize {
    CONTEXT
        .with(|c| c.borrow().as_ref().map(|a| a.dnf_min_pairs))
        .unwrap_or_else(default_dnf_min_pairs)
}

/// Install `budget` for the duration of `f`, returning `f`'s value and
/// the accumulated [`EngineStats`], or `Err(BudgetExceeded)` if a limit
/// was crossed. Contexts do not nest: a `run_with` inside an active
/// context would silently re-scope the outer budget, so it panics —
/// callers gate on [`is_active`] instead. The thread budget is
/// [`default_threads`]; use [`run_with_opts`] to pick one explicitly.
pub fn run_with<T>(
    budget: EngineBudget,
    cache: bool,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats), BudgetExceeded> {
    run_with_opts(
        ExecOptions::default().with_budget(budget).with_cache(cache),
        f,
    )
}

/// [`run_with`] with explicit [`ExecOptions`] (budget, cache, threads).
pub fn run_with_opts<T>(
    opts: ExecOptions,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats), BudgetExceeded> {
    run_inner(opts, None, None, f).map(|(value, stats, _)| (value, stats))
}

/// [`run_with_opts`] with an in-flight registry progress cell attached:
/// budgeted counters and the sat/box/index tallies are mirrored into the
/// cell as the query runs, so `/debug/inflight` shows live movement. Pass
/// the cell from [`flight::InflightGuard::progress`]; `None` behaves
/// exactly like [`run_with_opts`].
pub fn run_with_opts_flight<T>(
    opts: ExecOptions,
    flight: Option<Arc<lyric_flight::Progress>>,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats), BudgetExceeded> {
    run_inner(opts, None, flight, f).map(|(value, stats, _)| (value, stats))
}

/// [`run_with`] with a span/event collector attached: cost sites record a
/// hierarchical [`trace::Trace`] via [`span`] and [`trace_event`], sealed
/// and returned alongside the stats. `label` names the root span (the
/// query text, typically) and `source_len` is the source's byte length.
///
/// On a budget abort the partial trace is discarded with the context —
/// the caller gets the same `Err(BudgetExceeded)` as [`run_with`].
pub fn run_traced<T>(
    budget: EngineBudget,
    cache: bool,
    label: impl Into<String>,
    source_len: usize,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats, trace::Trace), BudgetExceeded> {
    run_traced_opts(
        ExecOptions::default().with_budget(budget).with_cache(cache),
        label,
        source_len,
        f,
    )
}

/// [`run_traced`] with explicit [`ExecOptions`]. Under a thread budget
/// above 1, parallel regions record per-worker subtrees (distinct `tid`s)
/// grafted into the single logical trace tree.
pub fn run_traced_opts<T>(
    opts: ExecOptions,
    label: impl Into<String>,
    source_len: usize,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats, trace::Trace), BudgetExceeded> {
    run_traced_opts_flight(opts, None, label, source_len, f)
}

/// [`run_traced_opts`] with an in-flight registry progress cell attached
/// (see [`run_with_opts_flight`]).
pub fn run_traced_opts_flight<T>(
    opts: ExecOptions,
    flight: Option<Arc<lyric_flight::Progress>>,
    label: impl Into<String>,
    source_len: usize,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats, trace::Trace), BudgetExceeded> {
    let collector = trace::Collector::new(label, source_len);
    run_inner(opts, Some(collector), flight, f)
        .map(|(value, stats, trace)| (value, stats, trace.expect("collector was installed")))
}

fn run_inner<T>(
    opts: ExecOptions,
    tracer: Option<trace::Collector>,
    flight: Option<Arc<lyric_flight::Progress>>,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats, Option<trace::Trace>), BudgetExceeded> {
    silence_budget_unwinds();
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    let threads = opts.threads.max(1);
    let min_parallel = opts.min_parallel.max(1);
    let dnf_min_pairs = opts.dnf_min_pairs.max(1);
    metrics::record_options(
        threads,
        min_parallel,
        dnf_min_pairs,
        opts.arith_fast,
        opts.boxes,
        opts.index,
    );
    // Pin the thread's arithmetic mode for the run (workers copy it from
    // the region plan); restored below so nested library use after the
    // query sees the caller's mode again.
    let prev_arith_fast = lyric_arith::set_fast_path(opts.arith_fast);
    CONTEXT.with(|c| {
        let mut borrow = c.borrow_mut();
        assert!(
            borrow.is_none(),
            "engine contexts do not nest; check engine::is_active() first"
        );
        *borrow = Some(ActiveContext {
            budget: opts.budget,
            stats: EngineStats::default(),
            started: Instant::now(),
            notes_since_clock: 0,
            cache_enabled: opts.cache,
            boxes: opts.boxes,
            index: opts.index,
            tracer,
            time_thresholds_emitted: 0,
            generation,
            threads,
            min_parallel,
            dnf_min_pairs,
            shared: None,
            arith_base: lyric_arith::op_counters(),
            flight,
            flight_base: [0; 3],
        });
    });

    let outcome = catch_unwind(AssertUnwindSafe(f));
    let mut context = CONTEXT
        .with(|c| c.borrow_mut().take())
        .expect("context still installed");
    lyric_arith::set_fast_path(prev_arith_fast);
    refresh_arith(&mut context);
    flush_flight(&mut context);
    let stats = context.stats;
    let elapsed = context.started.elapsed();
    let trace = context.tracer.map(|t| t.finish(stats));

    // The one flush point into the process-lifetime registry: worker
    // deltas were already merged into `stats` on region join, so the
    // cumulative counters stay exactly Σ per-query final stats.
    match outcome {
        Ok(value) => {
            metrics::flush_query(&stats, elapsed, None);
            Ok((value, stats, trace))
        }
        Err(payload) => match payload.downcast::<BudgetUnwind>() {
            Ok(unwound) => {
                metrics::flush_query(&stats, elapsed, Some(&unwound.0));
                Err(unwound.0)
            }
            Err(other) => resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_without_context() {
        note_many(Resource::Pivots, 1_000_000);
        assert!(snapshot().is_none());
        assert!(!is_active());
        assert!(!cache_enabled());
    }

    #[test]
    fn stats_accumulate() {
        let ((), stats) = run_with(EngineBudget::unlimited(), true, || {
            note_many(Resource::Pivots, 7);
            note_many(Resource::FmAtoms, 3);
            note(Resource::Disjuncts);
            note_cache(true);
            note_cache(false);
            tally(|s| s.sat_checks += 2);
        })
        .expect("unlimited budget");
        assert_eq!(stats.pivots, 7);
        assert_eq!(stats.fm_atoms, 3);
        assert_eq!(stats.disjuncts_produced, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.sat_checks, 2);
        assert_eq!(stats.cache_hit_rate(), Some(0.5));
    }

    #[test]
    fn budget_aborts_with_payload() {
        let err = run_with(EngineBudget::unlimited().with_max_pivots(10), false, || {
            for _ in 0..100 {
                note(Resource::Pivots);
            }
        })
        .expect_err("limit of 10 must trip");
        assert_eq!(err.resource, Resource::Pivots);
        assert_eq!(err.limit, 10);
        assert_eq!(err.consumed, 11);
        // The context is cleaned up even after an abort.
        assert!(!is_active());
    }

    #[test]
    fn deadline_aborts() {
        let err = run_with(
            EngineBudget::unlimited().with_deadline(Duration::from_millis(1)),
            false,
            || loop {
                note(Resource::Pivots);
            },
        )
        .expect_err("deadline must trip");
        assert_eq!(err.resource, Resource::Time);
        assert!(err.consumed >= err.limit);
    }

    #[test]
    fn ordinary_panics_pass_through() {
        let caught = std::panic::catch_unwind(|| {
            let _ = run_with(EngineBudget::unlimited(), false, || {
                panic!("user panic");
            });
        });
        assert!(caught.is_err());
        assert!(!is_active());
    }

    #[test]
    fn generation_bumps_per_context() {
        let before = generation();
        let _ = run_with(EngineBudget::unlimited(), true, || {});
        let _ = run_with(EngineBudget::unlimited(), true, || {});
        assert_eq!(generation(), before + 2);
    }

    /// Pins the overshoot contract documented on [`DEADLINE_STRIDE`]: with
    /// an already-expired deadline, the abort lands on the first clock
    /// consultation — within one stride of the first note.
    #[test]
    fn deadline_trips_within_one_stride() {
        use std::cell::Cell;
        let noted = Cell::new(0u64);
        let err = run_with(
            EngineBudget::unlimited().with_deadline(Duration::ZERO),
            false,
            || loop {
                noted.set(noted.get() + 1);
                note(Resource::Pivots);
            },
        )
        .expect_err("expired deadline must trip");
        assert_eq!(err.resource, Resource::Time);
        assert!(
            noted.get() <= DEADLINE_STRIDE,
            "aborted only after {} notes; stride is {DEADLINE_STRIDE}",
            noted.get()
        );
    }

    #[test]
    fn traced_run_records_spans_events_and_thresholds() {
        let ((), stats, trace) = run_traced(
            EngineBudget::unlimited().with_max_pivots(1_000),
            true,
            "test query",
            10,
            || {
                let _w = span(SpanKind::Where, || "w".into(), Some((2, 8)));
                note_many(Resource::Pivots, 600); // crosses the 50% line
                note_many(Resource::Pivots, 350); // crosses the 90% line
                note_cache(true);
            },
        )
        .expect("within budget");
        assert_eq!(stats.pivots, 950);
        assert_eq!(*trace.total_stats(), stats);
        assert_eq!(trace.summed_self_stats(), stats);
        assert_eq!(trace.root.children.len(), 1);
        let w = &trace.root.children[0];
        assert_eq!(w.source, Some((2, 8)));
        let crossings: Vec<u8> = w
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::BudgetThreshold { percent, .. } => Some(percent),
                _ => None,
            })
            .collect();
        assert_eq!(crossings, vec![50, 90]);
        assert!(w
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CacheHit)));
    }

    #[test]
    fn span_guard_closes_during_budget_unwind() {
        // A budget abort unwinds through open SpanGuards; Drop must close
        // them so the sealed trace stays well-formed for run_with callers
        // (run_traced discards the trace on Err, but the collector still
        // sees balanced enter/exit).
        let err = run_traced(
            EngineBudget::unlimited().with_max_pivots(5),
            false,
            "q",
            1,
            || {
                let _g = span(SpanKind::LpSolve, || "solve".into(), None);
                note_many(Resource::Pivots, 50);
            },
        )
        .expect_err("limit of 5 must trip");
        assert_eq!(err.resource, Resource::Pivots);
        assert!(!is_active());
    }

    #[test]
    fn span_and_event_are_inert_without_tracing() {
        let ((), stats) = run_with(EngineBudget::unlimited(), false, || {
            let _g = span(
                SpanKind::Where,
                || unreachable!("label closure must not run when tracing is off"),
                None,
            );
            trace_event(|| unreachable!("event closure must not run when tracing is off"));
            assert!(!tracing());
        })
        .expect("unlimited budget");
        assert!(stats.is_zero());
        // And outside any context at all.
        let _g = span(SpanKind::Where, || unreachable!(), None);
        trace_event(|| unreachable!());
    }
}
