//! Evaluation budgets and engine statistics for the LyriC constraint
//! pipeline.
//!
//! The paper's central design tension is that every LyriC operation must
//! stay tractable: it refuses eager quantifier elimination precisely
//! because Fourier–Motzkin and DNF negation can explode exponentially.
//! This crate is the engine's defense and its instrumentation: a
//! per-query [`EngineBudget`] (pivots, FM atoms, DNF disjuncts, deadline)
//! and an [`EngineStats`] counter set, carried in a thread-local
//! [`context`] so the deep call graph (simplex pivot loop, FM product
//! loop, DNF products) does not need threading a handle through every
//! signature.
//!
//! # Usage
//!
//! Cost sites call [`note`] (or [`note_many`]) with a [`Resource`]; the
//! active context counts the work and, when a budget limit is crossed,
//! unwinds with a [`BudgetExceeded`] payload. [`run_with`] installs a
//! context, catches that unwind at the boundary, and returns
//! `Err(BudgetExceeded)` instead — ordinary panics propagate untouched.
//! With no active context (`note` outside `run_with`) all accounting is a
//! no-op, so library code is usable standalone at zero cost beyond one
//! thread-local read.
//!
//! The unwind-based abort uses [`std::panic::panic_any`] with a private
//! payload type; callers never observe it because `run_with` downcasts at
//! the boundary. Cost sites therefore keep their existing infallible
//! signatures — exactly the "degrade gracefully instead of hanging"
//! contract from the roadmap.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The budgetable resources of the constraint pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Simplex pivot steps (phase 1 + phase 2).
    Pivots,
    /// Atoms produced by Fourier–Motzkin elimination (the |L|·|U| product).
    FmAtoms,
    /// Disjuncts produced by DNF products (`and`) and negation.
    Disjuncts,
    /// Wall-clock evaluation time.
    Time,
}

impl Resource {
    /// Human-readable resource name, as used in budget error messages.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Pivots => "simplex pivots",
            Resource::FmAtoms => "fourier-motzkin atoms",
            Resource::Disjuncts => "dnf disjuncts",
            Resource::Time => "wall-clock time",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Raised (as an `Err` from [`run_with`]) when a budget limit is crossed.
/// `limit`/`consumed` are in the resource's native unit — counts for the
/// counter resources, milliseconds for [`Resource::Time`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BudgetExceeded {
    /// The resource whose limit was crossed.
    pub resource: Resource,
    /// The configured limit for that resource.
    pub limit: u64,
    /// How much had been consumed when the evaluation was aborted.
    pub consumed: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evaluation budget exceeded: {} (consumed {} of limit {})",
            self.resource, self.consumed, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Per-query resource limits. `None` means unlimited. The default budget
/// is fully unlimited so that installing a context for *statistics* never
/// changes results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineBudget {
    /// Cap on simplex pivot steps across all LP runs of the query.
    pub max_pivots: Option<u64>,
    /// Cap on atoms produced by Fourier–Motzkin elimination.
    pub max_fm_atoms: Option<u64>,
    /// Cap on disjuncts produced by DNF products and negation.
    pub max_disjuncts: Option<u64>,
    /// Wall-clock deadline for the whole evaluation.
    pub deadline: Option<Duration>,
}

impl EngineBudget {
    /// Unlimited on every axis.
    pub fn unlimited() -> Self {
        EngineBudget::default()
    }

    /// A conservative interactive envelope: generous enough for every
    /// paper query, small enough to stop adversarial blowups in well
    /// under a second of wall-clock on current hardware.
    pub fn interactive() -> Self {
        EngineBudget {
            max_pivots: Some(200_000),
            max_fm_atoms: Some(50_000),
            max_disjuncts: Some(20_000),
            deadline: Some(Duration::from_secs(5)),
        }
    }

    /// Replace the pivot cap.
    pub fn with_max_pivots(mut self, n: u64) -> Self {
        self.max_pivots = Some(n);
        self
    }

    /// Replace the Fourier–Motzkin atom cap.
    pub fn with_max_fm_atoms(mut self, n: u64) -> Self {
        self.max_fm_atoms = Some(n);
        self
    }

    /// Replace the DNF disjunct cap.
    pub fn with_max_disjuncts(mut self, n: u64) -> Self {
        self.max_disjuncts = Some(n);
        self
    }

    /// Replace the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    fn limit_for(&self, r: Resource) -> Option<u64> {
        match r {
            Resource::Pivots => self.max_pivots,
            Resource::FmAtoms => self.max_fm_atoms,
            Resource::Disjuncts => self.max_disjuncts,
            Resource::Time => None, // handled via the deadline clock
        }
    }
}

/// Monotonic work counters for one engine context. All counters are
/// cumulative over the context's lifetime; [`snapshot`] reads them out
/// mid-run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Simplex pivot steps performed.
    pub pivots: u64,
    /// Number of simplex solves (phase-1/phase-2 runs counted once each).
    pub lp_runs: u64,
    /// Variables eliminated by Fourier–Motzkin / equality substitution.
    pub eliminations: u64,
    /// Atoms produced by FM elimination products.
    pub fm_atoms: u64,
    /// Disjuncts produced by DNF `and`/`negate` products.
    pub disjuncts_produced: u64,
    /// Disjuncts discarded as unsatisfiable or subsumed by simplification.
    pub disjuncts_pruned: u64,
    /// Conjunction satisfiability checks requested.
    pub sat_checks: u64,
    /// Entailment (`implies_atom`) checks requested.
    pub entailment_checks: u64,
    /// Memo-cache hits across the sat/entailment caches.
    pub cache_hits: u64,
    /// Memo-cache misses (an actual solve was performed and stored).
    pub cache_misses: u64,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]`, or `None` when no cacheable check ran.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Merge counters from another snapshot (used when aggregating
    /// per-query stats into a report).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.pivots += other.pivots;
        self.lp_runs += other.lp_runs;
        self.eliminations += other.eliminations;
        self.fm_atoms += other.fm_atoms;
        self.disjuncts_produced += other.disjuncts_produced;
        self.disjuncts_pruned += other.disjuncts_pruned;
        self.sat_checks += other.sat_checks;
        self.entailment_checks += other.entailment_checks;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pivots={} lp_runs={} eliminations={} fm_atoms={} \
             disjuncts={}(+{} pruned) sat_checks={} entailment_checks={} \
             cache={}/{} hits",
            self.pivots,
            self.lp_runs,
            self.eliminations,
            self.fm_atoms,
            self.disjuncts_produced,
            self.disjuncts_pruned,
            self.sat_checks,
            self.entailment_checks,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )
    }
}

/// How often the deadline clock is consulted, in `note` calls. Reading
/// `Instant::now()` on every counted atom would dominate small solves.
const DEADLINE_STRIDE: u64 = 64;

struct ActiveContext {
    budget: EngineBudget,
    stats: EngineStats,
    started: Instant,
    notes_since_clock: u64,
    cache_enabled: bool,
}

thread_local! {
    static CONTEXT: RefCell<Option<ActiveContext>> = const { RefCell::new(None) };
    /// Bumped every time a context is installed; memo caches in dependent
    /// crates key their validity on this so entries never leak across
    /// queries with different budgets or databases.
    static GENERATION: RefCell<u64> = const { RefCell::new(0) };
}

/// Private unwind payload; `run_with` downcasts it at the boundary.
struct BudgetUnwind(BudgetExceeded);

/// The default panic hook prints a backtrace banner for every panic,
/// including our internal budget unwind. Install (once, process-wide) a
/// hook that stays silent for [`BudgetUnwind`] payloads and delegates to
/// the previous hook otherwise.
fn silence_budget_unwinds() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<BudgetUnwind>().is_none() {
                previous(info);
            }
        }));
    });
}

/// True when an engine context is installed on this thread.
pub fn is_active() -> bool {
    CONTEXT.with(|c| c.borrow().is_some())
}

/// True when the sat/entailment memo cache should be consulted. False
/// outside any context: standalone library use stays cache-free (and
/// allocation-free).
pub fn cache_enabled() -> bool {
    CONTEXT.with(|c| c.borrow().as_ref().is_some_and(|a| a.cache_enabled))
}

/// The current cache generation. Memo caches must clear themselves when
/// this changes.
pub fn generation() -> u64 {
    GENERATION.with(|g| *g.borrow())
}

/// Count `n` units of `r`, aborting the enclosing [`run_with`] when a
/// budget limit is crossed. A no-op without an active context.
pub fn note_many(r: Resource, n: u64) {
    let exceeded = CONTEXT.with(|c| {
        let mut borrow = c.borrow_mut();
        let active = borrow.as_mut()?;
        let counter = match r {
            Resource::Pivots => {
                active.stats.pivots += n;
                active.stats.pivots
            }
            Resource::FmAtoms => {
                active.stats.fm_atoms += n;
                active.stats.fm_atoms
            }
            Resource::Disjuncts => {
                active.stats.disjuncts_produced += n;
                active.stats.disjuncts_produced
            }
            Resource::Time => 0,
        };
        if let Some(limit) = active.budget.limit_for(r) {
            if counter > limit {
                return Some(BudgetExceeded {
                    resource: r,
                    limit,
                    consumed: counter,
                });
            }
        }
        // Deadline check, amortized over DEADLINE_STRIDE notes.
        active.notes_since_clock += 1;
        if active.notes_since_clock >= DEADLINE_STRIDE {
            active.notes_since_clock = 0;
            if let Some(deadline) = active.budget.deadline {
                let elapsed = active.started.elapsed();
                if elapsed > deadline {
                    return Some(BudgetExceeded {
                        resource: Resource::Time,
                        limit: deadline.as_millis() as u64,
                        consumed: elapsed.as_millis() as u64,
                    });
                }
            }
        }
        None
    });
    if let Some(b) = exceeded {
        panic_any(BudgetUnwind(b));
    }
}

/// Count one unit of `r`. See [`note_many`].
pub fn note(r: Resource) {
    note_many(r, 1);
}

/// Record an uncapped statistic (no budget applies).
pub fn tally(f: impl FnOnce(&mut EngineStats)) {
    CONTEXT.with(|c| {
        if let Some(active) = c.borrow_mut().as_mut() {
            f(&mut active.stats);
        }
    });
}

/// Record a memo-cache probe outcome.
pub fn note_cache(hit: bool) {
    tally(|s| {
        if hit {
            s.cache_hits += 1;
        } else {
            s.cache_misses += 1;
        }
    });
}

/// Read the current context's counters, or `None` outside a context.
pub fn snapshot() -> Option<EngineStats> {
    CONTEXT.with(|c| c.borrow().as_ref().map(|a| a.stats))
}

/// Install `budget` for the duration of `f`, returning `f`'s value and
/// the accumulated [`EngineStats`], or `Err(BudgetExceeded)` if a limit
/// was crossed. Contexts do not nest: a `run_with` inside an active
/// context would silently re-scope the outer budget, so it panics —
/// callers gate on [`is_active`] instead.
pub fn run_with<T>(
    budget: EngineBudget,
    cache: bool,
    f: impl FnOnce() -> T,
) -> Result<(T, EngineStats), BudgetExceeded> {
    silence_budget_unwinds();
    CONTEXT.with(|c| {
        let mut borrow = c.borrow_mut();
        assert!(
            borrow.is_none(),
            "engine contexts do not nest; check engine::is_active() first"
        );
        *borrow = Some(ActiveContext {
            budget,
            stats: EngineStats::default(),
            started: Instant::now(),
            notes_since_clock: 0,
            cache_enabled: cache,
        });
    });
    GENERATION.with(|g| *g.borrow_mut() += 1);

    let outcome = catch_unwind(AssertUnwindSafe(f));
    let stats = CONTEXT
        .with(|c| c.borrow_mut().take())
        .expect("context still installed")
        .stats;

    match outcome {
        Ok(value) => Ok((value, stats)),
        Err(payload) => match payload.downcast::<BudgetUnwind>() {
            Ok(unwound) => Err(unwound.0),
            Err(other) => resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_without_context() {
        note_many(Resource::Pivots, 1_000_000);
        assert!(snapshot().is_none());
        assert!(!is_active());
        assert!(!cache_enabled());
    }

    #[test]
    fn stats_accumulate() {
        let ((), stats) = run_with(EngineBudget::unlimited(), true, || {
            note_many(Resource::Pivots, 7);
            note_many(Resource::FmAtoms, 3);
            note(Resource::Disjuncts);
            note_cache(true);
            note_cache(false);
            tally(|s| s.sat_checks += 2);
        })
        .expect("unlimited budget");
        assert_eq!(stats.pivots, 7);
        assert_eq!(stats.fm_atoms, 3);
        assert_eq!(stats.disjuncts_produced, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.sat_checks, 2);
        assert_eq!(stats.cache_hit_rate(), Some(0.5));
    }

    #[test]
    fn budget_aborts_with_payload() {
        let err = run_with(EngineBudget::unlimited().with_max_pivots(10), false, || {
            for _ in 0..100 {
                note(Resource::Pivots);
            }
        })
        .expect_err("limit of 10 must trip");
        assert_eq!(err.resource, Resource::Pivots);
        assert_eq!(err.limit, 10);
        assert_eq!(err.consumed, 11);
        // The context is cleaned up even after an abort.
        assert!(!is_active());
    }

    #[test]
    fn deadline_aborts() {
        let err = run_with(
            EngineBudget::unlimited().with_deadline(Duration::from_millis(1)),
            false,
            || loop {
                note(Resource::Pivots);
            },
        )
        .expect_err("deadline must trip");
        assert_eq!(err.resource, Resource::Time);
        assert!(err.consumed >= err.limit);
    }

    #[test]
    fn ordinary_panics_pass_through() {
        let caught = std::panic::catch_unwind(|| {
            let _ = run_with(EngineBudget::unlimited(), false, || {
                panic!("user panic");
            });
        });
        assert!(caught.is_err());
        assert!(!is_active());
    }

    #[test]
    fn generation_bumps_per_context() {
        let before = generation();
        let _ = run_with(EngineBudget::unlimited(), true, || {});
        let _ = run_with(EngineBudget::unlimited(), true, || {});
        assert_eq!(generation(), before + 2);
    }
}
