//! Parallel regions: fork a slice of independent work items across a
//! work-stealing pool of scoped worker threads, then merge the workers'
//! telemetry back into the parent context deterministically.
//!
//! # Design
//!
//! [`parallel_map`] is the single entry point. It falls back to a plain
//! serial loop unless *all* of the following hold: an engine context is
//! active, its thread budget is at least 2, the caller is not already
//! inside a worker (nested regions run serial — the outer region owns the
//! thread budget), and there are at least as many items as the context's
//! configured minimum (`ExecOptions::min_parallel`, defaulting to
//! [`MIN_PARALLEL_ITEMS`] via `LYRIC_MIN_PARALLEL`).
//! The serial path is byte-for-byte the pre-parallel engine: same
//! iteration order, same note order, same trace shape.
//!
//! When a region does fork, each worker thread gets its own
//! [`ActiveContext`] carrying the parent's budget, deadline clock, cache
//! flag, and generation, but a *zeroed* local [`EngineStats`] — local
//! counters are per-worker deltas, so span deltas never double-count
//! across threads. The budgeted counters (pivots, FM atoms, disjuncts)
//! are additionally mirrored into the region's [`SharedRegion`] atomics,
//! seeded with the parent's pre-region totals; limits are checked against
//! that global sum, so `BudgetExceeded` fires as promptly as in a serial
//! run and carries the same resource classification.
//!
//! # Determinism
//!
//! Work is handed out as *indices* and results are reassembled in index
//! order, so the output vector — and therefore the query answer — is
//! bit-identical to the serial run's no matter how the steal schedule
//! interleaves. Worker stats and trace subtrees are merged in worker-id
//! order after the join, so Σ worker deltas equals the serial counters on
//! deterministic (cache-off) workloads. A panic in any worker (including
//! the engine's internal budget unwind) aborts the handout, and the first
//! payload in worker order is re-raised on the calling thread after the
//! join, where `run_with`'s boundary translates a budget unwind into
//! `Err(BudgetExceeded)` exactly as for serial evaluation.

use crate::pool::StealQueue;
use crate::{trace, ActiveContext, EngineStats, BUDGET_THRESHOLDS, CONTEXT};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Cross-worker state of one parallel region: the budgeted counters as
/// atomics, seeded with the parent context's pre-region totals.
pub(crate) struct SharedRegion {
    pub(crate) pivots: AtomicU64,
    pub(crate) fm_atoms: AtomicU64,
    pub(crate) disjuncts: AtomicU64,
}

/// Default minimum item count for forking a region: parallel regions
/// with fewer items stay serial, since forking threads for a couple of
/// bindings costs more than it saves, and tiny workloads (the paper's
/// worked examples) keep their exact serial cache-hit patterns.
/// Override per query with `ExecOptions::with_min_parallel` or
/// process-wide with `LYRIC_MIN_PARALLEL`.
pub const MIN_PARALLEL_ITEMS: usize = 4;

/// Worker thread ids start here; [`trace::MAIN_TID`] is the coordinator.
const WORKER_TID_BASE: u32 = 2;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything a worker context needs, captured from the parent context
/// before the fork.
struct RegionPlan {
    budget: crate::EngineBudget,
    cache_enabled: bool,
    /// Interval-box pruning flag, copied onto worker contexts so every
    /// worker makes the same prune-or-solve decisions as a serial run.
    boxes: bool,
    /// Store-index probing flag, copied onto worker contexts for the
    /// same reason.
    index: bool,
    generation: u64,
    started: Instant,
    threads: usize,
    min_parallel: usize,
    dnf_min_pairs: usize,
    /// The parent thread's arithmetic mode; copied onto worker threads.
    arith_fast: bool,
    /// The parent tracer's origin `Instant`; `Some` iff tracing.
    trace_origin: Option<Instant>,
    /// The query's in-flight progress cell, shared with every worker so
    /// `/debug/inflight` shows whole-region totals.
    flight: Option<Arc<lyric_flight::Progress>>,
    shared: Arc<SharedRegion>,
}

/// Decide whether a region over `items` items forks, and capture the plan
/// if so. Also records the fork-vs-serial decision in the registry (only
/// under an active context — standalone library calls are not engine
/// fallbacks).
fn plan_region(items: usize) -> Option<RegionPlan> {
    let plan = CONTEXT.with(|c| {
        let borrow = c.borrow();
        let active = borrow.as_ref()?;
        if active.is_worker() || active.threads < 2 || items < active.min_parallel {
            crate::metrics::parallel_region(false);
            return None;
        }
        Some(RegionPlan {
            budget: active.budget.clone(),
            cache_enabled: active.cache_enabled,
            boxes: active.boxes,
            index: active.index,
            generation: active.generation,
            started: active.started,
            threads: active.threads,
            min_parallel: active.min_parallel,
            dnf_min_pairs: active.dnf_min_pairs,
            arith_fast: lyric_arith::fast_path_enabled(),
            trace_origin: active.tracer.as_ref().map(|t| t.origin()),
            flight: active.flight.clone(),
            shared: Arc::new(SharedRegion {
                pivots: AtomicU64::new(active.stats.pivots),
                fm_atoms: AtomicU64::new(active.stats.fm_atoms),
                disjuncts: AtomicU64::new(active.stats.disjuncts_produced),
            }),
        })
    });
    if plan.is_some() {
        crate::metrics::parallel_region(true);
    }
    plan
}

/// A worker's exported telemetry: its local counter deltas, its per-item
/// latency histogram, and, when tracing, its sealed span subtree plus
/// drop count.
struct WorkerReport {
    stats: EngineStats,
    items_hist: lyric_metrics::LocalHistogram,
    subtree: Option<(trace::TraceSpan, u64)>,
}

/// Installs a worker [`ActiveContext`] on construction and exports the
/// worker's telemetry into `slot` on drop — including when a budget abort
/// (or any panic) unwinds through the worker, so the parent can always
/// merge a complete report.
struct WorkerContext<'a> {
    slot: &'a Mutex<Option<WorkerReport>>,
    /// Per-item evaluation latencies, recorded lock-free by this worker
    /// and merged into the registry histogram on join — the same
    /// merge-on-join discipline as the worker's `EngineStats`.
    items_hist: std::cell::RefCell<lyric_metrics::LocalHistogram>,
}

impl<'a> WorkerContext<'a> {
    fn install(plan: &RegionPlan, worker: usize, slot: &'a Mutex<Option<WorkerReport>>) -> Self {
        let tid = WORKER_TID_BASE + worker as u32;
        lyric_arith::set_fast_path(plan.arith_fast);
        CONTEXT.with(|c| {
            let mut borrow = c.borrow_mut();
            debug_assert!(borrow.is_none(), "fresh worker thread has no context");
            *borrow = Some(ActiveContext {
                budget: plan.budget.clone(),
                stats: EngineStats::default(),
                started: plan.started,
                notes_since_clock: 0,
                cache_enabled: plan.cache_enabled,
                boxes: plan.boxes,
                index: plan.index,
                tracer: plan
                    .trace_origin
                    .map(|o| trace::Collector::worker(o, tid, format!("worker {worker}"))),
                // Deadline-percentage events are announced by the parent
                // context only; every worker repeating them would duplicate
                // the crossing.
                time_thresholds_emitted: BUDGET_THRESHOLDS.len(),
                generation: plan.generation,
                threads: 1,
                min_parallel: plan.min_parallel,
                dnf_min_pairs: plan.dnf_min_pairs,
                shared: Some(plan.shared.clone()),
                arith_base: lyric_arith::op_counters(),
                flight: plan.flight.clone(),
                flight_base: [0; 3],
            });
        });
        WorkerContext {
            slot,
            items_hist: std::cell::RefCell::new(lyric_metrics::LocalHistogram::new()),
        }
    }

    fn observe_item(&self, us: u64) {
        self.items_hist.borrow_mut().observe(us);
    }
}

impl Drop for WorkerContext<'_> {
    fn drop(&mut self) {
        let mut ctx = CONTEXT
            .with(|c| c.borrow_mut().take())
            .expect("worker context still installed");
        crate::refresh_arith(&mut ctx);
        let stats = ctx.stats;
        let subtree = ctx.tracer.map(|t| t.finish_subtree(stats));
        let items_hist = std::mem::take(&mut *self.items_hist.borrow_mut());
        *lock(self.slot) = Some(WorkerReport {
            stats,
            items_hist,
            subtree,
        });
    }
}

/// Apply `f` to every item of `items`, in parallel when the active engine
/// context has a thread budget above 1 (see the module docs for the exact
/// conditions). Results are returned in item order; answers are identical
/// to the serial loop `items.iter().enumerate().map(|(i, x)| f(i, x))`.
///
/// `f` runs under a worker engine context: `note`/`tally`/`span` hooks
/// work as usual, budget aborts propagate to the enclosing
/// `run_with`/`run_traced` boundary, and recorded spans appear in the
/// trace under per-worker subtrees with distinct `tid`s.
pub fn parallel_map<I, R, F>(items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let Some(plan) = plan_region(items.len()) else {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    };
    let workers = plan.threads.min(items.len());
    let queue = StealQueue::new(items.len(), workers);
    let reports: Vec<Mutex<Option<WorkerReport>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();
    let results: Vec<Mutex<Vec<(usize, R)>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let time_items = lyric_metrics::enabled();

    std::thread::scope(|s| {
        for w in 0..workers {
            let plan = &plan;
            let queue = &queue;
            let f = &f;
            let report_slot = &reports[w];
            let result_slot = &results[w];
            let panic_payload = &panic_payload;
            std::thread::Builder::new()
                .name(format!("lyric-worker-{w}"))
                .spawn_scoped(s, move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let ctx = WorkerContext::install(plan, w, report_slot);
                        let mut out = Vec::new();
                        while let Some(i) = queue.next(w) {
                            let started = time_items.then(Instant::now);
                            out.push((i, f(i, &items[i])));
                            if let Some(started) = started {
                                ctx.observe_item(started.elapsed().as_micros() as u64);
                            }
                        }
                        out
                    }));
                    match outcome {
                        Ok(out) => *lock(result_slot) = out,
                        Err(payload) => {
                            queue.abort();
                            lock(panic_payload).get_or_insert(payload);
                        }
                    }
                })
                .expect("spawn scoped worker thread");
        }
    });

    // Merge per-worker stats, item histograms, and trace subtrees into
    // the parent context in worker-id order — deterministic regardless
    // of the steal schedule.
    let merge_started = time_items.then(Instant::now);
    CONTEXT.with(|c| {
        let mut borrow = c.borrow_mut();
        let active = borrow.as_mut().expect("parent context still installed");
        for slot in &reports {
            let Some(report) = lock(slot).take() else {
                continue;
            };
            active.stats.absorb(&report.stats);
            if active.flight.is_some() {
                // Workers mirrored their own sat/box/index tallies into the
                // shared flight cell as they ran; absorbing their stats into
                // the parent must advance the parent's flushed base past
                // those sums, or the parent's next tally would re-send them.
                active.flight_base[0] += report.stats.sat_checks;
                active.flight_base[1] += report.stats.box_prunes;
                active.flight_base[2] += report.stats.index_probes;
            }
            crate::metrics::merge_worker_items(&report.items_hist);
            if let Some((span, dropped)) = report.subtree {
                if let Some(tracer) = active.tracer.as_mut() {
                    // Idle workers (stole nothing before the region
                    // drained) contribute an empty subtree; skip the noise.
                    if !span.children.is_empty()
                        || !report.stats.is_zero()
                        || !span.events.is_empty()
                    {
                        tracer.attach_subtree(span, dropped);
                    }
                }
            }
        }
    });
    if let Some(merge_started) = merge_started {
        crate::metrics::worker_merge_time(merge_started.elapsed());
    }

    // Re-raise the first worker panic (budget unwinds included) on the
    // calling thread, *after* the telemetry merge so the boundary still
    // sees consistent totals.
    if let Some(payload) = lock(&panic_payload).take() {
        resume_unwind(payload);
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for slot in results {
        for (i, r) in slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every item evaluated exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        note, note_many, run_traced_opts, run_with_opts, EngineBudget, ExecOptions, Resource,
    };

    fn opts(threads: usize) -> ExecOptions {
        ExecOptions::default()
            .with_budget(EngineBudget::unlimited())
            .with_threads(threads)
    }

    #[test]
    fn results_keep_item_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..100).collect();
            let (out, stats) = run_with_opts(opts(threads), || {
                parallel_map(&items, |i, &x| {
                    note(Resource::Pivots);
                    (i as u64) * 1_000 + x * x
                })
            })
            .unwrap();
            let expect: Vec<u64> = (0..100).map(|x| x * 1_000 + x * x).collect();
            assert_eq!(out, expect);
            assert_eq!(stats.pivots, 100, "worker deltas sum to serial count");
        }
    }

    #[test]
    fn serial_fallback_without_context() {
        let items = [1, 2, 3, 4, 5, 6];
        let out = parallel_map(&items, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn small_regions_stay_serial() {
        // Under MIN_PARALLEL_ITEMS the current thread evaluates everything,
        // so thread-local state set by f is visible to the caller.
        let ((), _) = run_with_opts(opts(8), || {
            let items = [1, 2, 3];
            let tid = std::thread::current().id();
            let out = parallel_map(&items, |_, _| std::thread::current().id());
            assert!(out.iter().all(|&t| t == tid));
        })
        .unwrap();
    }

    #[test]
    fn nested_regions_fall_back_to_serial() {
        let items: Vec<u32> = (0..16).collect();
        let (out, stats) = run_with_opts(opts(4), || {
            parallel_map(&items, |_, &x| {
                let inner: Vec<u32> = (0..8).collect();
                // Inside a worker, a nested parallel_map must not fork.
                let tid = std::thread::current().id();
                let nested = parallel_map(&inner, |_, &y| {
                    note(Resource::FmAtoms);
                    assert_eq!(std::thread::current().id(), tid);
                    y + x
                });
                nested.iter().sum::<u32>()
            })
        })
        .unwrap();
        assert_eq!(out.len(), 16);
        assert_eq!(stats.fm_atoms, 16 * 8);
    }

    #[test]
    fn budget_abort_propagates_with_serial_classification() {
        let items: Vec<u64> = (0..64).collect();
        let serial = run_with_opts(opts(1), || {
            parallel_map(&items, |_, _| note_many(Resource::Disjuncts, 10))
        })
        .map(|_| ());
        for threads in [2, 4, 8] {
            let mut o = opts(threads);
            o.budget = EngineBudget::unlimited().with_max_disjuncts(100);
            let err = run_with_opts(o, || {
                parallel_map(&items, |_, _| note_many(Resource::Disjuncts, 10))
            })
            .expect_err("limit of 100 must trip under parallel execution");
            assert_eq!(err.resource, Resource::Disjuncts);
            assert_eq!(err.limit, 100);
            assert!(err.consumed > 100, "consumed {} <= limit", err.consumed);
        }
        assert!(serial.is_ok(), "unlimited serial run sanity check");
    }

    #[test]
    fn worker_panics_propagate_as_ordinary_panics() {
        let caught = std::panic::catch_unwind(|| {
            let _ = run_with_opts(opts(4), || {
                let items: Vec<u32> = (0..32).collect();
                parallel_map(&items, |_, &x| {
                    if x == 17 {
                        panic!("worker panic");
                    }
                    x
                })
            });
        });
        assert!(caught.is_err());
        assert!(!crate::is_active());
    }

    #[test]
    fn traced_regions_graft_worker_subtrees() {
        let items: Vec<u32> = (0..32).collect();
        let ((), stats, trace) = run_traced_opts(opts(4), "q", 1, || {
            let _outer = crate::span(crate::SpanKind::Where, || "w".into(), None);
            let _ = parallel_map(&items, |i, _| {
                let _s = crate::span(crate::SpanKind::SatCheck, || format!("s{i}"), None);
                note(Resource::Pivots);
            });
        })
        .unwrap();
        assert_eq!(stats.pivots, 32);
        assert_eq!(*trace.total_stats(), stats);
        // Σ self-stats still partitions the total across worker subtrees.
        assert_eq!(trace.summed_self_stats(), stats);
        let tids = trace.distinct_tids();
        assert!(tids.len() >= 2, "expected worker tids, got {tids:?}");
        assert_eq!(tids[0], lyric_trace::MAIN_TID);
        // All 32 sat_check spans are recorded, under worker roots.
        let mut sat = 0;
        let mut workers = 0;
        trace.root.walk(&mut |s, _| match s.kind {
            crate::SpanKind::SatCheck => sat += 1,
            crate::SpanKind::Worker => workers += 1,
            _ => {}
        });
        assert_eq!(sat, 32);
        assert!(workers >= 1);
        assert_eq!(trace.dropped_spans, 0);
    }
}
