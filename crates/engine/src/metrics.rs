//! Bridges per-query engine telemetry into the process-lifetime
//! [`lyric_metrics`] registry.
//!
//! Every metric the engine owns is registered once (lazily) in a single
//! [`EngineMetrics`] struct, so the hot paths pay one `OnceLock` load
//! plus a striped atomic increment. The per-query [`EngineStats`]
//! counters are flushed into their cumulative registry counters exactly
//! once, at the [`run_inner`](crate) boundary teardown — after all
//! worker deltas have been merged — so the registry totals are *exactly*
//! the sum of every query's final stats (the `metrics_smoke` CI binary
//! asserts this equality over a live `/metrics` scrape).

use crate::{BudgetExceeded, Resource};
use lyric_metrics::{Counter, Gauge, Histogram, LocalHistogram};
use lyric_trace::stats::COUNTER_NAMES;
use std::sync::OnceLock;
use std::time::Duration;

/// Short label value for a [`Resource`] (Prometheus label values avoid
/// the spaces in [`Resource::name`]).
pub(crate) fn resource_label(r: Resource) -> &'static str {
    match r {
        Resource::Pivots => "pivots",
        Resource::FmAtoms => "fm_atoms",
        Resource::Disjuncts => "disjuncts",
        Resource::Time => "time",
    }
}

const RESOURCES: [Resource; 4] = [
    Resource::Pivots,
    Resource::FmAtoms,
    Resource::Disjuncts,
    Resource::Time,
];

fn resource_index(r: Resource) -> usize {
    match r {
        Resource::Pivots => 0,
        Resource::FmAtoms => 1,
        Resource::Disjuncts => 2,
        Resource::Time => 3,
    }
}

pub(crate) struct EngineMetrics {
    queries: Counter,
    query_duration_us: Histogram,
    /// Cumulative [`EngineStats`] counters, in [`COUNTER_NAMES`] order.
    stat_totals: Vec<Counter>,
    budget_aborts: [Counter; 4],
    /// `[resource][threshold]` for the 50%/90% crossings.
    budget_thresholds: [[Counter; 2]; 4],
    parallel_regions: Counter,
    parallel_serial: Counter,
    pool_steals: Counter,
    worker_items_us: Histogram,
    worker_merge_us: Histogram,
    threads_gauge: Gauge,
    min_parallel_gauge: Gauge,
    dnf_min_pairs_gauge: Gauge,
    arith_fast_gauge: Gauge,
    boxes_gauge: Gauge,
    index_gauge: Gauge,
    arena_pool_hits_gauge: Gauge,
    arena_pool_misses_gauge: Gauge,
    arena_recycled_bytes_gauge: Gauge,
}

pub(crate) fn metrics() -> &'static EngineMetrics {
    static M: OnceLock<EngineMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = lyric_metrics::global();
        EngineMetrics {
            queries: r.counter(
                "lyric_queries_total",
                "Engine contexts run to completion (including budget aborts).",
            ),
            query_duration_us: r.histogram(
                "lyric_query_duration_us",
                "Wall-clock query evaluation time in microseconds.",
            ),
            stat_totals: COUNTER_NAMES
                .iter()
                .map(|name| {
                    r.counter(
                        &format!("lyric_engine_{name}_total"),
                        &format!("Cumulative EngineStats `{name}` across all queries."),
                    )
                })
                .collect(),
            budget_aborts: RESOURCES.map(|res| {
                r.counter_with(
                    "lyric_budget_aborts_total",
                    "Queries aborted by a budget limit, by resource.",
                    &[("resource", resource_label(res))],
                )
            }),
            budget_thresholds: RESOURCES.map(|res| {
                crate::BUDGET_THRESHOLDS.map(|pct| {
                    r.counter_with(
                        "lyric_budget_threshold_total",
                        "Budget consumption threshold crossings, by resource and percent.",
                        &[
                            ("resource", resource_label(res)),
                            ("percent", if pct == 50 { "50" } else { "90" }),
                        ],
                    )
                })
            }),
            parallel_regions: r.counter(
                "lyric_parallel_regions_total",
                "parallel_map regions that forked worker threads.",
            ),
            parallel_serial: r.counter(
                "lyric_parallel_serial_total",
                "parallel_map calls under an active context that stayed serial.",
            ),
            pool_steals: r.counter(
                "lyric_pool_steals_total",
                "Successful work-steals between pool workers.",
            ),
            worker_items_us: r.histogram(
                "lyric_worker_item_us",
                "Per-item evaluation time inside parallel regions, microseconds.",
            ),
            worker_merge_us: r.histogram(
                "lyric_worker_merge_us",
                "Time to merge worker telemetry after a parallel region join, microseconds.",
            ),
            threads_gauge: r.gauge(
                "lyric_threads",
                "Thread budget of the most recently installed engine context.",
            ),
            min_parallel_gauge: r.gauge(
                "lyric_min_parallel_items",
                "Effective minimum item count for forking a parallel region.",
            ),
            dnf_min_pairs_gauge: r.gauge(
                "lyric_dnf_parallel_min_pairs",
                "Effective minimum pair count for parallel DNF products.",
            ),
            arith_fast_gauge: r.gauge(
                "lyric_arith_fast",
                "1 when the most recent context used the small-coefficient \
                 arithmetic fast path, 0 for the all-BigInt baseline.",
            ),
            boxes_gauge: r.gauge(
                "lyric_boxes",
                "1 when the most recent context ran the interval-box \
                 disjointness test before LP calls, 0 for exact-LP only.",
            ),
            index_gauge: r.gauge(
                "lyric_index",
                "1 when the most recent context pre-filtered FROM extents \
                 through the store index, 0 for full-extent scans.",
            ),
            arena_pool_hits_gauge: r.gauge(
                "lyric_arena_pool_hits",
                "Arena buffer acquisitions served by a recycled buffer \
                 (process lifetime).",
            ),
            arena_pool_misses_gauge: r.gauge(
                "lyric_arena_pool_misses",
                "Arena buffer acquisitions that allocated a fresh buffer \
                 (process lifetime).",
            ),
            arena_recycled_bytes_gauge: r.gauge(
                "lyric_arena_recycled_bytes",
                "Capacity bytes returned to arena pools (process lifetime).",
            ),
        }
    })
}

/// Record the effective execution options of a freshly installed context.
pub(crate) fn record_options(
    threads: usize,
    min_parallel: usize,
    dnf_min_pairs: usize,
    arith_fast: bool,
    boxes: bool,
    index: bool,
) {
    if !lyric_metrics::enabled() {
        return;
    }
    let m = metrics();
    m.threads_gauge.set(threads as u64);
    m.min_parallel_gauge.set(min_parallel as u64);
    m.dnf_min_pairs_gauge.set(dnf_min_pairs as u64);
    m.arith_fast_gauge.set(arith_fast as u64);
    m.boxes_gauge.set(boxes as u64);
    m.index_gauge.set(index as u64);
}

/// Flush one completed context: bump the query counter, observe the
/// duration, add the final per-query stats into the cumulative totals,
/// and classify a budget abort if one ended the query.
pub(crate) fn flush_query(
    stats: &crate::EngineStats,
    elapsed: Duration,
    abort: Option<&BudgetExceeded>,
) {
    if !lyric_metrics::enabled() {
        return;
    }
    let m = metrics();
    m.queries.inc();
    m.query_duration_us.observe(elapsed.as_micros() as u64);
    for (counter, value) in m.stat_totals.iter().zip(stats.counters()) {
        if value > 0 {
            counter.add(value);
        }
    }
    if let Some(b) = abort {
        m.budget_aborts[resource_index(b.resource)].inc();
    }
    let arena = lyric_arith::arena_stats();
    m.arena_pool_hits_gauge.set(arena.pool_hits);
    m.arena_pool_misses_gauge.set(arena.pool_misses);
    m.arena_recycled_bytes_gauge.set(arena.recycled_bytes);
}

/// Record a 50%/90% budget-consumption crossing (mirrors the trace
/// event, but lands in the registry whether or not tracing is on).
pub(crate) fn budget_threshold(r: Resource, percent: u64) {
    if !lyric_metrics::enabled() {
        return;
    }
    let slot = crate::BUDGET_THRESHOLDS.iter().position(|&p| p == percent);
    if let Some(slot) = slot {
        metrics().budget_thresholds[resource_index(r)][slot].inc();
    }
}

/// Record whether a `parallel_map` region forked or stayed serial (the
/// serial side is only counted under an active context — library calls
/// outside the engine are not fallbacks).
pub(crate) fn parallel_region(forked: bool) {
    if !lyric_metrics::enabled() {
        return;
    }
    let m = metrics();
    if forked {
        m.parallel_regions.inc();
    } else {
        m.parallel_serial.inc();
    }
}

/// Record one successful steal in the work-stealing pool.
pub(crate) fn pool_steal() {
    if !lyric_metrics::enabled() {
        return;
    }
    metrics().pool_steals.inc();
}

/// Merge one worker's per-item latency histogram after a region join.
pub(crate) fn merge_worker_items(local: &LocalHistogram) {
    if local.count() > 0 {
        metrics().worker_items_us.merge_local(local);
    }
}

/// Record how long the post-join telemetry merge took.
pub(crate) fn worker_merge_time(elapsed: Duration) {
    metrics()
        .worker_merge_us
        .observe(elapsed.as_micros() as u64);
}
