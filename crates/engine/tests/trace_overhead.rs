//! Overhead guard for the disabled tracing path.
//!
//! `span` and `trace_event` must be free when no collector is installed:
//! no heap allocation, and the label/event closures never invoked. A
//! counting global allocator pins the first half; diverging closures pin
//! the second.

use lyric_engine::{span, trace_event, EngineBudget, EventKind, SpanKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_allocates_nothing() {
    // Install the context outside the measured window: run_with itself
    // allocates (the context, the panic-hook once-init).
    let ((), stats) = lyric_engine::run_with(EngineBudget::unlimited(), false, || {
        // Warm up thread-locals before counting.
        let _warm = span(SpanKind::Where, || unreachable!(), None);
        drop(_warm);

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..10_000 {
            let _g = span(
                SpanKind::SatCheck,
                || unreachable!("label closure must not run"),
                Some((0, 4)),
            );
            trace_event(|| -> EventKind { unreachable!("event closure must not run") });
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "disabled span/event path allocated {} times",
            after - before
        );
    })
    .expect("unlimited budget");
    assert!(stats.is_zero());
}
