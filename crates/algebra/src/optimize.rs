//! Rewrite-based algebraic optimization.
//!
//! §5 notes that "constraint database optimization considerably differs
//! from that of regular databases" and points at BJM93's generic
//! framework, whose key lever is running cheap, selective constraint
//! tests before expensive transformations. The rewrite system implements
//! the FP fragment of that idea:
//!
//! 1. **composition flattening** and identity elimination;
//! 2. **filter hoisting** — the constraint-specific rule: `Filter(sat) ∘
//!    α f  ⇒  α f ∘ Filter(sat)` whenever `f` is *satisfiability-
//!    preserving* (canonicalization, lazy projection, their
//!    compositions). The hoisted form skips the expensive `f` on every
//!    element the feasibility test rejects. (The textbook pushdown
//!    `Filter p ∘ α f ⇒ α f ∘ Filter (p ∘ f)` is deliberately *not*
//!    applied: without sharing it re-evaluates `f` inside the predicate
//!    and pessimizes — constraint semantics is what makes the hoist
//!    sound instead.)
//! 3. **map fusion**: `α f ∘ α g  ⇒  α (f ∘ g)` — one traversal, no
//!    intermediate collection;
//! 4. **filter fusion**: `Filter p ∘ Filter q  ⇒  Filter (q ∧ p)` — one
//!    pass.
//!
//! `optimize` is idempotent and semantics-preserving, verified by
//! property tests; the E8 ablation benchmark measures the win.

use crate::func::Func;

/// Optimize a program by exhaustive rewriting (to a fixed point).
pub fn optimize(f: &Func) -> Func {
    optimize_explained(f).0
}

/// [`optimize`], also reporting which rewrite rules actually fired, each
/// at most once, in first-application order. The stable rule names —
/// `flatten_compose`, `eliminate_id`, `hoist_filter_sat`, `fuse_map`,
/// `fuse_filter` — annotate explain plans (`lyric_trace::plan`).
pub fn optimize_explained(f: &Func) -> (Func, Vec<&'static str>) {
    let mut rules: Vec<&'static str> = Vec::new();
    let mut cur = f.clone();
    loop {
        let next = rewrite(&cur, &mut rules);
        if next == cur {
            let mut seen = Vec::new();
            for r in rules {
                if !seen.contains(&r) {
                    seen.push(r);
                }
            }
            return (cur, seen);
        }
        cur = next;
    }
}

fn rewrite(f: &Func, rules: &mut Vec<&'static str>) -> Func {
    // Bottom-up: rewrite children first.
    let f = map_children(f, rules);
    match f {
        Func::Compose(fs) => rebuild_compose(fs, rules),
        other => other,
    }
}

/// Rewrite every direct child program.
fn map_children(f: &Func, rules: &mut Vec<&'static str>) -> Func {
    match f {
        Func::Compose(fs) => Func::Compose(fs.iter().map(|g| rewrite(g, rules)).collect()),
        Func::Construct(fs) => Func::Construct(fs.iter().map(|g| rewrite(g, rules)).collect()),
        Func::ApplyToAll(g) => Func::ApplyToAll(Box::new(rewrite(g, rules))),
        Func::Filter(p) => Func::Filter(Box::new(rewrite(p, rules))),
        Func::Insert(g, unit) => Func::Insert(Box::new(rewrite(g, rules)), unit.clone()),
        other => other.clone(),
    }
}

/// Is applying `f` to a constraint object guaranteed to preserve
/// (un)satisfiability? This is the side condition of the hoist rule;
/// conjoining (`CstAndConst`) can turn satisfiable into unsatisfiable, so
/// it does not qualify.
fn preserves_satisfiability(f: &Func) -> bool {
    match f {
        Func::Id
        | Func::Canonicalize
        | Func::StrongCanonicalize
        | Func::EliminateBound
        | Func::CstProject(_) => true,
        Func::Compose(fs) => fs.iter().all(preserves_satisfiability),
        _ => false,
    }
}

/// Normalize a composition: flatten nested `Compose`, drop `Id`, then
/// apply the pairwise rules left to right. `flat` is outermost-first:
/// `flat = [f, g]` denotes `f ∘ g` (g runs first).
fn rebuild_compose(fs: Vec<Func>, rules: &mut Vec<&'static str>) -> Func {
    let mut flat: Vec<Func> = Vec::with_capacity(fs.len());
    for g in fs {
        match g {
            Func::Compose(inner) => {
                rules.push("flatten_compose");
                flat.extend(inner);
            }
            Func::Id => rules.push("eliminate_id"),
            other => flat.push(other),
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i + 1 < flat.len() {
            let replacement: Option<(Vec<Func>, &'static str)> = match (&flat[i], &flat[i + 1]) {
                // Hoist: Filter(sat) ∘ α f ⇒ α f ∘ Filter(sat) when f
                // preserves satisfiability — run the cheap feasibility
                // test first, the expensive map only on survivors.
                (Func::Filter(p), Func::ApplyToAll(f1))
                    if matches!(p.as_ref(), Func::Satisfiable) && preserves_satisfiability(f1) =>
                {
                    Some((
                        vec![
                            Func::ApplyToAll(f1.clone()),
                            Func::Filter(Box::new(Func::Satisfiable)),
                        ],
                        "hoist_filter_sat",
                    ))
                }
                // α f ∘ α g ⇒ α (f ∘ g)
                (Func::ApplyToAll(f1), Func::ApplyToAll(f2)) => Some((
                    vec![Func::ApplyToAll(Box::new(compose2(
                        f1.as_ref().clone(),
                        f2.as_ref().clone(),
                    )))],
                    "fuse_map",
                )),
                // Filter p ∘ Filter q ⇒ Filter (q ∧ p), one pass.
                (Func::Filter(p), Func::Filter(q)) => Some((
                    vec![Func::Filter(Box::new(and_predicate(
                        q.as_ref().clone(),
                        p.as_ref().clone(),
                    )))],
                    "fuse_filter",
                )),
                _ => None,
            };
            if let Some((mut rep, rule)) = replacement {
                rules.push(rule);
                flat.splice(i..i + 2, rep.drain(..));
                changed = true;
                // Restart pair scanning behind the rewrite site so newly
                // adjacent pairs are seen.
                i = i.saturating_sub(1);
            } else {
                i += 1;
            }
        }
    }
    match flat.len() {
        0 => Func::Id,
        1 => flat.pop().expect("len checked"),
        _ => Func::Compose(flat),
    }
}

fn compose2(outer: Func, inner: Func) -> Func {
    match (outer, inner) {
        (Func::Id, g) => g,
        (f, Func::Id) => f,
        (Func::Compose(mut fs), Func::Compose(gs)) => {
            fs.extend(gs);
            Func::Compose(fs)
        }
        (Func::Compose(mut fs), g) => {
            fs.push(g);
            Func::Compose(fs)
        }
        (f, Func::Compose(mut gs)) => {
            gs.insert(0, f);
            Func::Compose(gs)
        }
        (f, g) => Func::Compose(vec![f, g]),
    }
}

/// A predicate computing `first(x) && second(x)`: construct both booleans
/// and conjoin. (The algebra is total, so eager evaluation of both
/// conjuncts is semantics-preserving as long as both were evaluated on
/// the same elements in the unfused form — which filter fusion
/// guarantees only when `first` is the earlier filter; see the property
/// tests.)
fn and_predicate(first: Func, second: Func) -> Func {
    Func::Compose(vec![Func::BoolAnd, Func::Construct(vec![first, second])])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::value::Value;
    use lyric_constraint::{CstObject, LinExpr, Var};
    use lyric_oodb::Database;

    fn db() -> Database {
        lyric::paper_example::database()
    }

    fn halfplane(lo: i64) -> CstObject {
        use lyric_constraint::{Atom, Conjunction};
        CstObject::from_conjunction(
            vec![Var::new("x")],
            Conjunction::of([Atom::ge(LinExpr::var(Var::new("x")), LinExpr::from(lo))]),
        )
    }

    fn empty() -> CstObject {
        CstObject::bottom(vec![Var::new("x")])
    }

    #[test]
    fn flattening_and_identity() {
        let f = Func::Compose(vec![
            Func::Id,
            Func::Compose(vec![Func::Length, Func::Id]),
            Func::Id,
        ]);
        assert_eq!(optimize(&f), Func::Length);
        assert_eq!(optimize(&Func::Compose(vec![])), Func::Id);
    }

    #[test]
    fn map_fusion() {
        let f = Func::Compose(vec![
            Func::ApplyToAll(Box::new(Func::Canonicalize)),
            Func::ApplyToAll(Box::new(Func::CstAndConst(halfplane(0)))),
        ]);
        let opt = optimize(&f);
        match &opt {
            Func::ApplyToAll(body) => {
                assert!(matches!(body.as_ref(), Func::Compose(fs) if fs.len() == 2));
            }
            other => panic!("expected fused map, got {other:?}"),
        }
        let d = db();
        let input = Value::Coll(vec![Value::cst(halfplane(2)), Value::cst(halfplane(-3))]);
        assert_eq!(
            eval(&f, &d, &input).unwrap(),
            eval(&opt, &d, &input).unwrap()
        );
    }

    #[test]
    fn satisfiability_filter_hoists_past_canonicalization() {
        // Filter(sat) ∘ α(canon): hoist so canon runs only on survivors.
        let f = Func::Compose(vec![
            Func::Filter(Box::new(Func::Satisfiable)),
            Func::ApplyToAll(Box::new(Func::Canonicalize)),
        ]);
        let opt = optimize(&f);
        match &opt {
            Func::Compose(fs) => {
                assert!(matches!(fs[0], Func::ApplyToAll(_)), "{opt:?}");
                assert!(matches!(fs[1], Func::Filter(_)), "{opt:?}");
            }
            other => panic!("expected hoisted shape, got {other:?}"),
        }
        let d = db();
        let input = Value::Coll(vec![
            Value::cst(halfplane(2)),
            Value::cst(empty()),
            Value::cst(halfplane(-3)),
        ]);
        assert_eq!(
            eval(&f, &d, &input).unwrap(),
            eval(&opt, &d, &input).unwrap()
        );
    }

    #[test]
    fn hoist_refused_when_map_changes_satisfiability() {
        // ∧k can kill satisfiability: the filter must NOT move past it.
        let f = Func::Compose(vec![
            Func::Filter(Box::new(Func::Satisfiable)),
            Func::ApplyToAll(Box::new(Func::CstAndConst(halfplane(5)))),
        ]);
        let opt = optimize(&f);
        match &opt {
            Func::Compose(fs) => {
                assert!(
                    matches!(fs[0], Func::Filter(_)),
                    "must stay after the map: {opt:?}"
                );
                assert!(matches!(fs[1], Func::ApplyToAll(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let d = db();
        let input = Value::Coll(vec![Value::cst(halfplane(2)), Value::cst(halfplane(-3))]);
        assert_eq!(
            eval(&f, &d, &input).unwrap(),
            eval(&opt, &d, &input).unwrap()
        );
    }

    #[test]
    fn filter_fusion_preserves_semantics() {
        let f = Func::Compose(vec![
            Func::Filter(Box::new(Func::Satisfiable)),
            Func::Filter(Box::new(Func::ImpliesConst(halfplane(0)))),
        ]);
        let opt = optimize(&f);
        assert!(matches!(opt, Func::Filter(_)), "{opt:?}");
        let d = db();
        let input = Value::Coll(vec![
            Value::cst(halfplane(2)),
            Value::cst(halfplane(-3)),
            Value::cst(empty()),
        ]);
        assert_eq!(
            eval(&f, &d, &input).unwrap(),
            eval(&opt, &d, &input).unwrap()
        );
    }

    #[test]
    fn hoist_chain_reaches_front() {
        // Filter(sat) ∘ α(canon) ∘ α(project): maps fuse, the fused body
        // is still satisfiability-preserving, the filter hoists past it.
        let f = Func::Compose(vec![
            Func::Filter(Box::new(Func::Satisfiable)),
            Func::ApplyToAll(Box::new(Func::Canonicalize)),
            Func::ApplyToAll(Box::new(Func::CstProject(vec![Var::new("x")]))),
        ]);
        let opt = optimize(&f);
        match &opt {
            Func::Compose(fs) => {
                assert_eq!(fs.len(), 2, "{opt:?}");
                assert!(matches!(fs[0], Func::ApplyToAll(_)));
                assert!(matches!(fs[1], Func::Filter(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explained_reports_rules_in_application_order() {
        let f = Func::Compose(vec![
            Func::Id,
            Func::Filter(Box::new(Func::Satisfiable)),
            Func::ApplyToAll(Box::new(Func::Canonicalize)),
            Func::ApplyToAll(Box::new(Func::CstProject(vec![Var::new("x")]))),
        ]);
        let (opt, rules) = optimize_explained(&f);
        assert_eq!(opt, optimize(&f));
        assert!(rules.contains(&"eliminate_id"), "{rules:?}");
        assert!(rules.contains(&"fuse_map"), "{rules:?}");
        assert!(rules.contains(&"hoist_filter_sat"), "{rules:?}");
        // Each rule at most once, even though fixed-point iteration may
        // apply it repeatedly.
        let mut dedup = rules.clone();
        dedup.dedup();
        assert_eq!(rules, dedup);
        // A program in normal form reports no rules.
        let (_, none) = optimize_explained(&Func::Length);
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn optimize_is_idempotent() {
        let f = Func::Compose(vec![
            Func::Filter(Box::new(Func::Satisfiable)),
            Func::ApplyToAll(Box::new(Func::Canonicalize)),
            Func::ApplyToAll(Box::new(Func::CstAndConst(halfplane(1)))),
            Func::Extent("Desk".into()),
        ]);
        let once = optimize(&f);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }
}
