//! Algebra programs and their evaluator.

use crate::error::AlgebraError;
use crate::value::Value;
use lyric_constraint::{CstObject, Extremum, LinExpr, Var};
use lyric_oodb::{Database, Oid};

/// A point-free algebra program: a function from [`Value`] to [`Value`],
/// evaluated against a read-only [`Database`].
///
/// The *functional forms* (`Compose`, `Construct`, `ApplyToAll`,
/// `Filter`, `Insert`) are Backus's FP combinators, as the paper
/// prescribes; the *primitive functions* manipulate oids, tuples, class
/// extents and — centrally — constraint objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Func {
    // ----- functional forms -----
    /// The identity.
    Id,
    /// The constant function.
    Const(Value),
    /// Right-to-left composition: `Compose([f, g, h])(x) = f(g(h(x)))`.
    Compose(Vec<Func>),
    /// Tuple construction: `Construct([f, g])(x) = <f(x), g(x)>`.
    Construct(Vec<Func>),
    /// Backus's α: apply to every element of a collection.
    ApplyToAll(Box<Func>),
    /// Keep the elements of a collection on which the predicate yields
    /// `true`.
    Filter(Box<Func>),
    /// Backus's insert (right fold) with an explicit unit:
    /// `Insert(f, e)([x1, …, xn]) = f(<x1, f(<x2, … f(<xn, e>)…>)>)`.
    Insert(Box<Func>, Value),

    // ----- tuple / collection primitives -----
    /// Tuple projection (0-based).
    Select(usize),
    /// Collection length as an integer oid.
    Length,
    /// Deduplicate a collection (set semantics on demand).
    Distinct,

    // ----- database primitives -----
    /// The extent of a class, as a collection of oids (ignores its input).
    Extent(String),
    /// The value(s) of an attribute on an oid, as a collection (empty when
    /// unset; unnests set-valued attributes).
    AttrValues(String),

    // ----- boolean primitives -----
    /// Logical conjunction of a tuple of booleans (used by filter fusion).
    BoolAnd,

    // ----- constraint primitives -----
    /// Binary intersection: `<c1, c2> ↦ c1 ∧ c2`.
    CstAnd,
    /// Binary union: `<c1, c2> ↦ c1 ∨ c2`.
    CstOr,
    /// Conjoin a fixed constraint: `c ↦ c ∧ k` (the form constraint
    /// selections push around).
    CstAndConst(CstObject),
    /// Lazy projection onto a schema.
    CstProject(Vec<Var>),
    /// Satisfiability as a boolean.
    Satisfiable,
    /// Entailment of a fixed constraint: `c ↦ (c |= k)`.
    ImpliesConst(CstObject),
    /// The paper's cheap canonical form.
    Canonicalize,
    /// The strong canonical form (LP-based redundancy removal + disjunct
    /// subsumption) — expensive, satisfiability-preserving.
    StrongCanonicalize,
    /// Eager elimination of all existentially quantified variables
    /// (Fourier–Motzkin) — potentially very expensive (benchmark E5), and
    /// expensive *even on unsatisfiable objects* since it is purely
    /// syntactic; satisfiability-preserving.
    EliminateBound,
    /// Supremum of a linear objective, as a rational oid.
    Maximize(LinExpr),
}

impl Func {
    /// Convenience: composition of two programs.
    pub fn then(self, outer: Func) -> Func {
        Func::Compose(vec![outer, self])
    }
}

/// Evaluate a program on an input value.
pub fn eval(f: &Func, db: &Database, v: &Value) -> Result<Value, AlgebraError> {
    match f {
        Func::Id => Ok(v.clone()),
        Func::Const(k) => Ok(k.clone()),
        Func::Compose(fs) => {
            let mut cur = v.clone();
            for g in fs.iter().rev() {
                cur = eval(g, db, &cur)?;
            }
            Ok(cur)
        }
        Func::Construct(fs) => {
            let mut out = Vec::with_capacity(fs.len());
            for g in fs {
                out.push(eval(g, db, v)?);
            }
            Ok(Value::Tuple(out))
        }
        Func::ApplyToAll(g) => {
            let items = v
                .as_coll()
                .ok_or_else(|| AlgebraError::type_err("collection", v))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(eval(g, db, item)?);
            }
            Ok(Value::Coll(out))
        }
        Func::Filter(p) => {
            let items = v
                .as_coll()
                .ok_or_else(|| AlgebraError::type_err("collection", v))?;
            let mut out = Vec::new();
            for item in items {
                let keep = eval(p, db, item)?;
                match keep.as_bool() {
                    Some(true) => out.push(item.clone()),
                    Some(false) => {}
                    None => return Err(AlgebraError::type_err("boolean predicate", &keep)),
                }
            }
            Ok(Value::Coll(out))
        }
        Func::Insert(g, unit) => {
            let items = v
                .as_coll()
                .ok_or_else(|| AlgebraError::type_err("collection", v))?;
            let mut acc = unit.clone();
            for item in items.iter().rev() {
                acc = eval(g, db, &Value::Tuple(vec![item.clone(), acc]))?;
            }
            Ok(acc)
        }
        Func::Select(i) => {
            let items = v
                .as_tuple()
                .ok_or_else(|| AlgebraError::type_err("tuple", v))?;
            items.get(*i).cloned().ok_or(AlgebraError::Index {
                index: *i,
                arity: items.len(),
            })
        }
        Func::Length => {
            let items = v
                .as_coll()
                .ok_or_else(|| AlgebraError::type_err("collection", v))?;
            Ok(Value::Oid(Oid::Int(items.len() as i64)))
        }
        Func::Distinct => {
            let items = v
                .as_coll()
                .ok_or_else(|| AlgebraError::type_err("collection", v))?;
            let mut out: Vec<Value> = Vec::new();
            for item in items {
                if !out.contains(item) {
                    out.push(item.clone());
                }
            }
            Ok(Value::Coll(out))
        }
        Func::Extent(class) => {
            if !db.schema().has_class(class) {
                return Err(AlgebraError::UnknownClass(class.clone()));
            }
            Ok(Value::Coll(
                db.extent(class).into_iter().map(Value::Oid).collect(),
            ))
        }
        Func::AttrValues(attr) => {
            let oid = match v {
                Value::Oid(o) => o,
                other => return Err(AlgebraError::type_err("oid", other)),
            };
            let vals = db
                .attr(oid, attr)
                .map(|value| value.iter().cloned().map(Value::Oid).collect())
                .unwrap_or_default();
            Ok(Value::Coll(vals))
        }
        Func::BoolAnd => {
            let items = v
                .as_tuple()
                .ok_or_else(|| AlgebraError::type_err("tuple of booleans", v))?;
            let mut acc = true;
            for item in items {
                match item.as_bool() {
                    Some(b) => acc = acc && b,
                    None => return Err(AlgebraError::type_err("tuple of booleans", v)),
                }
            }
            Ok(Value::bool(acc))
        }
        Func::CstAnd | Func::CstOr => {
            let items = v
                .as_tuple()
                .ok_or_else(|| AlgebraError::type_err("tuple of two constraints", v))?;
            let [a, b] = items else {
                return Err(AlgebraError::type_err("tuple of two constraints", v));
            };
            let (ca, cb) = match (a.as_cst(), b.as_cst()) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err(AlgebraError::type_err("tuple of two constraints", v)),
            };
            let out = if matches!(f, Func::CstAnd) {
                ca.and(cb)
            } else {
                ca.or(cb)
            };
            Ok(Value::cst(out))
        }
        Func::CstAndConst(k) => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            Ok(Value::cst(c.and(k)))
        }
        Func::CstProject(schema) => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            Ok(Value::cst(c.project(schema.clone())))
        }
        Func::Satisfiable => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            Ok(Value::bool(c.satisfiable()))
        }
        Func::ImpliesConst(k) => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            if c.arity() != k.arity() {
                return Err(AlgebraError::type_err(
                    "constraint object of matching dimension",
                    v,
                ));
            }
            Ok(Value::bool(c.implies(k)))
        }
        Func::Canonicalize => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            Ok(Value::cst(c.canonicalize()))
        }
        Func::StrongCanonicalize => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            Ok(Value::cst(c.strong_canonical()))
        }
        Func::EliminateBound => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            Ok(Value::cst(c.eliminate_bound()))
        }
        Func::Maximize(objective) => {
            let c = v
                .as_cst()
                .ok_or_else(|| AlgebraError::type_err("constraint object", v))?;
            match c.maximize(objective) {
                Extremum::Finite { bound, .. } => Ok(Value::Oid(Oid::Rat(bound))),
                Extremum::Unbounded => Err(AlgebraError::Unbounded),
                Extremum::Infeasible => Err(AlgebraError::Empty),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric::paper_example;
    use lyric_arith::Rational;
    use lyric_constraint::{Atom, Conjunction};

    fn db() -> Database {
        paper_example::database()
    }

    fn halfplane(var: &str, lo: i64) -> CstObject {
        CstObject::from_conjunction(
            vec![Var::new(var)],
            Conjunction::of([Atom::ge(LinExpr::var(Var::new(var)), LinExpr::from(lo))]),
        )
    }

    #[test]
    fn fp_forms() {
        let db = db();
        let input = Value::Coll(vec![
            Value::Oid(Oid::Int(1)),
            Value::Oid(Oid::Int(2)),
            Value::Oid(Oid::Int(1)),
        ]);
        // α id = id on collections.
        let mapped = eval(&Func::ApplyToAll(Box::new(Func::Id)), &db, &input).unwrap();
        assert_eq!(mapped, input);
        // Distinct then Length.
        let count = eval(
            &Func::Compose(vec![Func::Length, Func::Distinct]),
            &db,
            &input,
        )
        .unwrap();
        assert_eq!(count, Value::Oid(Oid::Int(2)));
        // Construct + Select round-trip.
        let pair = eval(
            &Func::Construct(vec![Func::Id, Func::Const(Value::bool(true))]),
            &db,
            &Value::Oid(Oid::Int(7)),
        )
        .unwrap();
        assert_eq!(
            eval(&Func::Select(0), &db, &pair).unwrap(),
            Value::Oid(Oid::Int(7))
        );
        assert!(matches!(
            eval(&Func::Select(5), &db, &pair),
            Err(AlgebraError::Index { .. })
        ));
    }

    #[test]
    fn insert_fold_intersects_constraints() {
        // /CstAnd over [x ≥ 0, x ≥ 2, x ≥ -1] with unit ⊤ = x ≥ 2.
        let db = db();
        let input = Value::Coll(vec![
            Value::cst(halfplane("x", 0)),
            Value::cst(halfplane("x", 2)),
            Value::cst(halfplane("x", -1)),
        ]);
        let unit = Value::cst(CstObject::top(vec![Var::new("x")]));
        let folded = eval(&Func::Insert(Box::new(Func::CstAnd), unit), &db, &input).unwrap();
        let out = folded.as_cst().unwrap();
        assert!(out.denotes_same(&halfplane("x", 2)));
    }

    #[test]
    fn database_primitives() {
        let db = db();
        let desks = eval(&Func::Extent("Desk".into()), &db, &Value::Coll(vec![])).unwrap();
        assert_eq!(desks.as_coll().unwrap().len(), 1);
        // extent ∘ α(attr extent): drawer extents of all desks.
        let prog = Func::Compose(vec![
            Func::ApplyToAll(Box::new(Func::Compose(vec![
                Func::Select(0),
                Func::AttrValues("extent".into()),
                Func::Select(0),
                Func::ApplyToAll(Box::new(Func::AttrValues("drawer".into()).then(Func::Id))),
                Func::Construct(vec![Func::AttrValues("drawer".into())]),
            ]))),
            Func::Extent("Desk".into()),
        ]);
        // (The nested plumbing above is deliberately verbose FP; the
        // simpler path below is what optimizing would produce.)
        let _ = prog;
        let simple = Func::Compose(vec![
            Func::ApplyToAll(Box::new(Func::AttrValues("extent".into()))),
            Func::Extent("Desk".into()),
        ]);
        let extents = eval(&simple, &db, &Value::Coll(vec![])).unwrap();
        let first = &extents.as_coll().unwrap()[0].as_coll().unwrap()[0];
        assert!(first.as_cst().unwrap().satisfiable());
        assert!(matches!(
            eval(&Func::Extent("Nope".into()), &db, &Value::Coll(vec![])),
            Err(AlgebraError::UnknownClass(_))
        ));
    }

    #[test]
    fn constraint_primitives() {
        let db = db();
        let c = Value::cst(halfplane("x", 3));
        assert_eq!(
            eval(&Func::Satisfiable, &db, &c).unwrap(),
            Value::bool(true)
        );
        assert_eq!(
            eval(&Func::ImpliesConst(halfplane("x", 0)), &db, &c).unwrap(),
            Value::bool(true)
        );
        assert_eq!(
            eval(&Func::ImpliesConst(halfplane("x", 5)), &db, &c).unwrap(),
            Value::bool(false)
        );
        // CstAndConst narrows.
        let narrowed = eval(&Func::CstAndConst(halfplane("x", 10)), &db, &c).unwrap();
        assert!(narrowed.as_cst().unwrap().denotes_same(&halfplane("x", 10)));
        // Maximize over a box.
        let boxed = Value::cst(paper_example::box2("w", "z", -4, 4, -2, 2));
        let sup = eval(
            &Func::Maximize(LinExpr::var(Var::new("w")) + LinExpr::var(Var::new("z"))),
            &db,
            &boxed,
        )
        .unwrap();
        assert_eq!(sup, Value::Oid(Oid::Rat(Rational::from_int(6))));
        // Unbounded and empty are typed errors.
        assert!(matches!(
            eval(&Func::Maximize(LinExpr::var(Var::new("x"))), &db, &c),
            Err(AlgebraError::Unbounded)
        ));
        let empty = Value::cst(CstObject::bottom(vec![Var::new("x")]));
        assert!(matches!(
            eval(&Func::Maximize(LinExpr::var(Var::new("x"))), &db, &empty),
            Err(AlgebraError::Empty)
        ));
    }

    #[test]
    fn filter_requires_boolean() {
        let db = db();
        let input = Value::Coll(vec![Value::Oid(Oid::Int(1))]);
        assert!(matches!(
            eval(&Func::Filter(Box::new(Func::Id)), &db, &input),
            Err(AlgebraError::Type { .. })
        ));
    }
}
