//! Values of the constraint algebra.

use lyric_constraint::CstObject;
use lyric_oodb::Oid;
use std::fmt;

/// An algebra value: an oid (which may itself be a constraint object, a
/// number, a string, …), a tuple, or a collection. Collections are
/// ordered and may contain duplicates (the paper's "sets, lists"); the
/// primitives that need set semantics deduplicate explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Oid(Oid),
    Tuple(Vec<Value>),
    Coll(Vec<Value>),
}

impl Value {
    /// A boolean as an oid value.
    pub fn bool(b: bool) -> Value {
        Value::Oid(Oid::Bool(b))
    }

    /// A constraint object as an oid value (canonicalizing).
    pub fn cst(c: CstObject) -> Value {
        Value::Oid(Oid::cst(c))
    }

    /// The truth value, if this is a boolean oid.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Oid(Oid::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// The constraint object, if this is a constraint oid.
    pub fn as_cst(&self) -> Option<&CstObject> {
        match self {
            Value::Oid(o) => o.as_cst(),
            _ => None,
        }
    }

    /// The elements, if this is a collection.
    pub fn as_coll(&self) -> Option<&[Value]> {
        match self {
            Value::Coll(items) => Some(items),
            _ => None,
        }
    }

    /// The components, if this is a tuple.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(items) => Some(items),
            _ => None,
        }
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Value {
        Value::Oid(o)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Oid(o) => write!(f, "{o}"),
            Value::Tuple(items) => {
                write!(f, "<")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
            Value::Coll(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::Oid(Oid::Int(3)).as_bool(), None);
        let t = Value::Tuple(vec![Value::bool(false), Value::Oid(Oid::Int(1))]);
        assert_eq!(t.as_tuple().unwrap().len(), 2);
        assert!(t.as_coll().is_none());
        let c = Value::Coll(vec![t.clone()]);
        assert_eq!(c.as_coll().unwrap().len(), 1);
    }

    #[test]
    fn display() {
        let t = Value::Tuple(vec![Value::Oid(Oid::Int(1)), Value::Oid(Oid::str("a"))]);
        assert_eq!(t.to_string(), "<1, 'a'>");
        let c = Value::Coll(vec![Value::Oid(Oid::Int(1)), Value::Oid(Oid::Int(2))]);
        assert_eq!(c.to_string(), "[1, 2]");
    }
}
