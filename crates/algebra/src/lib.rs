//! The FP-style constraint algebra — §5's announced "more sophisticated
//! implementation", built out as a working prototype.
//!
//! The paper sketches it precisely:
//!
//! > "a constraint algebra in which higher-order operators manipulate
//! > collections of objects (e.g. sets, lists) some of whose elements may
//! > be constraints. Thus, the algebra is an FP-like language \[Bac78,
//! > BK93\] in which functional forms capture common data collections
//! > processing abstractions such as filtering elements, and applying a
//! > function to all elements of a collection, and primitive functions
//! > manipulate objects of different types such as intersecting
//! > constraints. … the algebra will have to accommodate some new
//! > optimization frameworks, such as the one in \[BJM93\]."
//!
//! This crate provides exactly that:
//!
//! * [`Value`] — oids (including constraint objects), tuples, and
//!   collections;
//! * [`Func`] — point-free programs: FP functional forms (`Compose`,
//!   `Construct`, `ApplyToAll` (Backus's α), `Filter`, `Insert`
//!   (Backus's /)) over primitive functions on the database
//!   (`Extent`, `AttrValues`) and on constraints (`CstAnd`, `CstOr`,
//!   `CstProject`, `Satisfiable`, `Implies`, `Canonicalize`, `Maximize`);
//! * [`eval`] — the evaluator, over a read-only
//!   [`Database`](lyric_oodb::Database);
//! * [`optimize`] — a rewrite-based optimizer in the BJM93 spirit:
//!   composition flattening, map fusion, filter fusion, and
//!   **constraint-selection pushdown** (filters commute ahead of
//!   expensive per-element maps), with semantics-preservation tested by
//!   property tests.

//! # Example
//!
//! ```
//! use lyric_algebra::{eval, optimize, Func, Value};
//! use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
//! use lyric_oodb::{Database, Schema};
//!
//! let db = Database::new(Schema::new()).unwrap();
//! let x = || LinExpr::var(Var::new("x"));
//! let region = |lo: i64| CstObject::from_conjunction(
//!     vec![Var::new("x")],
//!     Conjunction::of([Atom::ge(x(), LinExpr::from(lo))]),
//! );
//!
//! // Filter(sat) ∘ α(canonicalize): keep the feasible regions.
//! let prog = Func::Compose(vec![
//!     Func::Filter(Box::new(Func::Satisfiable)),
//!     Func::ApplyToAll(Box::new(Func::Canonicalize)),
//! ]);
//! let input = Value::Coll(vec![
//!     Value::cst(region(0)),
//!     Value::cst(CstObject::bottom(vec![Var::new("x")])),
//! ]);
//! let out = eval(&prog, &db, &input).unwrap();
//! assert_eq!(out.as_coll().unwrap().len(), 1);
//!
//! // The optimizer hoists the filter ahead of the (sat-preserving) map.
//! let optimized = optimize(&prog);
//! assert_eq!(eval(&optimized, &db, &input).unwrap(), out);
//! ```

mod error;
mod func;
mod optimize;
mod value;

pub use error::AlgebraError;
pub use func::{eval, Func};
pub use optimize::{optimize, optimize_explained};
pub use value::Value;
