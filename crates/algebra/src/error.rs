//! Algebra evaluation errors.

use lyric_constraint::ConstraintError;
use std::fmt;

/// Errors raised while evaluating an algebra program.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// A primitive received a value of the wrong shape (with a
    /// description of what it expected).
    Type { expected: &'static str, got: String },
    /// Tuple index out of bounds.
    Index { index: usize, arity: usize },
    /// A referenced class does not exist.
    UnknownClass(String),
    /// Optimization of an unbounded objective.
    Unbounded,
    /// Optimization over an empty set.
    Empty,
    /// Underlying constraint-engine error.
    Constraint(ConstraintError),
}

impl AlgebraError {
    pub(crate) fn type_err(expected: &'static str, got: &impl fmt::Display) -> AlgebraError {
        AlgebraError::Type {
            expected,
            got: got.to_string(),
        }
    }
}

impl From<ConstraintError> for AlgebraError {
    fn from(e: ConstraintError) -> Self {
        AlgebraError::Constraint(e)
    }
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            AlgebraError::Index { index, arity } => {
                write!(f, "tuple index {index} out of bounds for arity {arity}")
            }
            AlgebraError::UnknownClass(c) => write!(f, "unknown class {c}"),
            AlgebraError::Unbounded => write!(f, "objective is unbounded"),
            AlgebraError::Empty => write!(f, "optimization over an empty constraint set"),
            AlgebraError::Constraint(e) => write!(f, "constraint error: {e}"),
        }
    }
}

impl std::error::Error for AlgebraError {}
