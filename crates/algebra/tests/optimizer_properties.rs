//! Property tests: `optimize` preserves semantics on randomly generated
//! well-typed programs over collections of random constraint objects.

use lyric_algebra::{eval, optimize, Func, Value};
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::Database;
use proptest::prelude::*;

fn x() -> Var {
    Var::new("x")
}
fn y() -> Var {
    Var::new("y")
}

/// A random 2-D constraint object (possibly empty, possibly a union).
fn cst_strategy() -> impl Strategy<Value = CstObject> {
    let atom = (-4..=4i32, -4..=4i32, -8..=8i32, 0..3u8).prop_map(|(a, b, c, op)| {
        let e = LinExpr::term(x(), lyric_arith::Rational::from_int(a as i64))
            + LinExpr::term(y(), lyric_arith::Rational::from_int(b as i64));
        let rhs = LinExpr::from(c as i64);
        match op {
            0 => Atom::le(e, rhs),
            1 => Atom::lt(e, rhs),
            _ => Atom::ge(e, rhs),
        }
    });
    proptest::collection::vec(proptest::collection::vec(atom, 0..4), 1..3)
        .prop_map(|dss| CstObject::new(vec![x(), y()], dss.into_iter().map(Conjunction::of)))
}

/// Element-level functions `Cst → Cst`.
fn elem_fn_strategy() -> impl Strategy<Value = Func> {
    let leaf = prop_oneof![
        Just(Func::Id),
        Just(Func::Canonicalize),
        cst_strategy().prop_map(Func::CstAndConst),
        // Arity-preserving rebinding (arity-changing projections would
        // make randomly composed predicates ill-typed).
        Just(Func::CstProject(vec![Var::new("x"), Var::new("y")])),
    ];
    proptest::collection::vec(leaf, 1..3).prop_map(Func::Compose)
}

/// Predicates `Cst → Bool`.
fn pred_strategy() -> impl Strategy<Value = Func> {
    prop_oneof![
        Just(Func::Satisfiable),
        cst_strategy().prop_map(Func::ImpliesConst),
        (cst_strategy(), Just(Func::Satisfiable)).prop_map(|(k, _)| {
            // sat(c ∧ k): a composed predicate exercising pushdown output
            // shapes as input shapes.
            Func::Compose(vec![Func::Satisfiable, Func::CstAndConst(k)])
        }),
    ]
}

/// Collection-level pipelines `Coll<Cst> → Coll<Cst>`.
fn pipeline_strategy() -> impl Strategy<Value = Func> {
    let stage = prop_oneof![
        elem_fn_strategy().prop_map(|f| Func::ApplyToAll(Box::new(f))),
        pred_strategy().prop_map(|p| Func::Filter(Box::new(p))),
        Just(Func::Distinct),
    ];
    proptest::collection::vec(stage, 1..5).prop_map(Func::Compose)
}

fn input_strategy() -> impl Strategy<Value = Vec<CstObject>> {
    proptest::collection::vec(cst_strategy(), 0..4)
}

fn empty_db() -> Database {
    Database::new(lyric_oodb::Schema::new()).expect("empty schema validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimizer never changes a pipeline's output (or its failure).
    #[test]
    fn optimize_preserves_semantics(prog in pipeline_strategy(), input in input_strategy()) {
        let db = empty_db();
        let v = Value::Coll(input.into_iter().map(Value::cst).collect());
        let direct = eval(&prog, &db, &v);
        let optimized_prog = optimize(&prog);
        let optimized = eval(&optimized_prog, &db, &v);
        match (direct, optimized) {
            (Ok(a), Ok(b)) => {
                // Compare by point-set semantics element-wise: oid values
                // of constraint objects are canonical forms, which cheap
                // rewrites may or may not reach — compare denotations.
                let (ac, bc) = (a.as_coll().unwrap(), b.as_coll().unwrap());
                prop_assert_eq!(ac.len(), bc.len());
                for (av, bv) in ac.iter().zip(bc) {
                    let (ao, bo) = (av.as_cst().unwrap(), bv.as_cst().unwrap());
                    prop_assert_eq!(ao.arity(), bo.arity(),
                        "arity drift: {} vs {}", ao, bo);
                    prop_assert!(ao.denotes_same(&bo.align_to(ao.free())),
                        "denotation drift: {} vs {}", ao, bo);
                }
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}"),
        }
    }

    /// Optimization reaches a fixed point (idempotence).
    #[test]
    fn optimize_idempotent(prog in pipeline_strategy()) {
        let once = optimize(&prog);
        prop_assert_eq!(optimize(&once), once);
    }
}
