//! Property-based tests for the constraint engine.
//!
//! The oracle throughout is point semantics: a constraint denotes a set of
//! rational points, and every operation must respect membership of sampled
//! points.

use lyric_arith::Rational;
use lyric_constraint::{
    Assignment, Atom, Conjunction, CstObject, Dnf, LinExpr, NormOp, RelOp, Var,
};
use proptest::prelude::*;

const NVARS: usize = 3;

fn var(i: usize) -> Var {
    Var::new(format!("v{i}"))
}

#[derive(Debug, Clone)]
struct RawAtom {
    coeffs: Vec<i32>,
    op: RelOp,
    rhs: i32,
}

fn relop_strategy() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        4 => Just(RelOp::Le),
        2 => Just(RelOp::Lt),
        2 => Just(RelOp::Ge),
        1 => Just(RelOp::Gt),
        2 => Just(RelOp::Eq),
        1 => Just(RelOp::Neq),
    ]
}

fn atom_strategy() -> impl Strategy<Value = RawAtom> {
    (
        proptest::collection::vec(-3..=3i32, NVARS),
        relop_strategy(),
        -8..=8i32,
    )
        .prop_map(|(coeffs, op, rhs)| RawAtom { coeffs, op, rhs })
}

fn build_atom(raw: &RawAtom) -> Atom {
    let mut e = LinExpr::zero();
    for (i, &c) in raw.coeffs.iter().enumerate() {
        if c != 0 {
            e = e + LinExpr::term(var(i), Rational::from_int(c as i64));
        }
    }
    Atom::new(e, raw.op, LinExpr::from(raw.rhs as i64))
}

fn conj_strategy() -> impl Strategy<Value = Vec<RawAtom>> {
    proptest::collection::vec(atom_strategy(), 0..6)
}

fn build_conj(raws: &[RawAtom]) -> Conjunction {
    Conjunction::of(raws.iter().map(build_atom))
}

fn point_strategy() -> impl Strategy<Value = Vec<i32>> {
    proptest::collection::vec(-5..=5i32, NVARS)
}

fn assignment(p: &[i32]) -> Assignment {
    p.iter()
        .enumerate()
        .map(|(i, &v)| (var(i), Rational::from_int(v as i64)))
        .collect()
}

proptest! {
    /// A sampled satisfying point proves satisfiability; a solver witness
    /// satisfies the conjunction.
    #[test]
    fn satisfiability_against_point_semantics(raws in conj_strategy(), p in point_strategy()) {
        let c = build_conj(&raws);
        if c.eval(&assignment(&p)) {
            prop_assert!(c.satisfiable(), "point {p:?} satisfies {c} but solver says unsat");
        }
        match c.find_point() {
            Some(w) => {
                prop_assert!(c.eval(&w), "witness {w:?} does not satisfy {c}");
                prop_assert!(c.satisfiable());
            }
            None => prop_assert!(!c.satisfiable()),
        }
    }

    /// Atom negation is a complement pointwise; conjunction negation (as a
    /// DNF) is a complement pointwise.
    #[test]
    fn negation_complement(raws in conj_strategy(), p in point_strategy()) {
        let c = build_conj(&raws);
        let point = assignment(&p);
        let neg = Dnf::negate_conjunction(&c);
        prop_assert_ne!(c.eval(&point), neg.eval(&point),
                        "complement failed for {} at {:?}", c, p);
    }

    /// `implies` is sound on sampled points: if P |= Q, every sampled
    /// point of P is a point of Q.
    #[test]
    fn entailment_sound(raws1 in conj_strategy(), raws2 in conj_strategy(), p in point_strategy()) {
        let a = build_conj(&raws1);
        let b = build_conj(&raws2);
        let point = assignment(&p);
        if a.implies(&b) && a.eval(&point) {
            prop_assert!(b.eval(&point), "{} |= {} but {:?} ∈ lhs \\ rhs", a, b, p);
        }
        // Reflexivity and bottom.
        prop_assert!(a.implies(&a));
        prop_assert!(Conjunction::bottom().implies(&a));
    }

    /// Variable elimination is sound and complete against point semantics:
    /// a point over the remaining variables is in the projection iff it
    /// extends to the eliminated variable.
    #[test]
    fn elimination_matches_exists(raws in conj_strategy(), p in point_strategy()) {
        let c = build_conj(&raws);
        let v0 = var(0);
        // DNF-level elimination is total (splits disequations).
        let projected = Dnf::from_conjunction(c.clone()).eliminate(&v0);
        // Ground the remaining variables.
        let mut grounded = c.clone();
        let mut proj_grounded = projected.clone();
        for (i, &val) in p.iter().enumerate().skip(1) {
            let e = LinExpr::constant(Rational::from_int(val as i64));
            grounded = grounded.substitute(&var(i), &e);
            proj_grounded = proj_grounded.substitute(&var(i), &e);
        }
        let has_extension = grounded.satisfiable();
        let in_projection = proj_grounded.satisfiable();
        prop_assert_eq!(in_projection, has_extension,
                        "projection mismatch for {} at {:?}", c, p);
    }

    /// DNF conjunction and disjunction respect point semantics.
    #[test]
    fn dnf_lattice_ops(raws1 in conj_strategy(), raws2 in conj_strategy(), p in point_strategy()) {
        let a = Dnf::from_conjunction(build_conj(&raws1));
        let b = Dnf::from_conjunction(build_conj(&raws2));
        let point = assignment(&p);
        prop_assert_eq!(a.and(&b).eval(&point), a.eval(&point) && b.eval(&point));
        prop_assert_eq!(a.or(&b).eval(&point), a.eval(&point) || b.eval(&point));
    }

    /// The paper's cheap simplification and the strong canonical form both
    /// preserve denotation.
    #[test]
    fn simplification_preserves_denotation(raws1 in conj_strategy(), raws2 in conj_strategy(),
                                           p in point_strategy()) {
        let d = Dnf::of([build_conj(&raws1), build_conj(&raws2)]);
        let point = assignment(&p);
        prop_assert_eq!(d.simplify().eval(&point), d.eval(&point));
        prop_assert_eq!(d.strong_simplify().eval(&point), d.eval(&point));
        let c = build_conj(&raws1);
        prop_assert_eq!(c.remove_redundant().eval(&point), c.eval(&point));
    }

    /// CST objects: `and` is intersection, `or` is union on sampled
    /// points; canonicalization preserves membership.
    #[test]
    fn cst_object_set_semantics(raws1 in conj_strategy(), raws2 in conj_strategy(),
                                p in point_strategy()) {
        let free: Vec<Var> = (0..NVARS).map(var).collect();
        let a = CstObject::from_conjunction(free.clone(), build_conj(&raws1));
        let b = CstObject::from_conjunction(free.clone(), build_conj(&raws2));
        let pt: Vec<Rational> = p.iter().map(|&v| Rational::from_int(v as i64)).collect();
        let in_a = a.contains_point(&pt);
        let in_b = b.contains_point(&pt);
        prop_assert_eq!(a.and(&b).contains_point(&pt), in_a && in_b);
        prop_assert_eq!(a.or(&b).contains_point(&pt), in_a || in_b);
        prop_assert_eq!(a.canonicalize().contains_point(&pt), in_a);
    }

    /// Lazy projection and eager elimination denote the same set.
    #[test]
    fn lazy_and_eager_projection_agree(raws in conj_strategy(), p in point_strategy()) {
        let free: Vec<Var> = (0..NVARS).map(var).collect();
        let obj = CstObject::from_conjunction(free, build_conj(&raws));
        let keep: Vec<Var> = (1..NVARS).map(var).collect();
        let lazy = obj.project(keep.clone());
        let eager = lazy.eliminate_bound();
        let pt: Vec<Rational> =
            p.iter().skip(1).map(|&v| Rational::from_int(v as i64)).collect();
        prop_assert_eq!(lazy.contains_point(&pt), eager.contains_point(&pt),
                        "lazy vs eager at {:?} on {}", p, obj);
    }

    /// Optimization: the reported supremum dominates the objective at
    /// every sampled satisfying point.
    #[test]
    fn maximize_dominates_points(raws in conj_strategy(),
                                 obj_coeffs in proptest::collection::vec(-3..=3i32, NVARS),
                                 p in point_strategy()) {
        let c = build_conj(&raws);
        let mut objective = LinExpr::zero();
        for (i, &k) in obj_coeffs.iter().enumerate() {
            if k != 0 {
                objective = objective + LinExpr::term(var(i), Rational::from_int(k as i64));
            }
        }
        let point = assignment(&p);
        match c.maximize(&objective) {
            lyric_constraint::Extremum::Infeasible => prop_assert!(!c.eval(&point)),
            lyric_constraint::Extremum::Unbounded => {}
            lyric_constraint::Extremum::Finite { bound, attained, witness } => {
                if c.eval(&point) {
                    prop_assert!(objective.eval(&point) <= bound);
                }
                prop_assert!(c.eval(&witness), "witness must satisfy the conjunction");
                if attained {
                    prop_assert_eq!(objective.eval(&witness), bound);
                }
            }
        }
    }

    /// Atom normalization is scale-invariant and negation is involutive.
    #[test]
    fn atom_normal_form(raw in atom_strategy(), scale in 1..=4i32) {
        let a = build_atom(&raw);
        // Scaling both sides by a positive constant normalizes away.
        let mut e = LinExpr::zero();
        for (i, &c) in raw.coeffs.iter().enumerate() {
            if c != 0 {
                e = e + LinExpr::term(var(i), Rational::from_int((c * scale) as i64));
            }
        }
        let scaled = Atom::new(e, raw.op, LinExpr::from((raw.rhs * scale) as i64));
        prop_assert_eq!(&scaled, &a);
        prop_assert_eq!(a.negate().negate(), a);
    }

    /// Disequation handling: puncturing a conjunction by one of its
    /// interior points keeps it satisfiable and keeps entailment of the
    /// unpunctured set.
    #[test]
    fn disequation_puncture(raws in conj_strategy()) {
        let c = build_conj(&raws);
        if let Some(w) = c.find_point() {
            // Puncture at the witness: v0 ≠ w[v0] removes at most a
            // hyperplane.
            let v0val = w.get(&var(0)).cloned().unwrap_or_else(Rational::zero);
            let punctured = c.and_atom(Atom::neq(
                LinExpr::var(var(0)),
                LinExpr::constant(v0val),
            ));
            // The punctured set entails the original.
            prop_assert!(punctured.implies(&c));
            // Membership at the witness itself is gone.
            prop_assert!(!punctured.eval(&w));
        }
    }
}

/// Non-proptest regression: the four-family classification matches the
/// §3.1 definitions on constructed examples.
#[test]
fn family_classification_examples() {
    use lyric_constraint::CstFamily;
    let x = var(0);
    let conj = CstObject::from_conjunction(
        vec![x.clone()],
        Conjunction::of([Atom::ge(LinExpr::var(x.clone()), LinExpr::from(0))]),
    );
    assert_eq!(conj.family(), CstFamily::Conjunctive);
    let exist = conj.and(&CstObject::new(
        vec![x.clone()],
        [Conjunction::of([Atom::le(
            LinExpr::var(x.clone()),
            LinExpr::var(Var::new("hidden")),
        )])],
    ));
    assert_eq!(exist.family(), CstFamily::ExistentialConjunctive);
    let disj = conj.or(&CstObject::from_conjunction(
        vec![x.clone()],
        Conjunction::of([Atom::le(LinExpr::var(x.clone()), LinExpr::from(-5))]),
    ));
    assert_eq!(disj.family(), CstFamily::Disjunctive);
    let both = disj.or(&exist);
    assert_eq!(both.family(), CstFamily::DisjunctiveExistential);
    // NormOp surface check.
    assert_eq!(
        Atom::neq(LinExpr::var(x), LinExpr::from(0)).op(),
        NormOp::Neq
    );
}
