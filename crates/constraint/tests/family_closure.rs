//! Differential tests for the §3.1 family-closure table: the static
//! prediction [`CstFamily::apply`] must be a sound upper bound for what
//! the runtime operations actually produce, and must agree exactly with
//! runtime *legality* (an op is `None` in the table iff the evaluator
//! refuses it).
//!
//! Soundness direction: for every representative pair and every defined
//! op, `actual.family() ≤ predicted` in the inclusion lattice — the
//! runtime may land in a smaller family (e.g. a conjunction of two
//! singleton disjunct sets stays conjunctive), never a larger one.

use lyric_constraint::{Atom, Conjunction, CstFamily, CstObject, FamilyOp, LinExpr, Var};

fn v(n: &str) -> LinExpr {
    LinExpr::var(Var::new(n))
}

fn c(n: i64) -> LinExpr {
    LinExpr::from(n)
}

fn xy() -> Vec<Var> {
    vec![Var::new("x"), Var::new("y")]
}

/// One representative object per §3.1 family, all disequation-free so
/// that eager projection cannot case-split.
fn representatives() -> Vec<(CstFamily, CstObject)> {
    let conj = CstObject::new(
        xy(),
        [Conjunction::of([
            Atom::le(v("x"), c(1)),
            Atom::le(v("y"), c(2)),
        ])],
    );
    // `t` is not in the schema, so it is existentially quantified.
    let exist = CstObject::new(
        xy(),
        [Conjunction::of([
            Atom::le(v("x"), v("t")),
            Atom::le(v("t"), c(5)),
        ])],
    );
    let disj = CstObject::new(
        xy(),
        [
            Conjunction::of([Atom::le(v("x"), c(0))]),
            Conjunction::of([Atom::ge(v("x"), c(3))]),
        ],
    );
    let disj_exist = CstObject::new(
        xy(),
        [
            Conjunction::of([Atom::le(v("x"), v("t")), Atom::le(v("t"), c(0))]),
            Conjunction::of([Atom::ge(v("y"), c(7))]),
        ],
    );
    let reps = vec![
        (CstFamily::Conjunctive, conj),
        (CstFamily::ExistentialConjunctive, exist),
        (CstFamily::Disjunctive, disj),
        (CstFamily::DisjunctiveExistential, disj_exist),
    ];
    for (fam, obj) in &reps {
        assert_eq!(obj.family(), *fam, "representative mislabeled");
    }
    reps
}

/// `sub` is contained in `sup` in the inclusion lattice.
fn le(sub: CstFamily, sup: CstFamily) -> bool {
    sub.join(sup) == sup
}

#[test]
fn conjoin_prediction_bounds_runtime_and() {
    for (fa, a) in representatives() {
        for (fb, b) in representatives() {
            let predicted = fa.apply(FamilyOp::Conjoin, Some(fb)).expect("total");
            let actual = a.and(&b).family();
            assert!(
                le(actual, predicted),
                "and: {} ⋀ {} produced {}, table predicts {}",
                fa.name(),
                fb.name(),
                actual.name(),
                predicted.name()
            );
        }
    }
}

#[test]
fn disjoin_prediction_bounds_runtime_or() {
    for (fa, a) in representatives() {
        for (fb, b) in representatives() {
            let predicted = fa.apply(FamilyOp::Disjoin, Some(fb)).expect("total");
            let actual = a.or(&b).family();
            assert!(
                le(actual, predicted),
                "or: {} ⋁ {} produced {}, table predicts {}",
                fa.name(),
                fb.name(),
                actual.name(),
                predicted.name()
            );
        }
    }
}

#[test]
fn negate_legality_matches_the_table_exactly() {
    for (fam, obj) in representatives() {
        let predicted = fam.apply(FamilyOp::Negate, None);
        let actual = obj.negate();
        assert_eq!(
            predicted.is_some(),
            actual.is_ok(),
            "negate legality diverges for {}",
            fam.name()
        );
        assert_eq!(predicted.is_some(), fam.closed_under(FamilyOp::Negate));
        if let (Some(p), Ok(n)) = (predicted, actual) {
            assert!(
                le(n.family(), p),
                "negate: {} produced {}, table predicts {}",
                fam.name(),
                n.family().name(),
                p.name()
            );
        }
    }
}

#[test]
fn restricted_projection_stays_in_family() {
    // Eliminate exactly one variable — legal for every arity.
    for (fam, obj) in representatives() {
        let predicted = fam.apply(FamilyOp::ProjectRestricted, None).expect("total");
        let projected = obj
            .project_restricted(vec![Var::new("x")])
            .expect("eliminating one variable is restricted");
        assert!(
            le(projected.family(), predicted),
            "project_restricted: {} produced {}, table predicts {}",
            fam.name(),
            projected.family().name(),
            predicted.name()
        );
        // Eager elimination discharges all quantifiers: whatever the
        // input family, the output is quantifier-free.
        assert!(!projected.family().is_existential());
    }
}

#[test]
fn lazy_projection_is_bounded_by_with_existential() {
    for (fam, obj) in representatives() {
        let predicted = fam.apply(FamilyOp::Project, None).expect("total");
        assert_eq!(predicted, fam.with_existential());
        let projected = obj.project(vec![Var::new("x")]);
        assert!(
            le(projected.family(), predicted),
            "project: {} produced {}, table predicts {}",
            fam.name(),
            projected.family().name(),
            predicted.name()
        );
    }
    // The canonical witness that lazy projection genuinely escalates:
    // dropping a constrained dimension leaves it quantified.
    let conj = CstObject::new(
        xy(),
        [Conjunction::of([
            Atom::le(v("x"), v("y")),
            Atom::le(v("y"), c(1)),
        ])],
    );
    assert_eq!(conj.family(), CstFamily::Conjunctive);
    assert_eq!(
        conj.project(vec![Var::new("x")]).family(),
        CstFamily::ExistentialConjunctive
    );
}

/// The arity side of restricted projection is outside the table's reach:
/// the table says the family is closed, but eliminating 2 of 4 dimensions
/// (neither k ≤ 1 nor n−k ≤ 1) is still rejected at runtime.
#[test]
fn restricted_projection_arity_limit_is_orthogonal_to_the_table() {
    let free: Vec<Var> = ["a", "b", "c", "d"].iter().map(Var::new).collect();
    let obj = CstObject::new(
        free,
        [Conjunction::of([
            Atom::le(v("a"), v("b")),
            Atom::le(v("c"), v("d")),
            Atom::le(v("d"), c(1)),
        ])],
    );
    assert!(CstFamily::Conjunctive.closed_under(FamilyOp::ProjectRestricted));
    assert!(obj
        .project_restricted(vec![Var::new("a"), Var::new("b")])
        .is_err());
    // k = 1 and n − k = 1 are both fine.
    assert!(obj
        .project_restricted(vec![Var::new("a"), Var::new("b"), Var::new("c")])
        .is_ok());
    assert!(obj.project_restricted(vec![Var::new("a")]).is_ok());
}
