//! Linear arithmetic constraints (the paper's atomic formulas).
//!
//! A source-level constraint `r₁x₁ + … + rₘxₘ relop r` with
//! `relop ∈ {=, ≤, <, ≥, >, ≠}` (§3.1) is normalized on construction to
//! `expr ⊲ 0` with `⊲ ∈ {≤, <, =, ≠}` (`≥`/`>` are flipped by negating the
//! expression), with primitive integer coefficients and, for `=`/`≠`, a
//! positive leading coefficient. The normal form is the per-atom part of
//! the canonical forms of §3.1: structural equality of normalized atoms is
//! syntactic-duplicate detection.

use crate::linexpr::{Assignment, LinExpr};
use crate::var::Var;
use lyric_arith::{BigInt, Rational};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Euclidean gcd with `gcd(0, x) == x`, wide enough for products of two
/// `i64` magnitudes.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Relational operator of a source-level linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `=`
    Eq,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `!=`
    Neq,
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelOp::Eq => write!(f, "="),
            RelOp::Le => write!(f, "<="),
            RelOp::Lt => write!(f, "<"),
            RelOp::Ge => write!(f, ">="),
            RelOp::Gt => write!(f, ">"),
            RelOp::Neq => write!(f, "!="),
        }
    }
}

/// Operator of a *normalized* atom `expr ⊲ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NormOp {
    /// `expr <= 0`
    Le,
    /// `expr < 0`
    Lt,
    /// `expr = 0`
    Eq,
    /// `expr != 0`
    Neq,
}

impl fmt::Display for NormOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormOp::Le => write!(f, "<="),
            NormOp::Lt => write!(f, "<"),
            NormOp::Eq => write!(f, "="),
            NormOp::Neq => write!(f, "!="),
        }
    }
}

/// A normalized linear arithmetic constraint `expr ⊲ 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    expr: LinExpr,
    op: NormOp,
}

impl Atom {
    /// Build and normalize `lhs relop rhs`.
    pub fn new(lhs: LinExpr, relop: RelOp, rhs: LinExpr) -> Atom {
        let (expr, op) = match relop {
            RelOp::Le => (&lhs - &rhs, NormOp::Le),
            RelOp::Lt => (&lhs - &rhs, NormOp::Lt),
            RelOp::Ge => (&rhs - &lhs, NormOp::Le),
            RelOp::Gt => (&rhs - &lhs, NormOp::Lt),
            RelOp::Eq => (&lhs - &rhs, NormOp::Eq),
            RelOp::Neq => (&lhs - &rhs, NormOp::Neq),
        };
        Atom::normalized(expr, op)
    }

    /// Build `expr ⊲ 0` directly from a normalized operator.
    pub fn normalized(expr: LinExpr, op: NormOp) -> Atom {
        let mut atom = Atom { expr, op };
        atom.canonicalize_scale();
        atom
    }

    /// Convenience constructor for `lhs <= rhs`.
    pub fn le(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Atom {
        Atom::new(lhs.into(), RelOp::Le, rhs.into())
    }
    /// Convenience constructor for `lhs < rhs`.
    pub fn lt(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Atom {
        Atom::new(lhs.into(), RelOp::Lt, rhs.into())
    }
    /// Convenience constructor for `lhs >= rhs`.
    pub fn ge(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Atom {
        Atom::new(lhs.into(), RelOp::Ge, rhs.into())
    }
    /// Convenience constructor for `lhs > rhs`.
    pub fn gt(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Atom {
        Atom::new(lhs.into(), RelOp::Gt, rhs.into())
    }
    /// Convenience constructor for `lhs = rhs`.
    pub fn eq(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Atom {
        Atom::new(lhs.into(), RelOp::Eq, rhs.into())
    }
    /// Convenience constructor for `lhs != rhs`.
    pub fn neq(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Atom {
        Atom::new(lhs.into(), RelOp::Neq, rhs.into())
    }

    /// Scale to primitive integer coefficients; sign-normalize symmetric
    /// operators (`=`, `≠`) so the leading (smallest-variable) coefficient
    /// is positive.
    fn canonicalize_scale(&mut self) {
        if self.expr.is_constant() {
            // Constant atoms normalize their constant to a sign only, so
            // trivially-true/false atoms are syntactically recognizable.
            let c = self.expr.constant_term().clone();
            self.expr = LinExpr::constant(Rational::from_int(c.signum() as i64));
            return;
        }
        let factor = match self.small_scale_factor() {
            Some(f) => f,
            None => match self.big_scale_factor() {
                Some(f) => f,
                None => return,
            },
        };
        if factor != Rational::one() {
            self.expr = self.expr.scale(&factor);
        }
        if matches!(self.op, NormOp::Eq | NormOp::Neq) {
            let leading_negative = self
                .expr
                .terms()
                .next()
                .map(|(_, c)| c.is_negative())
                .unwrap_or(false);
            if leading_negative {
                self.expr = -&self.expr;
            }
        }
    }

    /// The canonical scaling factor (lcm of coefficient denominators over
    /// gcd of the cleared numerators) computed entirely in fixed-width
    /// integers. `None` falls back to the `BigInt` path: the fast path is
    /// off, a coefficient is stored big, or an `i128` intermediate would
    /// overflow.
    fn small_scale_factor(&self) -> Option<Rational> {
        if !lyric_arith::fast_path_enabled() {
            return None;
        }
        let coeffs = || {
            self.expr
                .terms()
                .map(|(_, c)| c)
                .chain(std::iter::once(self.expr.constant_term()))
                .filter(|c| !c.is_zero())
        };
        let mut lcm: i128 = 1;
        for c in coeffs() {
            let (_, d) = c.small_parts()?;
            let d = d as i128;
            let g = gcd_u128(lcm as u128, d as u128) as i128;
            lcm = lcm.checked_mul(d / g)?;
        }
        let mut gcd: u128 = 0;
        for c in coeffs() {
            let (n, d) = c.small_parts()?;
            let scaled = (n as i128).checked_mul(lcm / d as i128)?;
            gcd = gcd_u128(gcd, scaled.unsigned_abs());
        }
        if gcd == 0 {
            return Some(Rational::one());
        }
        let gcd = i128::try_from(gcd).ok()?;
        Some(Rational::from_i128_pair(lcm, gcd))
    }

    /// The canonical scaling factor over `BigInt`, or `None` when every
    /// coefficient is zero (nothing to scale).
    fn big_scale_factor(&self) -> Option<Rational> {
        let mut all: Vec<&Rational> = self.expr.terms().map(|(_, c)| c).collect();
        all.push(self.expr.constant_term());
        all.retain(|c| !c.is_zero());
        // lcm of denominators.
        let mut lcm = BigInt::one();
        for c in &all {
            let d = c.denom();
            let g = lcm.gcd(&d);
            lcm = &lcm * &d.div_exact(&g);
        }
        let mut gcd = BigInt::zero();
        for c in &all {
            // numerator after clearing denominators
            let scaled = &c.numer() * &lcm.div_exact(&c.denom());
            gcd = gcd.gcd(&scaled);
        }
        if gcd.is_zero() {
            return None;
        }
        Some(Rational::new(lcm, gcd))
    }

    /// The normalized left-hand side (the atom is `expr() ⊲ 0`).
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The normalized operator.
    pub fn op(&self) -> NormOp {
        self.op
    }

    /// Variables occurring in the atom.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.expr.vars()
    }

    /// Does `v` occur (with a nonzero coefficient) in the atom?
    pub fn contains(&self, v: &Var) -> bool {
        self.expr.contains(v)
    }

    /// `Some(true)`/`Some(false)` when the atom has no variables and is
    /// decidable syntactically; `None` otherwise.
    pub fn trivial(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let c = self.expr.constant_term();
        Some(match self.op {
            NormOp::Le => !c.is_positive(),
            NormOp::Lt => c.is_negative(),
            NormOp::Eq => c.is_zero(),
            NormOp::Neq => !c.is_zero(),
        })
    }

    /// The complement as a single atom: `¬(e ≤ 0) = −e < 0`,
    /// `¬(e < 0) = −e ≤ 0`, `¬(e = 0) = e ≠ 0`, `¬(e ≠ 0) = e = 0`.
    ///
    /// Closure under single-atom negation is what keeps conjunction
    /// entailment (`P |= Q`) a polynomial number of LP calls.
    pub fn negate(&self) -> Atom {
        match self.op {
            NormOp::Le => Atom::normalized(-&self.expr, NormOp::Lt),
            NormOp::Lt => Atom::normalized(-&self.expr, NormOp::Le),
            NormOp::Eq => Atom::normalized(self.expr.clone(), NormOp::Neq),
            NormOp::Neq => Atom::normalized(self.expr.clone(), NormOp::Eq),
        }
    }

    /// Evaluate at a point (unbound variables read as 0).
    pub fn eval(&self, point: &Assignment) -> bool {
        let v = self.expr.eval(point);
        match self.op {
            NormOp::Le => !v.is_positive(),
            NormOp::Lt => v.is_negative(),
            NormOp::Eq => v.is_zero(),
            NormOp::Neq => !v.is_zero(),
        }
    }

    /// Substitute a variable by an expression (re-normalizes).
    pub fn substitute(&self, v: &Var, by: &LinExpr) -> Atom {
        Atom::normalized(self.expr.substitute(v, by), self.op)
    }

    /// Rename variables (re-normalizes; renaming can merge terms).
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> Atom {
        Atom::normalized(self.expr.rename(map), self.op)
    }
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order by operator, then by rendered structure: compare term lists.
        self.op
            .cmp(&other.op)
            .then_with(|| {
                let a: Vec<_> = self.expr.terms().collect();
                let b: Vec<_> = other.expr.terms().collect();
                a.cmp(&b)
            })
            .then_with(|| self.expr.constant_term().cmp(other.expr.constant_term()))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as `terms op -constant`; when every coefficient of an
        // inequality is negative, flip the whole atom so `-w <= 1` prints
        // as the paper's `w >= -1`. (Display only — the canonical form is
        // unchanged.)
        let c = self.expr.constant_term();
        if self.expr.is_constant() {
            return write!(f, "{} {} 0", c, self.op);
        }
        let all_negative = self.expr.terms().all(|(_, k)| k.is_negative());
        let flip = all_negative && matches!(self.op, NormOp::Le | NormOp::Lt);
        let (expr, op) = if flip {
            let flipped = match self.op {
                NormOp::Le => ">=",
                NormOp::Lt => ">",
                _ => unreachable!("only inequalities flip"),
            };
            (-&self.expr, flipped)
        } else {
            let name = match self.op {
                NormOp::Le => "<=",
                NormOp::Lt => "<",
                NormOp::Eq => "=",
                NormOp::Neq => "!=",
            };
            (self.expr.clone(), name)
        };
        let c = expr.constant_term().clone();
        let terms_only = &expr - &LinExpr::constant(c.clone());
        write!(f, "{} {} {}", terms_only, op, -c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LinExpr {
        LinExpr::var(Var::new("x"))
    }
    fn y() -> LinExpr {
        LinExpr::var(Var::new("y"))
    }
    fn r(v: i64) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn ge_gt_are_flipped() {
        let a = Atom::ge(x(), LinExpr::constant(r(3)));
        let b = Atom::le(LinExpr::constant(r(3)), x());
        assert_eq!(a, b);
        assert_eq!(a.op(), NormOp::Le);
        let c = Atom::gt(x(), y());
        assert_eq!(c.op(), NormOp::Lt);
    }

    #[test]
    fn scaling_is_canonical() {
        // 2x + 4y <= 6  ≡  x + 2y <= 3
        let a = Atom::le(x().scale(&r(2)) + y().scale(&r(4)), LinExpr::constant(r(6)));
        let b = Atom::le(x() + y().scale(&r(2)), LinExpr::constant(r(3)));
        assert_eq!(a, b);
        // Fractions are cleared: x/2 <= 1/3  ≡  3x <= 2.
        let c = Atom::le(
            x().scale(&Rational::from_pair(1, 2)),
            LinExpr::constant(Rational::from_pair(1, 3)),
        );
        let d = Atom::le(x().scale(&r(3)), LinExpr::constant(r(2)));
        assert_eq!(c, d);
    }

    #[test]
    fn equality_sign_normalized() {
        // -x + y = 0  ≡  x - y = 0
        let a = Atom::eq(-&x() + y(), LinExpr::zero());
        let b = Atom::eq(x() - y(), LinExpr::zero());
        assert_eq!(a, b);
        // ...but inequalities are NOT sign-flipped (x ≤ 0 ≠ −x ≤ 0).
        let c = Atom::le(x(), LinExpr::zero());
        let d = Atom::le(-&x(), LinExpr::zero());
        assert_ne!(c, d);
    }

    #[test]
    fn trivial_detection() {
        assert_eq!(
            Atom::le(LinExpr::constant(r(1)), LinExpr::constant(r(2))).trivial(),
            Some(true)
        );
        assert_eq!(
            Atom::lt(LinExpr::constant(r(2)), LinExpr::constant(r(2))).trivial(),
            Some(false)
        );
        assert_eq!(
            Atom::eq(LinExpr::constant(r(2)), LinExpr::constant(r(2))).trivial(),
            Some(true)
        );
        assert_eq!(
            Atom::neq(LinExpr::constant(r(2)), LinExpr::constant(r(2))).trivial(),
            Some(false)
        );
        assert_eq!(Atom::le(x(), LinExpr::zero()).trivial(), None);
    }

    #[test]
    fn negation_is_involutive_and_complementary() {
        let atoms = [
            Atom::le(x(), LinExpr::constant(r(1))),
            Atom::lt(x() + y(), LinExpr::constant(r(2))),
            Atom::eq(x(), y()),
            Atom::neq(x(), LinExpr::constant(r(0))),
        ];
        let mut p = Assignment::new();
        p.insert(Var::new("x"), r(1));
        p.insert(Var::new("y"), r(2));
        for a in &atoms {
            assert_eq!(a.negate().negate(), *a, "double negation of {a}");
            assert_ne!(a.eval(&p), a.negate().eval(&p), "complementarity of {a}");
        }
    }

    #[test]
    fn evaluation() {
        let a = Atom::le(x() + y(), LinExpr::constant(r(3)));
        let mut p = Assignment::new();
        p.insert(Var::new("x"), r(1));
        p.insert(Var::new("y"), r(2));
        assert!(a.eval(&p));
        p.insert(Var::new("y"), r(3));
        assert!(!a.eval(&p));
        let strict = Atom::lt(x() + y(), LinExpr::constant(r(3)));
        p.insert(Var::new("y"), r(2));
        assert!(!strict.eval(&p));
    }

    #[test]
    fn substitution_renormalizes() {
        // x + y <= 0 with x := y  →  2y <= 0  →  y <= 0
        let a = Atom::le(x() + y(), LinExpr::zero());
        let s = a.substitute(&Var::new("x"), &y());
        assert_eq!(s, Atom::le(y(), LinExpr::zero()));
    }

    #[test]
    fn display_moves_constant_to_rhs() {
        let a = Atom::le(x() + y().scale(&r(2)), LinExpr::constant(r(5)));
        assert_eq!(a.to_string(), "x + 2y <= 5");
        let e = Atom::eq(x(), LinExpr::constant(Rational::from_pair(-7, 2)));
        assert_eq!(e.to_string(), "2x = -7");
    }

    #[test]
    fn display_flips_all_negative_inequalities() {
        // The canonical form of `w >= -1` is `-w <= 1`; it must *display*
        // in the paper's orientation.
        let a = Atom::ge(x(), LinExpr::constant(r(-1)));
        assert_eq!(a.to_string(), "x >= -1");
        let b = Atom::gt(x() + y(), LinExpr::constant(r(2)));
        assert_eq!(b.to_string(), "x + y > 2");
        // Mixed-sign inequalities stay as normalized.
        let m = Atom::le(x() - y(), LinExpr::constant(r(3)));
        assert_eq!(m.to_string(), "x - y <= 3");
        // Equalities are sign-normalized already.
        let e = Atom::eq(-&x(), LinExpr::constant(r(5)));
        assert_eq!(e.to_string(), "x = -5");
    }
}
