//! Memoization of interval boxes ([`IntervalBox::of_conjunction`]).
//!
//! The engine consults a conjunction's box before every LP-backed
//! satisfiability answer (see [`Conjunction::satisfiable`]); stored
//! constraint objects are re-tested once per enumerated binding, so the
//! box of a hot conjunction is recomputed constantly without a memo. The
//! cache mirrors the sat/entailment memo in [`crate::cache`] exactly —
//! process-global, hash-sharded maps whose values carry the
//! [`lyric_engine::generation`] they were stored under, cleared per shard
//! on overflow, with the (cheap, pure) computation run outside the lock.
//!
//! Two deliberate differences from the answer cache:
//!
//! * gating is [`lyric_engine::boxes_enabled`] (the `ExecOptions::boxes` /
//!   `LYRIC_BOXES` switch), not `cache_enabled`, so box pruning and answer
//!   memoization toggle independently;
//! * probes do **not** call `lyric_engine::note_cache` — the
//!   `cache_hits`/`cache_misses` counters report answer-memo behaviour
//!   only, and box probes happening underneath them would make those
//!   numbers depend on whether pruning is on. The box layer has its own
//!   `box_checks`/`box_prunes` counters at the call site instead.

use crate::conjunction::Conjunction;
use crate::interval::IntervalBox;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{LazyLock, Mutex, MutexGuard};

/// Number of hash-partitioned segments (matches [`crate::cache`]).
const SHARDS: usize = 16;

/// Per-shard entry bound; crossing it clears the shard.
const MAX_SHARD_ENTRIES: usize = 1_024;

/// Lock a shard, surviving poisoning (locks only guard pure map
/// operations, so the data is always consistent).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct ShardedBoxMemo {
    shards: Vec<Mutex<HashMap<Conjunction, (u64, IntervalBox)>>>,
}

impl ShardedBoxMemo {
    fn new() -> Self {
        ShardedBoxMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &Conjunction) -> &Mutex<HashMap<Conjunction, (u64, IntervalBox)>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn probe(&self, key: &Conjunction, generation: u64) -> Option<IntervalBox> {
        lock(self.shard(key))
            .get(key)
            .filter(|&&(g, _)| g == generation)
            .map(|(_, bx)| bx.clone())
    }

    fn insert(&self, key: Conjunction, generation: u64, bx: IntervalBox) {
        let mut shard = lock(self.shard(&key));
        if shard.len() >= MAX_SHARD_ENTRIES {
            shard.clear();
        }
        shard.insert(key, (generation, bx));
    }
}

static BOXES: LazyLock<ShardedBoxMemo> = LazyLock::new(ShardedBoxMemo::new);

/// Occupancy of the interval-box memo (see
/// [`crate::cache::CacheOccupancy`]).
pub fn occupancy() -> crate::cache::CacheOccupancy {
    crate::cache::CacheOccupancy {
        entries: BOXES.shards.iter().map(|s| lock(s).len()).sum(),
        capacity: SHARDS * MAX_SHARD_ENTRIES,
    }
}

/// The (memoized, when a boxes-enabled context is installed) interval box
/// of `c`. Outside any context, or with boxes disabled, this computes the
/// box directly without touching the cache.
pub(crate) fn box_of(c: &Conjunction) -> IntervalBox {
    if !lyric_engine::boxes_enabled() {
        return IntervalBox::of_conjunction(c);
    }
    let generation = lyric_engine::generation();
    if let Some(bx) = BOXES.probe(c, generation) {
        return bx;
    }
    // Compute outside the lock; duplicated work on a racing miss is
    // benign (the box is a pure function of the key, last write wins).
    let bx = IntervalBox::of_conjunction(c);
    BOXES.insert(c.clone(), generation, bx.clone());
    bx
}

#[cfg(test)]
mod tests {
    use crate::{Atom, Conjunction, LinExpr, Var};

    fn empty_box_conjunction() -> Conjunction {
        let x = LinExpr::var(Var::new("x"));
        Conjunction::of([
            Atom::ge(x.clone(), LinExpr::from(3)),
            Atom::le(x, LinExpr::from(1)),
        ])
    }

    #[test]
    fn box_of_works_without_a_context() {
        // Standalone library use: no context, no cache, still sound.
        assert!(super::box_of(&empty_box_conjunction()).is_empty());
    }

    #[test]
    fn cached_and_uncached_boxes_agree() {
        let c = empty_box_conjunction();
        let cold = super::box_of(&c);
        let opts = lyric_engine::ExecOptions::default().with_boxes(true);
        let (warm, _) = lyric_engine::run_with_opts(opts, || {
            let first = super::box_of(&c); // miss: computes and stores
            let second = super::box_of(&c); // hit: returns the stored box
            assert_eq!(first, second);
            first
        })
        .unwrap();
        assert_eq!(cold, warm);
    }
}
