//! Interval (box) abstract interpretation over linear atoms.
//!
//! The abstract domain is the lattice of axis-aligned boxes: one
//! [`Interval`] per variable, each endpoint a [`Rational`] that may be
//! open (strict) or absent (±∞). [`IntervalBox::of_conjunction`] runs the
//! per-atom transfer functions of §3.1's normalized atoms `expr ⊲ 0` to a
//! truncated fixpoint, yielding a box that *over-approximates* the
//! conjunction's point set. Soundness is the whole contract:
//!
//! > every point satisfying the conjunction lies inside the inferred box,
//!
//! so an **empty** box proves the conjunction unsatisfiable without ever
//! touching the simplex solver. The converse does not hold — a nonempty
//! box says nothing (the box of `x ≤ y ∧ y ≤ x − 1` is ⊤) — which is
//! exactly the asymmetry cheap geometric filters exploit before exact
//! elimination.
//!
//! # Transfer functions
//!
//! For an inequality `Σ cᵢxᵢ + k ⊲ 0` (`⊲ ∈ {≤, <}`) and a chosen
//! variable `xᵢ`, rewrite as `cᵢxᵢ ⊲ −k − S` with `S = Σ_{j≠i} cⱼxⱼ`.
//! Interval arithmetic under the current box yields a lower bound on `S`
//! (each `cⱼxⱼ` contributes `cⱼ·lo(xⱼ)` when `cⱼ > 0`, `cⱼ·hi(xⱼ)` when
//! `cⱼ < 0`; any unbounded contribution aborts the refinement of `xᵢ`),
//! so `cᵢxᵢ ⊲ −k − inf(S)`; dividing by `cᵢ` refines `hi(xᵢ)` when
//! `cᵢ > 0` and `lo(xᵢ)` when `cᵢ < 0` (the inequality flips). The bound
//! is strict when the source operator is `<` or any contributing endpoint
//! was strict. Equalities apply both directions (`e ≤ 0` and `−e ≤ 0`);
//! disequations refine nothing but detect the one box-decidable case —
//! the whole expression confined to the singleton `{0}`.
//!
//! # Termination (widening by truncation)
//!
//! Refinement rounds are Gauss–Seidel sweeps over the atom list. Chains
//! like `x ≤ y/2 ∧ y ≤ x/2 ∧ x ≤ 100` descend forever, so iteration is
//! cut at [`MAX_ROUNDS`] sweeps. Stopping early is sound: every
//! intermediate box of a descending chain already over-approximates the
//! limit, so the truncated box over-approximates the exact one.

use crate::atom::{Atom, NormOp};
use crate::conjunction::Conjunction;
use crate::linexpr::LinExpr;
use crate::var::Var;
use lyric_arith::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum Gauss–Seidel refinement sweeps over the atom list before the
/// fixpoint iteration is truncated (see the module docs: truncation is
/// the widening, and any prefix of a descending chain is sound).
pub const MAX_ROUNDS: usize = 8;

/// One endpoint of an interval: the bound value and whether it is strict
/// (excluded). `None` at the [`Interval`] level means the side is
/// unbounded (±∞).
type Endpoint = Option<(Rational, bool)>;

/// A possibly-open, possibly-unbounded interval over the rationals.
///
/// The default value is ⊤ (`(-∞, +∞)`). An interval is *empty* when its
/// bounds cross, or touch with either side open.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Interval {
    lo: Endpoint,
    hi: Endpoint,
}

impl Interval {
    /// The unbounded interval `(-∞, +∞)`.
    pub fn top() -> Interval {
        Interval::default()
    }

    /// An interval with explicit endpoints: `Some((bound, strict))` per
    /// side, `None` for unbounded. The constructor the store index uses to
    /// turn a scalar comparison (`X.a < 5`) into a probe window.
    pub fn of_bounds(lo: Option<(Rational, bool)>, hi: Option<(Rational, bool)>) -> Interval {
        Interval { lo, hi }
    }

    /// The lower endpoint: `Some((bound, strict))`, or `None` for −∞.
    pub fn lo(&self) -> Option<(&Rational, bool)> {
        self.lo.as_ref().map(|(b, s)| (b, *s))
    }

    /// The upper endpoint: `Some((bound, strict))`, or `None` for +∞.
    pub fn hi(&self) -> Option<(&Rational, bool)> {
        self.hi.as_ref().map(|(b, s)| (b, *s))
    }

    /// Is the interval unbounded on both sides?
    pub fn is_top(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Does the interval contain no rational? True when the bounds cross,
    /// or coincide with either endpoint open.
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some((l, ls)), Some((h, hs))) => l > h || (l == h && (*ls || *hs)),
            _ => false,
        }
    }

    /// Is the interval the single point `{v}`?
    pub fn singleton(&self) -> Option<&Rational> {
        match (&self.lo, &self.hi) {
            (Some((l, false)), Some((h, false))) if l == h => Some(l),
            _ => None,
        }
    }

    /// Tighten the lower endpoint to at least `(bound, strict)`; returns
    /// whether the interval changed. A strict bound at the same value
    /// tightens a closed one.
    fn refine_lo(&mut self, bound: Rational, strict: bool) -> bool {
        let better = match &self.lo {
            None => true,
            Some((cur, cur_strict)) => bound > *cur || (bound == *cur && strict && !cur_strict),
        };
        if better {
            self.lo = Some((bound, strict));
        }
        better
    }

    /// Tighten the upper endpoint to at most `(bound, strict)`; returns
    /// whether the interval changed.
    fn refine_hi(&mut self, bound: Rational, strict: bool) -> bool {
        let better = match &self.hi {
            None => true,
            Some((cur, cur_strict)) => bound < *cur || (bound == *cur && strict && !cur_strict),
        };
        if better {
            self.hi = Some((bound, strict));
        }
        better
    }

    /// The smallest interval containing both operands (the lattice join):
    /// used to hull per-disjunct boxes into one object-level box.
    pub fn hull(&self, other: &Interval) -> Interval {
        let lo = match (&self.lo, &other.lo) {
            (Some((a, astrict)), Some((b, bstrict))) => {
                if a < b || (a == b && *astrict && !bstrict) {
                    Some((a.clone(), *astrict))
                } else {
                    Some((b.clone(), *bstrict))
                }
            }
            _ => None,
        };
        let hi = match (&self.hi, &other.hi) {
            (Some((a, astrict)), Some((b, bstrict))) => {
                if a > b || (a == b && *astrict && !bstrict) {
                    Some((a.clone(), *astrict))
                } else {
                    Some((b.clone(), *bstrict))
                }
            }
            _ => None,
        };
        Interval { lo, hi }
    }

    /// The intersection (lattice meet) of the two intervals. May be
    /// empty; callers test with [`is_empty`](Self::is_empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let mut out = self.clone();
        if let Some((b, s)) = &other.lo {
            out.refine_lo(b.clone(), *s);
        }
        if let Some((b, s)) = &other.hi {
            out.refine_hi(b.clone(), *s);
        }
        out
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "empty");
        }
        match &self.lo {
            None => write!(f, "(-inf, ")?,
            Some((b, strict)) => write!(f, "{}{}, ", if *strict { "(" } else { "[" }, b)?,
        }
        match &self.hi {
            None => write!(f, "+inf)"),
            Some((b, strict)) => write!(f, "{}{}", b, if *strict { ")" } else { "]" }),
        }
    }
}

/// Outcome of one transfer-function application.
enum Transfer {
    /// The atom proved the box empty.
    Empty,
    /// At least one endpoint tightened.
    Changed,
    /// Nothing refinable.
    Unchanged,
}

/// An axis-aligned box: one [`Interval`] per variable, absent variables
/// implicitly ⊤. The box over-approximates a conjunction's point set; an
/// empty box is a proof of unsatisfiability (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalBox {
    vars: BTreeMap<Var, Interval>,
    empty: bool,
}

impl IntervalBox {
    /// The unconstrained box `ℝ^∞` (every variable ⊤).
    pub fn top() -> IntervalBox {
        IntervalBox::default()
    }

    /// The canonical empty box.
    pub fn empty() -> IntervalBox {
        IntervalBox {
            vars: BTreeMap::new(),
            empty: true,
        }
    }

    /// Is the box empty — i.e. does it prove the source conjunction
    /// unsatisfiable?
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// The interval for `v` (⊤ when the box does not constrain it, or the
    /// box is empty — an empty box has no per-variable reading).
    pub fn interval(&self, v: &Var) -> Interval {
        self.vars.get(v).cloned().unwrap_or_default()
    }

    /// Iterate over the explicitly constrained `(variable, interval)`
    /// pairs, in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Interval)> {
        self.vars.iter()
    }

    /// The truncated-fixpoint box of a conjunction (see the module docs).
    pub fn of_conjunction(c: &Conjunction) -> IntervalBox {
        IntervalBox::of_atoms(c.atoms())
    }

    /// The truncated-fixpoint box of an atom list understood as a
    /// conjunction. Runs at most [`MAX_ROUNDS`] Gauss–Seidel sweeps,
    /// stopping early when a sweep changes nothing or emptiness is proved.
    pub fn of_atoms(atoms: &[Atom]) -> IntervalBox {
        let mut bx = IntervalBox::top();
        for _ in 0..MAX_ROUNDS {
            let mut changed = false;
            for a in atoms {
                match bx.transfer(a) {
                    Transfer::Empty => return IntervalBox::empty(),
                    Transfer::Changed => changed = true,
                    Transfer::Unchanged => {}
                }
            }
            if !changed {
                break;
            }
        }
        bx
    }

    /// Apply one atom's transfer function to the box in place.
    fn transfer(&mut self, a: &Atom) -> Transfer {
        match a.trivial() {
            Some(false) => return Transfer::Empty,
            Some(true) => return Transfer::Unchanged,
            None => {}
        }
        match a.op() {
            NormOp::Le => self.transfer_le(a.expr(), false),
            NormOp::Lt => self.transfer_le(a.expr(), true),
            NormOp::Eq => {
                let fwd = self.transfer_le(a.expr(), false);
                if matches!(fwd, Transfer::Empty) {
                    return Transfer::Empty;
                }
                let bwd = self.transfer_le(&-a.expr(), false);
                match (fwd, bwd) {
                    (_, Transfer::Empty) => Transfer::Empty,
                    (Transfer::Changed, _) | (_, Transfer::Changed) => Transfer::Changed,
                    _ => Transfer::Unchanged,
                }
            }
            NormOp::Neq => {
                // The only box-decidable disequation: the expression is
                // confined to exactly {0}, so `e ≠ 0` holds nowhere.
                if self.expr_interval(a.expr()).singleton() == Some(&Rational::zero()) {
                    Transfer::Empty
                } else {
                    Transfer::Unchanged
                }
            }
        }
    }

    /// Transfer for `expr ≤ 0` (`strict` selects `<`): refine every
    /// variable of the expression against the infimum of the others.
    fn transfer_le(&mut self, expr: &LinExpr, strict: bool) -> Transfer {
        let mut changed = false;
        let terms: Vec<(&Var, &Rational)> = expr.terms().collect();
        for (v, c) in &terms {
            // inf of S = Σ_{w≠v} c_w·w + k under the current box.
            let mut inf = expr.constant_term().clone();
            let mut inf_strict = false;
            let mut bounded = true;
            for (w, cw) in &terms {
                if w == v {
                    continue;
                }
                let iv = self.vars.get(*w).cloned().unwrap_or_default();
                let end = if cw.is_positive() { iv.lo } else { iv.hi };
                match end {
                    None => {
                        bounded = false;
                        break;
                    }
                    Some((b, s)) => {
                        inf += &(*cw * &b);
                        inf_strict |= s;
                    }
                }
            }
            if !bounded {
                continue;
            }
            // c·v ⊲ −inf, so v ⊲ −inf/c (flipping on negative c).
            let bound = &-inf / *c;
            let s = strict || inf_strict;
            let iv = self.vars.entry((*v).clone()).or_default();
            let tightened = if c.is_positive() {
                iv.refine_hi(bound, s)
            } else {
                iv.refine_lo(bound, s)
            };
            if tightened {
                if iv.is_empty() {
                    return Transfer::Empty;
                }
                changed = true;
            }
        }
        if changed {
            Transfer::Changed
        } else {
            Transfer::Unchanged
        }
    }

    /// The interval of a linear expression's value over the box (exact
    /// interval arithmetic; unbounded contributions make the side ±∞).
    pub fn expr_interval(&self, expr: &LinExpr) -> Interval {
        let mut lo = Some((expr.constant_term().clone(), false));
        let mut hi = Some((expr.constant_term().clone(), false));
        for (v, c) in expr.terms() {
            let iv = self.vars.get(v).cloned().unwrap_or_default();
            let (contrib_lo, contrib_hi) = if c.is_positive() {
                (iv.lo, iv.hi)
            } else {
                (iv.hi, iv.lo)
            };
            lo = match (lo, contrib_lo) {
                (Some((acc, astrict)), Some((b, s))) => Some((&acc + &(c * &b), astrict || s)),
                _ => None,
            };
            hi = match (hi, contrib_hi) {
                (Some((acc, astrict)), Some((b, s))) => Some((&acc + &(c * &b), astrict || s)),
                _ => None,
            };
        }
        Interval { lo, hi }
    }

    /// Does the concrete `point` lie inside the box? (Unbound variables of
    /// the point read as 0, matching [`Conjunction::eval`].) The soundness
    /// differential checks `c.eval(p) ⇒ c.box().contains(p)`.
    pub fn contains(&self, point: &crate::linexpr::Assignment) -> bool {
        if self.empty {
            return false;
        }
        self.vars.iter().all(|(v, iv)| {
            let zero = Rational::zero();
            let x = point.get(v).unwrap_or(&zero);
            let above = match &iv.lo {
                None => true,
                Some((b, strict)) => x > b || (!strict && x == b),
            };
            let below = match &iv.hi {
                None => true,
                Some((b, strict)) => x < b || (!strict && x == b),
            };
            above && below
        })
    }

    /// The smallest box containing both operands (per-variable
    /// [`Interval::hull`]; a variable unconstrained in either side is
    /// unconstrained in the hull). The empty box is the identity.
    pub fn hull(&self, other: &IntervalBox) -> IntervalBox {
        if self.empty {
            return other.clone();
        }
        if other.empty {
            return self.clone();
        }
        let mut vars = BTreeMap::new();
        for (v, iv) in &self.vars {
            if let Some(o) = other.vars.get(v) {
                let h = iv.hull(o);
                if !h.is_top() {
                    vars.insert(v.clone(), h);
                }
            }
        }
        IntervalBox { vars, empty: false }
    }

    /// The per-variable intersection (lattice meet) of the two boxes —
    /// the query-box ∩ object-box disjointness test is
    /// `a.intersect(&b).is_empty()`.
    pub fn intersect(&self, other: &IntervalBox) -> IntervalBox {
        if self.empty || other.empty {
            return IntervalBox::empty();
        }
        let mut out = self.clone();
        for (v, iv) in &other.vars {
            let merged = out.vars.entry(v.clone()).or_default().intersect(iv);
            if merged.is_empty() {
                return IntervalBox::empty();
            }
            out.vars.insert(v.clone(), merged);
        }
        out
    }

    /// Keep only the intervals of `keep` (a sound projection: dropping
    /// constraints on other axes only widens the box).
    pub fn restrict(&self, keep: &[Var]) -> IntervalBox {
        if self.empty {
            return IntervalBox::empty();
        }
        IntervalBox {
            vars: self
                .vars
                .iter()
                .filter(|(v, _)| keep.contains(v))
                .map(|(v, iv)| (v.clone(), iv.clone()))
                .collect(),
            empty: false,
        }
    }
}

impl fmt::Display for IntervalBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "empty");
        }
        if self.vars.is_empty() {
            return write!(f, "top");
        }
        for (i, (v, iv)) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} in {iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn x() -> LinExpr {
        LinExpr::var(v("x"))
    }
    fn y() -> LinExpr {
        LinExpr::var(v("y"))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }
    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn single_variable_bounds() {
        let cj = Conjunction::of([Atom::ge(x(), c(0)), Atom::lt(x(), c(5))]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert!(!bx.is_empty());
        let iv = bx.interval(&v("x"));
        assert_eq!(iv.lo(), Some((&r(0), false)));
        assert_eq!(iv.hi(), Some((&r(5), true)));
        assert_eq!(iv.to_string(), "[0, 5)");
    }

    #[test]
    fn crossed_bounds_are_empty() {
        let cj = Conjunction::of([Atom::ge(x(), c(3)), Atom::le(x(), c(1))]);
        assert!(IntervalBox::of_conjunction(&cj).is_empty());
        // Touching bounds with a strict side are empty too.
        let cj = Conjunction::of([Atom::ge(x(), c(1)), Atom::lt(x(), c(1))]);
        assert!(IntervalBox::of_conjunction(&cj).is_empty());
        // Touching closed bounds are the singleton — not empty.
        let cj = Conjunction::of([Atom::ge(x(), c(1)), Atom::le(x(), c(1))]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert!(!bx.is_empty());
        assert_eq!(bx.interval(&v("x")).singleton(), Some(&r(1)));
    }

    #[test]
    fn propagation_through_linear_atoms() {
        // x ≥ 2 ∧ y ≥ 3 ∧ x + y ≤ 4 is empty, but no single atom is.
        let cj = Conjunction::of([
            Atom::ge(x(), c(2)),
            Atom::ge(y(), c(3)),
            Atom::le(x() + y(), c(4)),
        ]);
        assert!(IntervalBox::of_conjunction(&cj).is_empty());
        // Relaxing the sum keeps it nonempty and tightens both tops.
        let cj = Conjunction::of([
            Atom::ge(x(), c(2)),
            Atom::ge(y(), c(3)),
            Atom::le(x() + y(), c(10)),
        ]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert!(!bx.is_empty());
        assert_eq!(bx.interval(&v("x")).hi(), Some((&r(7), false)));
        assert_eq!(bx.interval(&v("y")).hi(), Some((&r(8), false)));
    }

    #[test]
    fn negative_coefficients_flip_the_refined_side() {
        // x − y ≤ 0 with y ≤ 5 gives x ≤ 5; with x ≥ 2 gives y ≥ 2.
        let cj = Conjunction::of([
            Atom::le(x() - y(), c(0)),
            Atom::le(y(), c(5)),
            Atom::ge(x(), c(2)),
        ]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert_eq!(bx.interval(&v("x")).hi(), Some((&r(5), false)));
        assert_eq!(bx.interval(&v("y")).lo(), Some((&r(2), false)));
    }

    #[test]
    fn equalities_refine_both_directions() {
        let cj = Conjunction::of([Atom::eq(x(), c(7))]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert_eq!(bx.interval(&v("x")).singleton(), Some(&r(7)));
        // x = y with x pinned pins y.
        let cj = Conjunction::of([Atom::eq(x(), y()), Atom::eq(x(), c(3))]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert_eq!(bx.interval(&v("y")).singleton(), Some(&r(3)));
        // Contradicting equalities are empty.
        let cj = Conjunction::of([Atom::eq(x(), c(3)), Atom::eq(x(), c(4))]);
        assert!(IntervalBox::of_conjunction(&cj).is_empty());
    }

    #[test]
    fn disequation_of_a_pinned_expression_is_empty() {
        let cj = Conjunction::of([Atom::eq(x(), c(2)), Atom::neq(x(), c(2))]);
        assert!(IntervalBox::of_conjunction(&cj).is_empty());
        // A disequation with slack refines nothing.
        let cj = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::neq(x(), c(0)),
        ]);
        assert!(!IntervalBox::of_conjunction(&cj).is_empty());
    }

    #[test]
    fn fractional_coefficients_divide_exactly() {
        // 2x ≤ 7  →  x ≤ 7/2.
        let cj = Conjunction::of([Atom::le(x().scale(&r(2)), c(7))]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert_eq!(
            bx.interval(&v("x")).hi(),
            Some((&Rational::from_pair(7, 2), false))
        );
        // −3x < 1  →  x > −1/3.
        let cj = Conjunction::of([Atom::lt(x().scale(&r(-3)), c(1))]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert_eq!(
            bx.interval(&v("x")).lo(),
            Some((&Rational::from_pair(-1, 3), true))
        );
    }

    #[test]
    fn strictness_propagates_through_sums() {
        // x > 1 ∧ y ≥ 0 ∧ x + y ≤ 1: inf(x+y) = 1 not attained → empty.
        let cj = Conjunction::of([
            Atom::gt(x(), c(1)),
            Atom::ge(y(), c(0)),
            Atom::le(x() + y(), c(1)),
        ]);
        assert!(IntervalBox::of_conjunction(&cj).is_empty());
    }

    #[test]
    fn unbounded_contributions_refine_nothing() {
        // x + y ≤ 0 alone: neither variable has a finite partner bound.
        let cj = Conjunction::of([Atom::le(x() + y(), c(0))]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert!(!bx.is_empty());
        assert!(bx.interval(&v("x")).is_top());
        assert!(bx.interval(&v("y")).is_top());
    }

    #[test]
    fn descending_chain_terminates() {
        // x ≤ y/2 ∧ y ≤ x/2 ∧ x ≤ 100 descends forever toward (−∞, 0];
        // the truncated fixpoint must stop and stay sound (0 satisfies).
        let cj = Conjunction::of([
            Atom::le(x().scale(&r(2)), y()),
            Atom::le(y().scale(&r(2)), x()),
            Atom::le(x(), c(100)),
        ]);
        let bx = IntervalBox::of_conjunction(&cj);
        assert!(!bx.is_empty(), "x = y = 0 satisfies the conjunction");
        let origin = crate::linexpr::Assignment::new();
        assert!(bx.contains(&origin));
    }

    #[test]
    fn soundness_box_contains_every_found_point() {
        let cases = [
            Conjunction::of([Atom::ge(x(), c(0)), Atom::le(x() + y(), c(4))]),
            Conjunction::of([Atom::eq(x(), y()), Atom::le(x(), c(2))]),
            Conjunction::of([
                Atom::ge(x(), c(-3)),
                Atom::lt(y(), c(9)),
                Atom::le(x() - y().scale(&r(2)), c(1)),
            ]),
        ];
        for cj in cases {
            let bx = IntervalBox::of_conjunction(&cj);
            if let Some(p) = cj.find_point() {
                assert!(bx.contains(&p), "box {bx} must contain witness of {cj}");
            }
        }
    }

    #[test]
    fn hull_and_intersect() {
        let a = IntervalBox::of_atoms(&[Atom::ge(x(), c(0)), Atom::le(x(), c(1))]);
        let b = IntervalBox::of_atoms(&[Atom::ge(x(), c(5)), Atom::le(x(), c(6))]);
        let h = a.hull(&b);
        assert_eq!(h.interval(&v("x")).to_string(), "[0, 6]");
        assert!(a.intersect(&b).is_empty());
        let overlap = IntervalBox::of_atoms(&[Atom::ge(x(), c(1)), Atom::le(x(), c(5))]);
        let m = overlap.intersect(&a);
        assert_eq!(m.interval(&v("x")).singleton(), Some(&r(1)));
        // The empty box is hull-identity and intersect-absorbing.
        assert_eq!(IntervalBox::empty().hull(&a), a);
        assert!(IntervalBox::empty().intersect(&a).is_empty());
    }

    #[test]
    fn restrict_projects_soundly() {
        let bx = IntervalBox::of_atoms(&[
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::ge(y(), c(2)),
        ]);
        let p = bx.restrict(&[v("x")]);
        assert!(!p.interval(&v("x")).is_top());
        assert!(p.interval(&v("y")).is_top());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::top().to_string(), "(-inf, +inf)");
        assert_eq!(IntervalBox::top().to_string(), "top");
        assert_eq!(IntervalBox::empty().to_string(), "empty");
        let bx = IntervalBox::of_atoms(&[
            Atom::ge(x(), c(0)),
            Atom::lt(x(), c(2)),
            Atom::le(y(), c(7)),
        ]);
        assert_eq!(bx.to_string(), "x in [0, 2), y in (-inf, 7]");
    }
}
