//! Constraint variables.

use std::fmt;
use std::sync::Arc;

/// A constraint variable, identified by name.
///
/// Variables are cheap to clone (shared string) and totally ordered by
/// name, which gives linear expressions and atoms a stable term order used
/// by the canonical forms of §3.1.
///
/// Names produced by [`Var::fresh`] contain a `%` character, which the
/// LyriC lexer never emits — fresh variables introduced by α-renaming can
/// therefore never collide with source-level variables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// A variable with the given source name.
    pub fn new(name: impl AsRef<str>) -> Var {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// A fresh variable that cannot collide with any source-level variable:
    /// `base%n`.
    pub fn fresh(base: &str, n: usize) -> Var {
        // Strip any existing freshness suffix so repeated renaming doesn't
        // grow names unboundedly.
        let stem = base.split('%').next().unwrap_or(base);
        Var(Arc::from(format!("{stem}%{n}").as_str()))
    }

    /// True iff this variable was produced by [`Var::fresh`].
    pub fn is_fresh(&self) -> bool {
        self.0.contains('%')
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Var {
        Var(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_name() {
        let mut v = [Var::new("z"), Var::new("a"), Var::new("m")];
        v.sort();
        assert_eq!(
            v.iter().map(Var::name).collect::<Vec<_>>(),
            vec!["a", "m", "z"]
        );
    }

    #[test]
    fn fresh_variables_are_marked_and_stable() {
        let f = Var::fresh("w", 3);
        assert_eq!(f.name(), "w%3");
        assert!(f.is_fresh());
        assert!(!Var::new("w").is_fresh());
        // Re-freshening replaces the suffix instead of stacking.
        let g = Var::fresh(f.name(), 7);
        assert_eq!(g.name(), "w%7");
    }

    #[test]
    fn clones_are_equal_and_cheap() {
        let a = Var::new("extent_w");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.name(), "extent_w");
    }
}
