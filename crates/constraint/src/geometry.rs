//! Exact 2-D geometry on constraint objects: vertex enumeration.
//!
//! The paper positions constraints as the *conceptual* representation of
//! spatial data, with "the best known data structures and algorithms" for
//! low-dimensional manipulation (§1.1). This module provides the bridge
//! back to explicit geometry for 2-D objects: the vertices of each
//! disjunct's polygon, computed exactly — what a renderer or a
//! computational-geometry pipeline downstream of a LyriC query needs.

use crate::atom::{Atom, NormOp};
use crate::conjunction::Conjunction;
use crate::cst_object::CstObject;
use crate::error::ConstraintError;
use crate::linexpr::{Assignment, LinExpr};
use crate::var::Var;
use lyric_arith::Rational;

impl CstObject {
    /// The vertices of each disjunct of a **two-dimensional, bounded,
    /// quantifier-free** object, in counter-clockwise order around the
    /// disjunct's centroid, as `(x, y)` pairs following the schema order.
    ///
    /// Vertices are computed exactly: every pair of boundary lines is
    /// intersected, and intersection points satisfying the whole
    /// conjunction (ignoring strictness: the *closure* of the disjunct)
    /// are kept. Degenerate disjuncts (segments, points) yield their
    /// endpoints. Unbounded or empty disjuncts yield an error / are
    /// skipped respectively.
    ///
    /// Disequations are ignored (they only remove measure-zero slices and
    /// do not change the closure's vertex set).
    pub fn vertices_2d(&self) -> Result<Vec<Vec<(Rational, Rational)>>, ConstraintError> {
        if self.arity() != 2 || self.has_bound_vars() {
            return Err(ConstraintError::Geometry(
                "vertex enumeration requires a 2-D quantifier-free object".into(),
            ));
        }
        let x = self.free()[0].clone();
        let y = self.free()[1].clone();
        let mut out = Vec::new();
        for d in self.disjuncts() {
            if !d.satisfiable() {
                continue;
            }
            // Boundedness check per axis.
            for v in [&x, &y] {
                let e = LinExpr::var(v.clone());
                for extremum in [d.maximize(&e), d.minimize(&e)] {
                    if matches!(extremum, crate::conjunction::Extremum::Unbounded) {
                        return Err(ConstraintError::Geometry(format!(
                            "disjunct is unbounded in {v}: {d}"
                        )));
                    }
                }
            }
            out.push(disjunct_vertices(d, &x, &y));
        }
        Ok(out)
    }
}

fn disjunct_vertices(d: &Conjunction, x: &Var, y: &Var) -> Vec<(Rational, Rational)> {
    // The closure: strict atoms weakened, disequations dropped.
    let closed = Conjunction::of(d.atoms().iter().filter_map(|a| match a.op() {
        NormOp::Le | NormOp::Eq => Some(a.clone()),
        NormOp::Lt => Some(Atom::normalized(a.expr().clone(), NormOp::Le)),
        NormOp::Neq => None,
    }));
    let lines: Vec<&Atom> = closed.atoms().iter().collect();
    let mut vertices: Vec<(Rational, Rational)> = Vec::new();
    for (i, a) in lines.iter().enumerate() {
        for b in lines.iter().skip(i + 1) {
            if let Some((px, py)) = intersect(a, b, x, y) {
                let mut point = Assignment::new();
                point.insert(x.clone(), px.clone());
                point.insert(y.clone(), py.clone());
                if closed.eval(&point) && !vertices.contains(&(px.clone(), py.clone())) {
                    vertices.push((px, py));
                }
            }
        }
    }
    // Degenerate cases (a single equality bounding box collapses to a
    // segment with endpoints found above; a single point may come from an
    // equality pair). If fewer than 3 vertices, nothing to order.
    if vertices.len() < 3 {
        vertices.sort();
        return vertices;
    }
    // Counter-clockwise order around the centroid, comparing polar angles
    // exactly via cross products per half-plane.
    let n = Rational::from_int(vertices.len() as i64);
    let cx = vertices
        .iter()
        .map(|(a, _)| a.clone())
        .fold(Rational::zero(), |s, v| s + v)
        / n.clone();
    let cy = vertices
        .iter()
        .map(|(_, b)| b.clone())
        .fold(Rational::zero(), |s, v| s + v)
        / n;
    vertices.sort_by(|p, q| {
        let (pdx, pdy) = (&p.0 - &cx, &p.1 - &cy);
        let (qdx, qdy) = (&q.0 - &cx, &q.1 - &cy);
        let half = |dx: &Rational, dy: &Rational| {
            if dy.is_negative() || (dy.is_zero() && dx.is_negative()) {
                1u8
            } else {
                0
            }
        };
        let (hp, hq) = (half(&pdx, &pdy), half(&qdx, &qdy));
        hp.cmp(&hq).then_with(|| {
            // Same half-plane: cross(p, q) > 0 means q is CCW of p, so p
            // comes first.
            let cross = &pdx * &qdy - &pdy * &qdx;
            Rational::zero().cmp(&cross).then_with(|| {
                // Collinear with the centroid: nearer point first.
                let dp = &pdx * &pdx + &pdy * &pdy;
                let dq = &qdx * &qdx + &qdy * &qdy;
                dp.cmp(&dq)
            })
        })
    });
    vertices
}

/// Exact intersection of the boundary lines of two atoms
/// (`e = 0` for each), when unique.
fn intersect(a: &Atom, b: &Atom, x: &Var, y: &Var) -> Option<(Rational, Rational)> {
    // a: a1 x + a2 y + a0 = 0 ; b: b1 x + b2 y + b0 = 0.
    let (a1, a2, a0) = (
        a.expr().coeff(x),
        a.expr().coeff(y),
        a.expr().constant_term().clone(),
    );
    let (b1, b2, b0) = (
        b.expr().coeff(x),
        b.expr().coeff(y),
        b.expr().constant_term().clone(),
    );
    let det = &a1 * &b2 - &a2 * &b1;
    if det.is_zero() {
        return None;
    }
    // Cramer: x = (a2 b0 − b2 a0)/det, y = (b1 a0 − a1 b0)/det.
    let px = (&a2 * &b0 - &b2 * &a0) / det.clone();
    let py = (&b1 * &a0 - &a1 * &b0) / det;
    Some((px, py))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn e(n: &str) -> LinExpr {
        LinExpr::var(Var::new(n))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::from(n)
    }
    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn box2(x0: i64, x1: i64, y0: i64, y1: i64) -> CstObject {
        CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([
                Atom::ge(e("x"), c(x0)),
                Atom::le(e("x"), c(x1)),
                Atom::ge(e("y"), c(y0)),
                Atom::le(e("y"), c(y1)),
            ]),
        )
    }

    #[test]
    fn box_vertices_ccw() {
        let vs = box2(0, 4, 0, 2).vertices_2d().unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(
            vs[0],
            vec![(r(4), r(2)), (r(0), r(2)), (r(0), r(0)), (r(4), r(0)),]
        );
    }

    #[test]
    fn triangle_with_fractional_vertex() {
        // x >= 0, y >= 0, 2x + 3y <= 5: vertices (0,0), (5/2,0), (0,5/3).
        let t = CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([
                Atom::ge(e("x"), c(0)),
                Atom::ge(e("y"), c(0)),
                Atom::le(e("x").scale(&r(2)) + e("y").scale(&r(3)), c(5)),
            ]),
        );
        let vs = t.vertices_2d().unwrap();
        assert_eq!(vs[0].len(), 3);
        assert!(vs[0].contains(&(Rational::from_pair(5, 2), r(0))));
        assert!(vs[0].contains(&(r(0), Rational::from_pair(5, 3))));
        assert!(vs[0].contains(&(r(0), r(0))));
    }

    #[test]
    fn redundant_atoms_add_no_vertices() {
        let redundant = CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([
                Atom::ge(e("x"), c(0)),
                Atom::le(e("x"), c(4)),
                Atom::ge(e("y"), c(0)),
                Atom::le(e("y"), c(2)),
                Atom::le(e("x") + e("y"), c(100)), // redundant
            ]),
        );
        let vs = redundant.vertices_2d().unwrap();
        assert_eq!(vs[0].len(), 4);
    }

    #[test]
    fn strictness_uses_closure() {
        let open = CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([
                Atom::gt(e("x"), c(0)),
                Atom::lt(e("x"), c(1)),
                Atom::gt(e("y"), c(0)),
                Atom::lt(e("y"), c(1)),
            ]),
        );
        let vs = open.vertices_2d().unwrap();
        assert_eq!(vs[0].len(), 4); // closure vertices
    }

    #[test]
    fn degenerate_segment_and_point() {
        let segment = CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([
                Atom::eq(e("y"), c(1)),
                Atom::ge(e("x"), c(0)),
                Atom::le(e("x"), c(3)),
            ]),
        );
        let vs = segment.vertices_2d().unwrap();
        assert_eq!(vs[0], vec![(r(0), r(1)), (r(3), r(1))]);
        let point = CstObject::point(vec![v("x"), v("y")], &[r(2), r(5)]);
        let vs = point.vertices_2d().unwrap();
        assert_eq!(vs[0], vec![(r(2), r(5))]);
    }

    #[test]
    fn union_yields_polygon_per_disjunct() {
        let u = box2(0, 1, 0, 1).or(&box2(5, 6, 5, 6));
        let vs = u.vertices_2d().unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].len(), 4);
        assert_eq!(vs[1].len(), 4);
        // Empty disjuncts are skipped.
        let with_empty = box2(0, 1, 0, 1).or(&CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([Atom::ge(e("x"), c(5)), Atom::le(e("x"), c(4))]),
        ));
        assert_eq!(with_empty.vertices_2d().unwrap().len(), 1);
    }

    #[test]
    fn errors_on_unbounded_or_wrong_shape() {
        let half = CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([Atom::ge(e("x"), c(0))]),
        );
        assert!(matches!(
            half.vertices_2d(),
            Err(ConstraintError::Geometry(_))
        ));
        let three_d = CstObject::top(vec![v("x"), v("y"), v("z")]);
        assert!(matches!(
            three_d.vertices_2d(),
            Err(ConstraintError::Geometry(_))
        ));
        let quantified = CstObject::new(
            vec![v("x"), v("y")],
            [Conjunction::of([Atom::le(e("x"), e("hidden"))])],
        );
        assert!(matches!(
            quantified.vertices_2d(),
            Err(ConstraintError::Geometry(_))
        ));
    }

    #[test]
    fn diamond_vertices() {
        let w = e("x");
        let z = e("y");
        let diamond = CstObject::from_conjunction(
            vec![v("x"), v("y")],
            Conjunction::of([
                Atom::le(&w + &z, c(2)),
                Atom::le(&w - &z, c(2)),
                Atom::le(&(-&w) + &z, c(2)),
                Atom::le(&(-&w) - &z, c(2)),
            ]),
        );
        let vs = diamond.vertices_2d().unwrap();
        assert_eq!(vs[0].len(), 4);
        for p in [(r(2), r(0)), (r(0), r(2)), (r(-2), r(0)), (r(0), r(-2))] {
            assert!(vs[0].contains(&p), "missing vertex {p:?}");
        }
    }
}
