//! The linear-constraint engine of the LyriC reproduction.
//!
//! Implements §3.1 of Brodsky & Kornatzky's *The LyriC Language: Querying
//! Constraint Objects* (SIGMOD 1995): linear arithmetic constraints, the
//! four constraint families (conjunctive, existential conjunctive,
//! disjunctive, disjunctive existential) with exactly the paper's closure
//! rules, restricted and unrestricted projection, canonical forms, and the
//! decision procedures (satisfiability, entailment `|=`, optimization)
//! that the LyriC query language is built on.
//!
//! Layering:
//!
//! * [`Var`], [`LinExpr`], [`Atom`] — terms and normalized atomic
//!   constraints;
//! * [`Conjunction`] — polyhedra (plus disequations) with LP-backed
//!   decision procedures and Fourier–Motzkin elimination;
//! * [`Dnf`] — the disjunctive family (negation, case-splitting
//!   elimination, DNF entailment);
//! * [`CstObject`] — the paper's CST objects: a dimension schema (ordered
//!   free variables) plus a disjunction of implicitly existentially
//!   quantified conjunctions, with family classification, canonical forms
//!   and point-set semantics.

//! # Example
//!
//! ```
//! use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
//!
//! let x = || LinExpr::var(Var::new("x"));
//! let y = || LinExpr::var(Var::new("y"));
//!
//! // The unit square as a constraint object.
//! let square = CstObject::from_conjunction(
//!     vec![Var::new("x"), Var::new("y")],
//!     Conjunction::of([
//!         Atom::ge(x(), LinExpr::from(0)),
//!         Atom::le(x(), LinExpr::from(1)),
//!         Atom::ge(y(), LinExpr::from(0)),
//!         Atom::le(y(), LinExpr::from(1)),
//!     ]),
//! );
//! // Containment is entailment; intersection is conjunction (§1.1).
//! let halfplane = CstObject::from_conjunction(
//!     vec![Var::new("x"), Var::new("y")],
//!     Conjunction::of([Atom::le(x() + y(), LinExpr::from(2))]),
//! );
//! assert!(square.implies(&halfplane));
//! assert!(square.and(&halfplane).satisfiable());
//! // Projection with lazy quantifiers, then an exact membership test.
//! let shadow = square.project(vec![Var::new("x")]);
//! assert!(shadow.contains_point(&[1.into()]));
//! assert!(!shadow.contains_point(&[2.into()]));
//! ```

#![warn(missing_docs)]

mod atom;
mod boxcache;
mod cache;
mod canonical;
mod conjunction;
mod cst_object;
mod dnf;
mod error;
mod fourier_motzkin;
mod geometry;
mod interval;
mod linexpr;
mod var;

pub use atom::{Atom, NormOp, RelOp};
pub use boxcache::occupancy as box_occupancy;
pub use cache::{entail_occupancy, sat_occupancy, CacheOccupancy};
pub use conjunction::{Conjunction, Extremum};
pub use cst_object::{CstFamily, CstObject, FamilyOp};
pub use dnf::Dnf;
pub use error::ConstraintError;
pub use interval::{Interval, IntervalBox, MAX_ROUNDS};
pub use linexpr::{Assignment, LinExpr};
pub use var::Var;
