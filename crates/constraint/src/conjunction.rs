//! Conjunctive constraints (§3.1) and their decision procedures.
//!
//! A [`Conjunction`] is a set of normalized atoms understood as their
//! logical conjunction — geometrically a convex polyhedron (from the
//! `≤ < =` atoms) minus finitely many hyperplanes (from the `≠` atoms).
//!
//! Decision procedures reduce to exact LP ([`lyric_simplex`]):
//!
//! * **Satisfiability** uses the convexity lemma: a convex set `C` cannot
//!   be covered by finitely many hyperplanes unless it is contained in one
//!   of them, so `C ∧ ⋀ᵢ eᵢ≠0` is satisfiable iff `C` is satisfiable and
//!   `C ⊭ eᵢ=0` for every `i` — one feasibility check plus two LPs per
//!   disequation.
//! * **Entailment** `P |= a` is the unsatisfiability of `P ∧ ¬a`; the
//!   negation of any atom is again a single atom, so entailment between
//!   conjunctions is linear in the number of right-hand atoms.
//! * **Optimization** (`MAX`/`MIN … SUBJECT TO` of §4.2) returns the
//!   supremum/infimum with an attainment flag and a rational witness.

use crate::atom::{Atom, NormOp};
use crate::linexpr::{Assignment, LinExpr};
use crate::var::Var;
use lyric_arith::Rational;
use lyric_simplex::{LpOutcome, LpProblem, Relop};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A conjunction of normalized linear atoms.
///
/// Invariants: atoms are sorted and deduplicated; trivially true atoms are
/// removed; a trivially false atom collapses the whole conjunction to the
/// canonical bottom (`1 ≤ 0`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Conjunction {
    atoms: Vec<Atom>,
}

/// Result of optimizing a linear objective over a conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extremum {
    /// The conjunction is unsatisfiable.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// A finite bound.
    Finite {
        /// The supremum (maximize) or infimum (minimize).
        bound: Rational,
        /// Whether some satisfying point achieves the bound.
        attained: bool,
        /// A satisfying point; achieves `bound` when `attained`.
        witness: Assignment,
    },
}

impl Conjunction {
    /// The empty (always-true) conjunction.
    pub fn top() -> Conjunction {
        Conjunction::default()
    }

    /// The canonical always-false conjunction.
    pub fn bottom() -> Conjunction {
        Conjunction {
            atoms: vec![Atom::le(
                LinExpr::constant(Rational::one()),
                LinExpr::zero(),
            )],
        }
    }

    /// Build from atoms, normalizing.
    pub fn of(atoms: impl IntoIterator<Item = Atom>) -> Conjunction {
        let mut c = Conjunction::top();
        for a in atoms {
            if !c.push_atom(a) {
                return Conjunction::bottom();
            }
        }
        c.atoms.sort();
        c.atoms.dedup();
        c
    }

    /// Returns false when the atom is trivially false.
    fn push_atom(&mut self, a: Atom) -> bool {
        match a.trivial() {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.atoms.push(a);
                true
            }
        }
    }

    /// Conjoin one atom.
    pub fn and_atom(&self, a: Atom) -> Conjunction {
        Conjunction::of(self.atoms.iter().cloned().chain(std::iter::once(a)))
    }

    /// Conjoin two conjunctions.
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        Conjunction::of(self.atoms.iter().chain(&other.atoms).cloned())
    }

    /// The atoms, in canonical order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Is this the empty conjunction (no atoms — the whole space, ⊤)?
    pub fn is_top(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The conjunction's interval abstraction: a per-variable bounding box
    /// that *over-approximates* the point set (see [`crate::IntervalBox`]).
    /// An empty box proves the conjunction unsatisfiable; a nonempty box
    /// proves nothing. Memoized per engine generation under a context with
    /// box pruning enabled.
    pub fn interval_box(&self) -> crate::IntervalBox {
        crate::boxcache::box_of(self)
    }

    /// Syntactic check: is this the canonical bottom (or does it contain a
    /// trivially false atom)? Unsatisfiable conjunctions are *not* always
    /// syntactically false — use [`satisfiable`](Self::satisfiable).
    pub fn is_syntactically_false(&self) -> bool {
        self.atoms.iter().any(|a| a.trivial() == Some(false))
    }

    /// All variables occurring in the conjunction.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// Evaluate at a point (unbound variables read as 0).
    pub fn eval(&self, point: &Assignment) -> bool {
        self.atoms.iter().all(|a| a.eval(point))
    }

    /// Substitute a variable by an expression in every atom.
    pub fn substitute(&self, v: &Var, by: &LinExpr) -> Conjunction {
        Conjunction::of(self.atoms.iter().map(|a| a.substitute(v, by)))
    }

    /// Rename variables in every atom.
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> Conjunction {
        if map.is_empty() {
            return self.clone();
        }
        Conjunction::of(self.atoms.iter().map(|a| a.rename(map)))
    }

    /// Split into convex atoms (`≤ < =`) and disequation expressions.
    fn split_neq(&self) -> (Vec<&Atom>, Vec<&Atom>) {
        self.atoms.iter().partition(|a| a.op() != NormOp::Neq)
    }

    /// Exact satisfiability over the reals. Answers are memoized under an
    /// engine context with caching enabled (see `crate::cache`).
    ///
    /// Under a context with interval-box pruning enabled
    /// (`ExecOptions::boxes` / `LYRIC_BOXES`), the conjunction's
    /// [`IntervalBox`](crate::IntervalBox) is consulted first: an empty
    /// box is a *sound* proof of unsatisfiability, so the LP (and the
    /// answer memo) are skipped entirely. Entailment inherits the prune
    /// for free — [`implies_atom`](Self::implies_atom) reduces to a
    /// satisfiability call on `self ∧ ¬a`. Pruning never changes an
    /// answer, only how it is obtained; the `boxes_differential` suite
    /// pins bit-identical results with the switch on and off.
    pub fn satisfiable(&self) -> bool {
        lyric_engine::tally(|s| s.sat_checks += 1);
        if lyric_engine::boxes_enabled() {
            lyric_engine::tally(|s| s.box_checks += 1);
            if crate::boxcache::box_of(self).is_empty() {
                lyric_engine::tally(|s| s.box_prunes += 1);
                lyric_engine::trace_event(|| lyric_engine::EventKind::BoxPrune);
                return false;
            }
        }
        crate::cache::satisfiable(self, || {
            let (convex, neqs) = self.split_neq();
            let lp = Lp::build(convex.iter().copied());
            if !lp.problem.is_feasible() {
                return false;
            }
            // Convexity lemma: check each disequation independently.
            neqs.iter().all(|a| !lp.entails_eq_zero(a.expr()))
        })
    }

    /// A satisfying point, if any. When disequations are present the convex
    /// part is case-split (`e ≠ 0` into `e < 0 ∨ e > 0`), so the cost is
    /// exponential in the number of `≠` atoms — which real workloads keep
    /// tiny.
    pub fn find_point(&self) -> Option<Assignment> {
        let (convex, neqs) = self.split_neq();
        let base: Vec<Atom> = convex.into_iter().cloned().collect();
        // Depth-first over sign choices for each disequation.
        fn search(base: &[Atom], neqs: &[&Atom]) -> Option<Assignment> {
            match neqs.split_first() {
                None => {
                    let lp = Lp::build(base.iter());
                    let point = lp.problem.find_concrete_point()?;
                    Some(lp.assignment(&point))
                }
                Some((first, rest)) => {
                    for atom in [
                        Atom::normalized(first.expr().clone(), NormOp::Lt),
                        Atom::normalized(-first.expr(), NormOp::Lt),
                    ] {
                        let mut ext = base.to_vec();
                        ext.push(atom);
                        if let Some(p) = search(&ext, rest) {
                            return Some(p);
                        }
                    }
                    None
                }
            }
        }
        search(&base, &neqs)
    }

    /// Entailment of a single atom: `self |= a` iff `self ∧ ¬a` is
    /// unsatisfiable. (An unsatisfiable conjunction entails everything.)
    /// Answers are memoized under an engine context with caching enabled.
    pub fn implies_atom(&self, a: &Atom) -> bool {
        lyric_engine::tally(|s| s.entailment_checks += 1);
        crate::cache::entails(self, a, || !self.and_atom(a.negate()).satisfiable())
    }

    /// Entailment between conjunctions: `self |= other` iff `self` entails
    /// each atom of `other`.
    pub fn implies(&self, other: &Conjunction) -> bool {
        other.atoms.iter().all(|a| self.implies_atom(a))
    }

    /// Mutual entailment: do the two conjunctions denote the same point
    /// set? (Canonical forms are not unique — §3.1 — so denotation equality
    /// is the semantic comparison.)
    pub fn equivalent(&self, other: &Conjunction) -> bool {
        self.implies(other) && other.implies(self)
    }

    /// Maximize `objective` over the conjunction.
    pub fn maximize(&self, objective: &LinExpr) -> Extremum {
        self.optimize(objective, true)
    }

    /// Minimize `objective` over the conjunction.
    pub fn minimize(&self, objective: &LinExpr) -> Extremum {
        self.optimize(objective, false)
    }

    fn optimize(&self, objective: &LinExpr, maximize: bool) -> Extremum {
        let (convex, neqs) = self.split_neq();
        let base: Vec<Atom> = convex.into_iter().cloned().collect();
        // Case-split disequations; keep the best disjunct outcome.
        let mut cases: Vec<Vec<Atom>> = vec![base];
        for neq in &neqs {
            let lt = Atom::normalized(neq.expr().clone(), NormOp::Lt);
            let gt = Atom::normalized(-neq.expr(), NormOp::Lt);
            cases = cases
                .into_iter()
                .flat_map(|c| {
                    let mut a = c.clone();
                    a.push(lt.clone());
                    let mut b = c;
                    b.push(gt.clone());
                    [a, b]
                })
                .collect();
        }
        let mut best: Option<Extremum> = None;
        for case in &cases {
            let lp = Lp::build(case.iter());
            // A variable of the objective that no atom constrains can take
            // any real value: the objective is unbounded on any nonempty
            // case.
            if lp.objective_mentions_free(objective) {
                if lp.problem.is_feasible() {
                    return Extremum::Unbounded;
                }
                continue;
            }
            let obj = lp.objective(objective);
            let outcome = if maximize {
                lp.problem.maximize(&obj)
            } else {
                lp.problem.minimize(&obj)
            };
            let ext = match outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => return Extremum::Unbounded,
                LpOutcome::Optimal(opt) => {
                    // The objective's constant term is outside the LP.
                    let bound = opt.supremum() + objective.constant_term();
                    let attained = opt.attained();
                    let witness = lp.assignment(&opt.concrete_point(&lp.problem));
                    Extremum::Finite {
                        bound,
                        attained,
                        witness,
                    }
                }
            };
            best = Some(match (best, ext) {
                (None, e) => e,
                (
                    Some(Extremum::Finite {
                        bound: b1,
                        attained: a1,
                        witness: w1,
                    }),
                    Extremum::Finite {
                        bound: b2,
                        attained: a2,
                        witness: w2,
                    },
                ) => {
                    let pick_second = if maximize {
                        b2 > b1 || (b2 == b1 && a2 && !a1)
                    } else {
                        b2 < b1 || (b2 == b1 && a2 && !a1)
                    };
                    if pick_second {
                        Extremum::Finite {
                            bound: b2,
                            attained: a2,
                            witness: w2,
                        }
                    } else {
                        Extremum::Finite {
                            bound: b1,
                            attained: a1,
                            witness: w1,
                        }
                    }
                }
                (Some(other), _) => other,
            });
        }
        best.unwrap_or(Extremum::Infeasible)
    }

    /// Remove atoms entailed by the remaining ones (the expensive, LP-based
    /// canonical form for conjunctions of BJM93; cf. the cheap
    /// simplification the paper chooses as default — see `canonical`).
    pub fn remove_redundant(&self) -> Conjunction {
        let mut kept: Vec<Atom> = self.atoms.clone();
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            let rest = Conjunction::of(
                kept.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, a)| a.clone()),
            );
            if rest.implies_atom(&candidate) {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        Conjunction::of(kept)
    }
}

/// Bridge from atoms to an [`LpProblem`] with a stable variable order.
pub(crate) struct Lp {
    pub(crate) problem: LpProblem,
    pub(crate) vars: Vec<Var>,
}

impl Lp {
    /// Build an LP from convex atoms (callers must filter out `≠`).
    pub(crate) fn build<'a>(atoms: impl Iterator<Item = &'a Atom> + Clone) -> Lp {
        let vars: Vec<Var> = atoms
            .clone()
            .flat_map(|a| a.vars())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let index: BTreeMap<&Var, usize> = vars.iter().enumerate().map(|(i, v)| (v, i)).collect();
        let mut problem = LpProblem::new(vars.len());
        for a in atoms {
            debug_assert!(
                a.op() != NormOp::Neq,
                "disequations must be split before LP"
            );
            let mut coeffs = vec![Rational::zero(); vars.len()];
            for (v, c) in a.expr().terms() {
                coeffs[index[v]] = c.clone();
            }
            let rhs = -a.expr().constant_term();
            let relop = match a.op() {
                NormOp::Le => Relop::Le,
                NormOp::Lt => Relop::Lt,
                NormOp::Eq => Relop::Eq,
                NormOp::Neq => unreachable!(),
            };
            problem.push(coeffs, relop, rhs);
        }
        Lp { problem, vars }
    }

    /// Objective vector for a linear expression (constant term ignored;
    /// variables outside the LP contribute nothing, which is correct: they
    /// are unconstrained, and the caller must handle unboundedness — see
    /// `objective_mentions_free`).
    pub(crate) fn objective(&self, e: &LinExpr) -> Vec<Rational> {
        self.vars.iter().map(|v| e.coeff(v)).collect()
    }

    /// Does the expression mention a variable that is not constrained by
    /// the LP (hence free to take any value)?
    pub(crate) fn objective_mentions_free(&self, e: &LinExpr) -> bool {
        e.terms().any(|(v, _)| !self.vars.contains(v))
    }

    /// Translate a solver point back into a variable assignment.
    pub(crate) fn assignment(&self, point: &[Rational]) -> Assignment {
        self.vars
            .iter()
            .cloned()
            .zip(point.iter().cloned())
            .collect()
    }

    /// Does the polyhedron entail `e = 0`? (`sup e ≤ 0` and `inf e ≥ 0`.)
    pub(crate) fn entails_eq_zero(&self, e: &LinExpr) -> bool {
        if self.objective_mentions_free(e) {
            return false;
        }
        let obj = self.objective(e);
        let c = e.constant_term();
        let hi = match self.problem.maximize(&obj) {
            LpOutcome::Infeasible => return true,
            LpOutcome::Unbounded => return false,
            LpOutcome::Optimal(o) => o.supremum() + c,
        };
        if hi.is_positive() {
            return false;
        }
        let lo = match self.problem.minimize(&obj) {
            LpOutcome::Infeasible => return true,
            LpOutcome::Unbounded => return false,
            LpOutcome::Optimal(o) => o.supremum() + c,
        };
        !lo.is_negative()
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn x() -> LinExpr {
        LinExpr::var(v("x"))
    }
    fn y() -> LinExpr {
        LinExpr::var(v("y"))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }
    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn top_and_bottom() {
        assert!(Conjunction::top().satisfiable());
        assert!(!Conjunction::bottom().satisfiable());
        assert!(Conjunction::bottom().is_syntactically_false());
        // Trivially false atom collapses.
        let cj = Conjunction::of([Atom::le(c(5), c(2))]);
        assert!(cj.is_syntactically_false());
        // Trivially true atoms vanish.
        let t = Conjunction::of([Atom::le(c(1), c(2))]);
        assert!(t.is_top());
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let a = Atom::le(x(), c(1));
        let b = Atom::le(y(), c(2));
        let c1 = Conjunction::of([b.clone(), a.clone(), a.clone()]);
        assert_eq!(c1.atoms().len(), 2);
        let c2 = Conjunction::of([a, b]);
        assert_eq!(c1, c2);
    }

    #[test]
    fn satisfiability_box() {
        // 0 <= x <= 1 ∧ 0 <= y <= 1
        let cj = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::ge(y(), c(0)),
            Atom::le(y(), c(1)),
        ]);
        assert!(cj.satisfiable());
        let p = cj.find_point().unwrap();
        assert!(cj.eval(&p));
        // Contradiction.
        let bad = cj.and_atom(Atom::ge(x(), c(2)));
        assert!(!bad.satisfiable());
        assert!(bad.find_point().is_none());
    }

    #[test]
    fn disequation_satisfiability_convexity_lemma() {
        // x = 0 ∧ x ≠ 0 → unsat.
        let cj = Conjunction::of([Atom::eq(x(), c(0)), Atom::neq(x(), c(0))]);
        assert!(!cj.satisfiable());
        // 0 ≤ x ≤ 1 ∧ x ≠ 0 → sat (witness avoids the hyperplane).
        let cj = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::neq(x(), c(0)),
        ]);
        assert!(cj.satisfiable());
        let p = cj.find_point().unwrap();
        assert!(cj.eval(&p), "witness {p:?} must avoid x=0");
        // Two disequations carving a segment: still satisfiable.
        let cj = cj.and_atom(Atom::neq(x(), c(1)));
        assert!(cj.satisfiable());
        let p = cj.find_point().unwrap();
        assert!(cj.eval(&p));
        // Segment reduced to a point, then punctured: unsat.
        let pt = Conjunction::of([
            Atom::ge(x(), c(1)),
            Atom::le(x(), c(1)),
            Atom::neq(x(), c(1)),
        ]);
        assert!(!pt.satisfiable());
    }

    #[test]
    fn disequation_on_degenerate_line() {
        // x = y ∧ x ≠ y → unsat even though both atoms are individually sat.
        let cj = Conjunction::of([Atom::eq(x(), y()), Atom::neq(x(), y())]);
        assert!(!cj.satisfiable());
    }

    #[test]
    fn entailment_atoms() {
        // x >= 2 |= x >= 1, but not conversely.
        let strong = Conjunction::of([Atom::ge(x(), c(2))]);
        let weak = Atom::ge(x(), c(1));
        assert!(strong.implies_atom(&weak));
        let weak_c = Conjunction::of([weak]);
        assert!(!weak_c.implies_atom(&Atom::ge(x(), c(2))));
        // Equality entailment: x = 1 |= x != 2 and x <= 1.
        let eq = Conjunction::of([Atom::eq(x(), c(1))]);
        assert!(eq.implies_atom(&Atom::neq(x(), c(2))));
        assert!(eq.implies_atom(&Atom::le(x(), c(1))));
        assert!(!eq.implies_atom(&Atom::lt(x(), c(1))));
        // Unsat entails everything.
        assert!(Conjunction::bottom().implies_atom(&Atom::ge(x(), c(100))));
    }

    #[test]
    fn entailment_conjunction_geometric() {
        // The unit square entails the half-plane x + y <= 2.
        let square = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::ge(y(), c(0)),
            Atom::le(y(), c(1)),
        ]);
        let half = Conjunction::of([Atom::le(x() + y(), c(2))]);
        assert!(square.implies(&half));
        assert!(!half.implies(&square));
        assert!(square.equivalent(&square.clone()));
    }

    #[test]
    fn entailment_with_lhs_disequation() {
        // 0 <= x <= 1 ∧ x ≠ 1 |= x < 1 (the disequation sharpens the bound).
        let cj = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::neq(x(), c(1)),
        ]);
        assert!(cj.implies_atom(&Atom::lt(x(), c(1))));
        // Without the disequation it does not.
        let cj2 = Conjunction::of([Atom::ge(x(), c(0)), Atom::le(x(), c(1))]);
        assert!(!cj2.implies_atom(&Atom::lt(x(), c(1))));
    }

    #[test]
    fn optimization_closed() {
        let square = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::ge(y(), c(0)),
            Atom::le(y(), c(1)),
        ]);
        match square.maximize(&(x() + y())) {
            Extremum::Finite {
                bound,
                attained,
                witness,
            } => {
                assert_eq!(bound, r(2));
                assert!(attained);
                assert_eq!(witness[&v("x")], r(1));
                assert_eq!(witness[&v("y")], r(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        match square.minimize(&(x() - y())) {
            Extremum::Finite { bound, .. } => assert_eq!(bound, r(-1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optimization_open_and_unbounded() {
        let open = Conjunction::of([Atom::lt(x(), c(1)), Atom::ge(x(), c(0))]);
        match open.maximize(&x()) {
            Extremum::Finite {
                bound,
                attained,
                witness,
            } => {
                assert_eq!(bound, r(1));
                assert!(!attained);
                assert!(open.eval(&witness));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(open.minimize(&(-&x())), {
            // min -x over [0,1) is -1, not attained
            Extremum::Finite {
                bound: r(-1),
                attained: false,
                witness: match open.maximize(&x()) {
                    Extremum::Finite { witness, .. } => witness,
                    _ => unreachable!(),
                },
            }
        });
        let half = Conjunction::of([Atom::ge(x(), c(0))]);
        assert_eq!(half.maximize(&x()), Extremum::Unbounded);
        assert_eq!(Conjunction::bottom().maximize(&x()), Extremum::Infeasible);
    }

    #[test]
    fn optimization_with_disequation_puncture() {
        // max x over 0 <= x <= 1 ∧ x ≠ 1 → sup 1, not attained.
        let cj = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::le(x(), c(1)),
            Atom::neq(x(), c(1)),
        ]);
        match cj.maximize(&x()) {
            Extremum::Finite {
                bound,
                attained,
                witness,
            } => {
                assert_eq!(bound, r(1));
                assert!(!attained);
                assert!(cj.eval(&witness));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn objective_with_unconstrained_variable_is_unbounded() {
        let cj = Conjunction::of([Atom::ge(x(), c(0)), Atom::le(x(), c(1))]);
        // y is unconstrained: x + y is unbounded both ways.
        assert_eq!(cj.maximize(&(x() + y())), Extremum::Unbounded);
        assert_eq!(cj.minimize(&(x() + y())), Extremum::Unbounded);
    }

    #[test]
    fn redundancy_removal() {
        // x <= 1 ∧ x <= 2 ∧ x >= 0: the middle atom is redundant.
        let cj = Conjunction::of([
            Atom::le(x(), c(1)),
            Atom::le(x(), c(2)),
            Atom::ge(x(), c(0)),
        ]);
        let reduced = cj.remove_redundant();
        assert_eq!(reduced.atoms().len(), 2);
        assert!(reduced.equivalent(&cj));
        // Non-obvious redundancy: x >= 0 ∧ y >= 0 makes x + y >= 0 redundant.
        let cj = Conjunction::of([
            Atom::ge(x(), c(0)),
            Atom::ge(y(), c(0)),
            Atom::ge(x() + y(), c(0)),
        ]);
        assert_eq!(cj.remove_redundant().atoms().len(), 2);
    }

    #[test]
    fn substitution_and_rename() {
        let cj = Conjunction::of([Atom::le(x() + y(), c(3))]);
        let s = cj.substitute(&v("y"), &c(1));
        assert!(s.implies_atom(&Atom::le(x(), c(2))));
        let mut map = BTreeMap::new();
        map.insert(v("x"), v("z"));
        let renamed = cj.rename(&map);
        assert!(renamed.vars().contains(&v("z")));
        assert!(!renamed.vars().contains(&v("x")));
    }

    #[test]
    fn display() {
        let cj = Conjunction::of([Atom::ge(x(), c(0)), Atom::le(x(), c(1))]);
        let s = cj.to_string();
        assert!(s.contains("∧"), "{s}");
        assert_eq!(Conjunction::top().to_string(), "true");
    }
}
