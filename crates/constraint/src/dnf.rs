//! Disjunctive constraints (§3.1): disjunctions of conjunctions, with
//! negation of conjunctive constraints, case-splitting elimination, and
//! exact DNF entailment.

use crate::atom::{Atom, NormOp};
use crate::conjunction::Conjunction;
use crate::error::ConstraintError;
use crate::linexpr::Assignment;
use crate::var::Var;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// DNF products below a minimum pair count are never worth forking a
// parallel region for: each pair is one conjunction merge, so the spawn
// cost dominates tiny products (and the paper's worked examples stay on
// their exact serial path). The default lives in
// `lyric_engine::DNF_PARALLEL_MIN_PAIRS`; per-query overrides come from
// `ExecOptions::with_dnf_min_pairs` / `LYRIC_DNF_MIN_PAIRS` and are
// consulted through `lyric_engine::dnf_parallel_min_pairs` at each
// product site.

/// A disjunction of conjunctions of normalized atoms.
///
/// Invariants: syntactically false disjuncts are dropped and duplicates
/// removed; the empty disjunction is the canonical `false`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dnf {
    disjuncts: Vec<Conjunction>,
}

impl Dnf {
    /// The always-false DNF (no disjuncts).
    pub fn bottom() -> Dnf {
        Dnf::default()
    }

    /// The always-true DNF (one empty conjunction).
    pub fn top() -> Dnf {
        Dnf {
            disjuncts: vec![Conjunction::top()],
        }
    }

    /// Build from disjuncts, dropping syntactic falsities and duplicates.
    pub fn of(disjuncts: impl IntoIterator<Item = Conjunction>) -> Dnf {
        let mut ds: Vec<Conjunction> = disjuncts
            .into_iter()
            .filter(|d| !d.is_syntactically_false())
            .collect();
        ds.sort();
        ds.dedup();
        Dnf { disjuncts: ds }
    }

    /// A single-conjunction DNF.
    pub fn from_conjunction(c: Conjunction) -> Dnf {
        Dnf::of([c])
    }

    /// The disjuncts, in canonical order.
    pub fn disjuncts(&self) -> &[Conjunction] {
        &self.disjuncts
    }

    /// Syntactically false (no disjunct survived construction)?
    pub fn is_syntactically_false(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// All variables occurring anywhere.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.disjuncts.iter().flat_map(|d| d.vars()).collect()
    }

    /// Logical disjunction.
    pub fn or(&self, other: &Dnf) -> Dnf {
        Dnf::of(self.disjuncts.iter().chain(&other.disjuncts).cloned())
    }

    /// Logical conjunction (distributes: `|self|·|other|` disjuncts).
    ///
    /// Products of at least [`lyric_engine::dnf_parallel_min_pairs`]
    /// pairs are evaluated row-parallel under a multi-threaded engine
    /// context; [`Dnf::of`] re-sorts the disjuncts, so the result is
    /// identical either way.
    pub fn and(&self, other: &Dnf) -> Dnf {
        lyric_engine::trace_event(|| lyric_engine::EventKind::DnfProduct {
            left: self.disjuncts.len(),
            right: other.disjuncts.len(),
        });
        let pairs = self.disjuncts.len() * other.disjuncts.len();
        if pairs >= lyric_engine::dnf_parallel_min_pairs() {
            let rows = lyric_engine::parallel_map(&self.disjuncts, |_, a| {
                other
                    .disjuncts
                    .iter()
                    .map(|b| {
                        lyric_engine::note(lyric_engine::Resource::Disjuncts);
                        a.and(b)
                    })
                    .collect::<Vec<Conjunction>>()
            });
            return Dnf::of(rows.into_iter().flatten());
        }
        let mut out = Vec::with_capacity(pairs);
        for a in &self.disjuncts {
            for b in &other.disjuncts {
                lyric_engine::note(lyric_engine::Resource::Disjuncts);
                out.push(a.and(b));
            }
        }
        Dnf::of(out)
    }

    /// Negation of a *conjunction* — §3.1 rule (a) of the disjunctive
    /// family: `¬(a₁ ∧ … ∧ aₙ) = ¬a₁ ∨ … ∨ ¬aₙ`, each `¬aᵢ` again a single
    /// atom. Linear in the conjunction size.
    pub fn negate_conjunction(c: &Conjunction) -> Dnf {
        if c.is_syntactically_false() {
            return Dnf::top();
        }
        lyric_engine::note_many(lyric_engine::Resource::Disjuncts, c.atoms().len() as u64);
        Dnf::of(c.atoms().iter().map(|a| Conjunction::of([a.negate()])))
    }

    /// General DNF negation. **Exponential** in the number of disjuncts —
    /// the paper deliberately keeps negation out of the disjunctive family
    /// except on conjunctions; this is provided for tests and small
    /// formulas only.
    pub fn negate(&self) -> Dnf {
        let mut acc = Dnf::top();
        for d in &self.disjuncts {
            acc = acc.and(&Dnf::negate_conjunction(d));
        }
        acc
    }

    /// Exact satisfiability: some disjunct is satisfiable.
    pub fn satisfiable(&self) -> bool {
        self.disjuncts.iter().any(Conjunction::satisfiable)
    }

    /// A satisfying point, if any.
    pub fn find_point(&self) -> Option<Assignment> {
        self.disjuncts.iter().find_map(Conjunction::find_point)
    }

    /// Evaluate at a point (unbound variables read as 0).
    pub fn eval(&self, point: &Assignment) -> bool {
        self.disjuncts.iter().any(|d| d.eval(point))
    }

    /// Substitute a variable by an expression in every disjunct.
    pub fn substitute(&self, v: &Var, by: &crate::linexpr::LinExpr) -> Dnf {
        Dnf::of(self.disjuncts.iter().map(|d| d.substitute(v, by)))
    }

    /// Rename variables in every disjunct.
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> Dnf {
        Dnf::of(self.disjuncts.iter().map(|d| d.rename(map)))
    }

    /// Eliminate a variable: `∃v. self`, distributing the quantifier over
    /// the disjunction. Disjuncts where `v` occurs in a disequation are
    /// case-split (`e ≠ 0` → `e < 0 ∨ e > 0`) first, so elimination is
    /// total at DNF level.
    pub fn eliminate(&self, v: &Var) -> Dnf {
        let mut out: Vec<Conjunction> = Vec::new();
        let mut queue: Vec<Conjunction> = self.disjuncts.clone();
        while let Some(d) = queue.pop() {
            match d.eliminate(v) {
                Ok(c) => out.push(c),
                Err(ConstraintError::DisequationElimination(_)) => {
                    // Split the first blocking disequation and retry both arms.
                    let neq = d
                        .atoms()
                        .iter()
                        .find(|a| a.op() == NormOp::Neq && a.contains(v))
                        .expect("blocking disequation must exist")
                        .clone();
                    let rest = Conjunction::of(d.atoms().iter().filter(|a| **a != neq).cloned());
                    queue.push(rest.and_atom(Atom::normalized(neq.expr().clone(), NormOp::Lt)));
                    queue.push(rest.and_atom(Atom::normalized(-neq.expr(), NormOp::Lt)));
                }
                Err(e) => unreachable!("unexpected elimination error: {e}"),
            }
        }
        Dnf::of(out)
    }

    /// Eliminate several variables in order.
    pub fn eliminate_all<'a>(&self, vs: impl IntoIterator<Item = &'a Var>) -> Dnf {
        let mut acc = self.clone();
        for v in vs {
            acc = acc.eliminate(v);
        }
        acc
    }

    /// The paper's restricted projection for the disjunctive family: keep
    /// exactly `keep`, eliminating at most one variable or all but one.
    pub fn project_restricted(&self, keep: &[Var]) -> Result<Dnf, ConstraintError> {
        let vars = self.vars();
        let eliminate: Vec<Var> = vars.iter().filter(|v| !keep.contains(v)).cloned().collect();
        let n = vars.len();
        let k = eliminate.len();
        if !(k <= 1 || n - k <= 1) {
            return Err(ConstraintError::RestrictedProjection {
                eliminate: k,
                free: n,
            });
        }
        Ok(self.eliminate_all(&eliminate))
    }

    /// Exact entailment between DNFs: every disjunct of `self` must entail
    /// the disjunction `other`. Implemented by DPLL-style refutation of
    /// `D ∧ ¬Q₁ ∧ … ∧ ¬Qₖ`, branching over the atoms of each `¬Qᵢ` —
    /// worst-case exponential in `Σ|Qᵢ|` (the problem is co-NP-hard;
    /// cf. §3.1's remark on redundant-disjunct detection) but with eager
    /// unsatisfiability pruning at every node.
    pub fn implies(&self, other: &Dnf) -> bool {
        lyric_engine::tally(|s| s.entailment_checks += 1);
        self.disjuncts
            .iter()
            .all(|d| refute(d.clone(), &other.disjuncts))
    }

    /// Mutual entailment: same point set?
    pub fn equivalent(&self, other: &Dnf) -> bool {
        self.implies(other) && other.implies(self)
    }
}

/// Is `d ∧ ¬qs[0] ∧ ¬qs[1] ∧ …` unsatisfiable?
fn refute(d: Conjunction, qs: &[Conjunction]) -> bool {
    if !d.satisfiable() {
        return true;
    }
    match qs.split_first() {
        None => false,
        Some((q, rest)) => {
            // ¬q = ∨ₐ ¬a : the conjunction with d is unsat iff every branch is.
            q.atoms()
                .iter()
                .all(|a| refute(d.and_atom(a.negate()), rest))
        }
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "false");
        }
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if self.disjuncts.len() > 1 && d.atoms().len() > 1 {
                write!(f, "({d})")?;
            } else {
                write!(f, "{d}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use lyric_arith::Rational;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn x() -> LinExpr {
        LinExpr::var(v("x"))
    }
    fn y() -> LinExpr {
        LinExpr::var(v("y"))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }

    fn interval(lo: i64, hi: i64) -> Conjunction {
        Conjunction::of([Atom::ge(x(), c(lo)), Atom::le(x(), c(hi))])
    }

    #[test]
    fn construction_drops_false_and_dedups() {
        let d = Dnf::of([interval(0, 1), Conjunction::bottom(), interval(0, 1)]);
        assert_eq!(d.disjuncts().len(), 1);
        assert!(Dnf::bottom().is_syntactically_false());
        assert!(!Dnf::top().is_syntactically_false());
    }

    #[test]
    fn or_and() {
        let a = Dnf::from_conjunction(interval(0, 1));
        let b = Dnf::from_conjunction(interval(5, 6));
        let union = a.or(&b);
        assert_eq!(union.disjuncts().len(), 2);
        assert!(union.satisfiable());
        // Intersection of disjoint intervals is unsatisfiable (but not
        // syntactically false).
        let inter = a.and(&b);
        assert!(!inter.satisfiable());
        // Overlapping intersection.
        let c1 = Dnf::from_conjunction(interval(0, 10));
        let c2 = Dnf::from_conjunction(interval(5, 15));
        assert!(c1.and(&c2).satisfiable());
    }

    #[test]
    fn negate_conjunction_covers_complement() {
        let box01 = interval(0, 1);
        let neg = Dnf::negate_conjunction(&box01);
        assert_eq!(neg.disjuncts().len(), 2); // x < 0 ∨ x > 1
        let mut inside = Assignment::new();
        inside.insert(v("x"), Rational::from_pair(1, 2));
        assert!(box01.eval(&inside) && !neg.eval(&inside));
        let mut outside = Assignment::new();
        outside.insert(v("x"), Rational::from_int(2));
        assert!(!box01.eval(&outside) && neg.eval(&outside));
        // Negating bottom gives top.
        assert!(Dnf::negate_conjunction(&Conjunction::bottom()).equivalent(&Dnf::top()));
    }

    #[test]
    fn double_negation_on_small_formulas() {
        let d = Dnf::of([interval(0, 1), interval(3, 4)]);
        assert!(d.negate().negate().equivalent(&d));
    }

    #[test]
    fn entailment_union_of_intervals() {
        // [0,1] ∨ [2,3]  |=  [0,3]; converse fails ((1,2) gap).
        let parts = Dnf::of([interval(0, 1), interval(2, 3)]);
        let whole = Dnf::from_conjunction(interval(0, 3));
        assert!(parts.implies(&whole));
        assert!(!whole.implies(&parts));
    }

    #[test]
    fn entailment_needs_joint_cover() {
        // [0,2] |= [0,1] ∨ [1,2] — neither disjunct alone suffices.
        let whole = Dnf::from_conjunction(interval(0, 2));
        let split = Dnf::of([interval(0, 1), interval(1, 2)]);
        assert!(whole.implies(&split));
        // But [0,2] does not entail [0,1] ∨ (3,4).
        let gap = Dnf::of([interval(0, 1), interval(3, 4)]);
        assert!(!whole.implies(&gap));
    }

    #[test]
    fn entailment_with_strictness() {
        // [0,1) ∨ {1} = [0,1]
        let half_open = Conjunction::of([Atom::ge(x(), c(0)), Atom::lt(x(), c(1))]);
        let point = Conjunction::of([Atom::eq(x(), c(1))]);
        let closed = Dnf::from_conjunction(interval(0, 1));
        let pieces = Dnf::of([half_open, point]);
        assert!(pieces.equivalent(&closed));
    }

    #[test]
    fn elimination_distributes_over_disjunction() {
        // ∃x. ((y <= x ∧ x <= 1) ∨ (y <= x ∧ x <= 5)) ⇒ y <= 1 ∨ y <= 5 ≡ y <= 5
        let d = Dnf::of([
            Conjunction::of([Atom::le(y(), x()), Atom::le(x(), c(1))]),
            Conjunction::of([Atom::le(y(), x()), Atom::le(x(), c(5))]),
        ]);
        let out = d.eliminate(&v("x"));
        let expect = Dnf::from_conjunction(Conjunction::of([Atom::le(y(), c(5))]));
        assert!(out.equivalent(&expect));
    }

    #[test]
    fn elimination_splits_disequations() {
        // ∃x. (0 <= x ≤ 2 ∧ x ≠ 1 ∧ y = x): projection is 0<=y<=2 ∧ y≠1...
        // here y = x makes it substitution; force the FM path instead:
        // ∃x. (y <= x ∧ x <= 2 ∧ x ≠ 1) ⇒ y <= 2 (the puncture does not
        // shrink the projection: pick x ≠ 1 whenever y < ... except y = 2?
        // For y = 2 the only x is 2 (≠1 fine). For y <= 2 always works.)
        let d = Dnf::from_conjunction(Conjunction::of([
            Atom::le(y(), x()),
            Atom::le(x(), c(2)),
            Atom::neq(x(), c(1)),
        ]));
        let out = d.eliminate(&v("x"));
        let expect = Dnf::from_conjunction(Conjunction::of([Atom::le(y(), c(2))]));
        assert!(out.equivalent(&expect), "got {out}");
    }

    #[test]
    fn restricted_projection_enforced() {
        let d = Dnf::from_conjunction(Conjunction::of([Atom::le(
            x() + y() + LinExpr::var(v("z")) + LinExpr::var(v("q")),
            c(1),
        )]));
        assert!(d.project_restricted(&[v("x"), v("y"), v("z")]).is_ok());
        assert!(d.project_restricted(&[v("x")]).is_ok());
        assert!(matches!(
            d.project_restricted(&[v("x"), v("y")]),
            Err(ConstraintError::RestrictedProjection { .. })
        ));
    }

    #[test]
    fn eval_and_find_point() {
        let d = Dnf::of([interval(0, 1), interval(5, 6)]);
        let p = d.find_point().unwrap();
        assert!(d.eval(&p));
        let empty = Dnf::of([Conjunction::of([Atom::ge(x(), c(1)), Atom::le(x(), c(0))])]);
        assert!(!empty.satisfiable());
        assert!(empty.find_point().is_none());
    }

    #[test]
    fn display() {
        let d = Dnf::of([interval(0, 1), interval(5, 6)]);
        let s = d.to_string();
        assert!(s.contains("∨"), "{s}");
        assert_eq!(Dnf::bottom().to_string(), "false");
    }
}
