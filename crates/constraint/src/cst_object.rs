//! CST objects — the paper's constraint/spatio-temporal objects (§3.2).
//!
//! A [`CstObject`] is a (possibly infinite) set of points in
//! `ℝ^arity`, represented as a **dimension schema** (the ordered list of
//! free variables, e.g. `(w, z)` for a desk's `extent : CST(w,z)`
//! attribute) plus a disjunction of conjunctions in which every variable
//! outside the schema is implicitly existentially quantified. This single
//! representation covers all four §3.1 families; [`CstObject::family`]
//! classifies an object into the smallest family containing it.
//!
//! Existential quantification is kept **lazy** (the paper's explicit design
//! choice: eager elimination can explode exponentially) and discharged by
//! [`CstObject::canonicalize`]'s simplifying eliminations — equality
//! substitution and non-expanding Fourier–Motzkin steps, in the style the
//! paper attributes to CLP(R) output simplification.

use crate::atom::Atom;
use crate::conjunction::{Conjunction, Extremum};
use crate::dnf::Dnf;
use crate::error::ConstraintError;
use crate::interval::IntervalBox;
use crate::linexpr::LinExpr;
use crate::var::Var;
use lyric_arith::Rational;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

static FRESH: AtomicUsize = AtomicUsize::new(0);

fn fresh_counter() -> usize {
    FRESH.fetch_add(1, Ordering::Relaxed)
}

/// The four §3.1 constraint families, ordered by inclusion
/// (`Conjunctive ⊂ {ExistentialConjunctive, Disjunctive} ⊂
/// DisjunctiveExistential`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CstFamily {
    /// One disjunct, no bound variables.
    Conjunctive,
    /// One disjunct with existentially quantified variables.
    ExistentialConjunctive,
    /// Multiple disjuncts, no bound variables.
    Disjunctive,
    /// Multiple disjuncts with existentially quantified variables.
    DisjunctiveExistential,
}

/// The §3.1 algebra operations whose family closure matters. Used by the
/// static analyzer ([`CstFamily::apply`]) to predict operation legality
/// and result family without building any constraint object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyOp {
    /// Conjunction of two objects.
    Conjoin,
    /// Disjunction of two objects.
    Disjoin,
    /// Negation of one object.
    Negate,
    /// Restricted projection (eliminate at most one variable, or all but
    /// one); legality additionally depends on arities, which the table
    /// cannot see.
    ProjectRestricted,
    /// Unrestricted (lazy) projection.
    Project,
}

impl CstFamily {
    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            CstFamily::Conjunctive => "conjunctive",
            CstFamily::ExistentialConjunctive => "existential-conjunctive",
            CstFamily::Disjunctive => "disjunctive",
            CstFamily::DisjunctiveExistential => "disjunctive-existential",
        }
    }

    /// Does the family admit more than one disjunct?
    pub fn is_disjunctive(&self) -> bool {
        matches!(
            self,
            CstFamily::Disjunctive | CstFamily::DisjunctiveExistential
        )
    }

    /// Does the family admit existentially quantified variables?
    pub fn is_existential(&self) -> bool {
        matches!(
            self,
            CstFamily::ExistentialConjunctive | CstFamily::DisjunctiveExistential
        )
    }

    /// Rebuild a family from its two capability bits.
    fn from_bits(disjunctive: bool, existential: bool) -> CstFamily {
        match (disjunctive, existential) {
            (false, false) => CstFamily::Conjunctive,
            (false, true) => CstFamily::ExistentialConjunctive,
            (true, false) => CstFamily::Disjunctive,
            (true, true) => CstFamily::DisjunctiveExistential,
        }
    }

    /// Least upper bound in the inclusion lattice.
    pub fn join(self, other: CstFamily) -> CstFamily {
        CstFamily::from_bits(
            self.is_disjunctive() || other.is_disjunctive(),
            self.is_existential() || other.is_existential(),
        )
    }

    /// Smallest family containing this one that admits quantifiers.
    pub fn with_existential(self) -> CstFamily {
        CstFamily::from_bits(self.is_disjunctive(), true)
    }

    /// Smallest family containing this one that admits disjunction.
    pub fn with_disjunctive(self) -> CstFamily {
        CstFamily::from_bits(true, self.is_existential())
    }

    /// Is the family closed under `op`, i.e. is the operation defined for
    /// every member? (`ProjectRestricted` is additionally arity-limited,
    /// which this table cannot express.)
    pub fn closed_under(self, op: FamilyOp) -> bool {
        self.apply(op, None).is_some()
    }

    /// The §3.1 closure table as a pure function: the family of the result
    /// of `op` applied to an operand of family `self` (and `other` for
    /// binary ops), or `None` when the operation is undefined for the
    /// family — the analyzer turns `None` into a compile-time diagnostic
    /// where the evaluator would raise a runtime
    /// [`ConstraintError`](crate::ConstraintError).
    pub fn apply(self, op: FamilyOp, other: Option<CstFamily>) -> Option<CstFamily> {
        let rhs = other.unwrap_or(CstFamily::Conjunctive);
        match op {
            FamilyOp::Conjoin => Some(self.join(rhs)),
            FamilyOp::Disjoin => Some(self.join(rhs).with_disjunctive()),
            // §3.1: negation is defined for the conjunctive family only,
            // and yields a disjunction of negated atoms.
            FamilyOp::Negate => match self {
                CstFamily::Conjunctive => Some(CstFamily::Disjunctive),
                _ => None,
            },
            // Restricted projection stays inside the family (disequation
            // elimination may case-split, hence the disjunctive join).
            FamilyOp::ProjectRestricted => Some(self),
            // Lazy projection introduces quantifiers.
            FamilyOp::Project => Some(self.with_existential()),
        }
    }
}

/// A constraint object: an `arity()`-dimensional point set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CstObject {
    /// The dimension schema: ordered, distinct free variables.
    free: Vec<Var>,
    /// Disjuncts; variables outside `free` are existentially quantified
    /// per-disjunct. Sorted and deduplicated; empty means the empty set.
    disjuncts: Vec<Conjunction>,
}

impl CstObject {
    /// Build from a schema and disjuncts. Panics if `free` contains
    /// duplicates.
    pub fn new(free: Vec<Var>, disjuncts: impl IntoIterator<Item = Conjunction>) -> CstObject {
        let distinct: BTreeSet<&Var> = free.iter().collect();
        assert_eq!(
            distinct.len(),
            free.len(),
            "duplicate variable in CST schema"
        );
        let mut ds: Vec<Conjunction> = disjuncts
            .into_iter()
            .filter(|d| !d.is_syntactically_false())
            .collect();
        ds.sort();
        ds.dedup();
        CstObject {
            free,
            disjuncts: ds,
        }
    }

    /// The full space `ℝ^|free|`.
    pub fn top(free: Vec<Var>) -> CstObject {
        CstObject::new(free, [Conjunction::top()])
    }

    /// The empty point set.
    pub fn bottom(free: Vec<Var>) -> CstObject {
        CstObject::new(free, [])
    }

    /// A single-conjunction object.
    pub fn from_conjunction(free: Vec<Var>, c: Conjunction) -> CstObject {
        CstObject::new(free, [c])
    }

    /// From a quantifier-free DNF.
    pub fn from_dnf(free: Vec<Var>, d: &Dnf) -> CstObject {
        CstObject::new(free, d.disjuncts().iter().cloned())
    }

    /// A single point `(values…)` over the given schema, as the conjunction
    /// of equalities — used by `MAX_POINT`/`MIN_POINT`.
    pub fn point(free: Vec<Var>, values: &[Rational]) -> CstObject {
        assert_eq!(free.len(), values.len());
        let atoms = free
            .iter()
            .zip(values)
            .map(|(v, val)| Atom::eq(LinExpr::var(v.clone()), LinExpr::constant(val.clone())));
        let c = Conjunction::of(atoms);
        CstObject::new(free, [c])
    }

    /// The dimension schema.
    pub fn free(&self) -> &[Var] {
        &self.free
    }

    /// Dimension of the point set.
    pub fn arity(&self) -> usize {
        self.free.len()
    }

    /// The disjuncts, each an implicitly existentially quantified
    /// conjunction over the schema plus its bound variables.
    pub fn disjuncts(&self) -> &[Conjunction] {
        &self.disjuncts
    }

    /// The object's interval abstraction: the hull of every disjunct's
    /// [`Conjunction::interval_box`], restricted to the schema variables.
    /// Sound in the same direction as the per-conjunction box — the point
    /// set is contained in the box (restriction to the free variables only
    /// widens, and the hull of over-approximations over-approximates the
    /// union) — so an empty result proves the object empty, and two
    /// objects with disjoint boxes have an unsatisfiable intersection.
    /// Unlike [`bounding_box`](Self::bounding_box) this runs no LP: it is
    /// the cheap static estimate, not the exact extremal one.
    pub fn interval_box(&self) -> IntervalBox {
        self.disjuncts
            .iter()
            .map(|d| d.interval_box().restrict(&self.free))
            .fold(IntervalBox::empty(), |acc, bx| acc.hull(&bx))
    }

    /// Existentially quantified variables of a disjunct.
    pub fn bound_vars(&self, d: &Conjunction) -> BTreeSet<Var> {
        d.vars()
            .into_iter()
            .filter(|v| !self.free.contains(v))
            .collect()
    }

    /// Does any disjunct carry existential quantifiers?
    pub fn has_bound_vars(&self) -> bool {
        self.disjuncts
            .iter()
            .any(|d| !self.bound_vars(d).is_empty())
    }

    /// Smallest §3.1 family containing this object.
    pub fn family(&self) -> CstFamily {
        let disjunctive = self.disjuncts.len() > 1;
        let existential = self.has_bound_vars();
        match (disjunctive, existential) {
            (false, false) => CstFamily::Conjunctive,
            (false, true) => CstFamily::ExistentialConjunctive,
            (true, false) => CstFamily::Disjunctive,
            (true, true) => CstFamily::DisjunctiveExistential,
        }
    }

    /// α-rename every bound variable to a globally fresh name, so that
    /// conjoining two objects can never capture.
    fn freshen_bound(&self) -> CstObject {
        let disjuncts = self
            .disjuncts
            .iter()
            .map(|d| {
                let map: BTreeMap<Var, Var> = self
                    .bound_vars(d)
                    .into_iter()
                    .map(|v| {
                        let fresh = Var::fresh(v.name(), fresh_counter());
                        (v, fresh)
                    })
                    .collect();
                d.rename(&map)
            })
            .collect::<Vec<_>>();
        CstObject::new(self.free.clone(), disjuncts)
    }

    /// Logical conjunction (geometric intersection on shared variables,
    /// natural join otherwise): the schema of the result is `self.free`
    /// followed by the new variables of `other.free`. Bound variables are
    /// α-renamed apart first.
    pub fn and(&self, other: &CstObject) -> CstObject {
        let a = self.freshen_bound();
        let b = other.freshen_bound();
        let mut free = a.free.clone();
        for v in &b.free {
            if !free.contains(v) {
                free.push(v.clone());
            }
        }
        let mut ds = Vec::with_capacity(a.disjuncts.len() * b.disjuncts.len());
        for da in &a.disjuncts {
            for db in &b.disjuncts {
                lyric_engine::note(lyric_engine::Resource::Disjuncts);
                ds.push(da.and(db));
            }
        }
        CstObject::new(free, ds)
    }

    /// Logical disjunction (union); schemas are merged like [`and`](Self::and).
    pub fn or(&self, other: &CstObject) -> CstObject {
        let mut free = self.free.clone();
        for v in &other.free {
            if !free.contains(v) {
                free.push(v.clone());
            }
        }
        CstObject::new(free, self.disjuncts.iter().chain(&other.disjuncts).cloned())
    }

    /// Negation — defined for the conjunctive family only (§3.1 rule (a) of
    /// the disjunctive family).
    pub fn negate(&self) -> Result<CstObject, ConstraintError> {
        if self.family() != CstFamily::Conjunctive && !self.disjuncts.is_empty() {
            return Err(ConstraintError::NonConjunctiveNegation);
        }
        if self.disjuncts.is_empty() {
            return Ok(CstObject::top(self.free.clone()));
        }
        let neg = Dnf::negate_conjunction(&self.disjuncts[0]);
        Ok(CstObject::from_dnf(self.free.clone(), &neg))
    }

    /// The projection connective `((new_free) | self)` of §3.1/§4.2 in its
    /// **lazy** form: variables dropped from the schema become
    /// existentially quantified; variables added are unconstrained new
    /// dimensions. Always cheap; discharge quantifiers later with
    /// [`canonicalize`](Self::canonicalize) or [`project_eager`](Self::project_eager).
    pub fn project(&self, new_free: Vec<Var>) -> CstObject {
        CstObject::new(new_free, self.disjuncts.clone())
    }

    /// Eager projection: like [`project`](Self::project) but immediately
    /// eliminates all quantified variables by equality substitution,
    /// Fourier–Motzkin, and disequation case-splitting. Total, but may grow
    /// the representation — the restricted families exist precisely to
    /// bound this (benchmark E5).
    pub fn project_eager(&self, new_free: Vec<Var>) -> CstObject {
        let lazy = self.project(new_free);
        lazy.eliminate_bound()
    }

    /// The paper's restricted projection for quantifier-free objects:
    /// eliminates at most one variable or all but one per step (§3.1).
    pub fn project_restricted(&self, new_free: Vec<Var>) -> Result<CstObject, ConstraintError> {
        let eliminated: Vec<&Var> = self.free.iter().filter(|v| !new_free.contains(v)).collect();
        let k = eliminated.len();
        let n = self.free.len();
        if !(k <= 1 || n - k <= 1) {
            return Err(ConstraintError::RestrictedProjection {
                eliminate: k,
                free: n,
            });
        }
        Ok(self.project_eager(new_free))
    }

    /// Eliminate every bound variable eagerly, yielding a quantifier-free
    /// (conjunctive or disjunctive) object.
    pub fn eliminate_bound(&self) -> CstObject {
        let mut out: Vec<Conjunction> = Vec::new();
        for d in &self.disjuncts {
            let bound = self.bound_vars(d);
            let dnf = Dnf::from_conjunction(d.clone()).eliminate_all(bound.iter());
            out.extend(dnf.disjuncts().iter().cloned());
        }
        CstObject::new(self.free.clone(), out)
    }

    /// Exact emptiness test (quantifiers do not affect satisfiability).
    pub fn satisfiable(&self) -> bool {
        self.disjuncts.iter().any(Conjunction::satisfiable)
    }

    /// Membership test for a concrete point over the schema: substitute and
    /// decide the residual existential conjunction.
    pub fn contains_point(&self, values: &[Rational]) -> bool {
        assert_eq!(values.len(), self.free.len(), "point dimension mismatch");
        self.disjuncts.iter().any(|d| {
            let mut g = d.clone();
            for (v, val) in self.free.iter().zip(values) {
                g = g.substitute(v, &LinExpr::constant(val.clone()));
            }
            g.satisfiable()
        })
    }

    /// A concrete point of the set, if nonempty: values follow the schema
    /// order.
    pub fn find_point(&self) -> Option<Vec<Rational>> {
        for d in &self.disjuncts {
            if let Some(p) = d.find_point() {
                return Some(
                    self.free
                        .iter()
                        .map(|v| p.get(v).cloned().unwrap_or_else(Rational::zero))
                        .collect(),
                );
            }
        }
        None
    }

    /// Entailment `self |= other` — point-set containment. The schemas are
    /// aligned **positionally** (§4.1: "CST expressions are invariant to
    /// variable names"); arities must match. Operands are eagerly projected
    /// to quantifier-free form first, per §4.2's restriction of `|=` to
    /// disjunctive formulas.
    pub fn implies(&self, other: &CstObject) -> bool {
        assert_eq!(
            self.arity(),
            other.arity(),
            "|= requires objects of equal dimension"
        );
        let lhs = self.eliminate_bound();
        let rhs = other.align_to(&self.free).eliminate_bound();
        let l = Dnf::of(lhs.disjuncts.iter().cloned());
        let r = Dnf::of(rhs.disjuncts.iter().cloned());
        l.implies(&r)
    }

    /// Same point set? (Mutual entailment; the semantic comparison behind
    /// CST-object identity, since canonical forms are not unique — §3.1.)
    pub fn denotes_same(&self, other: &CstObject) -> bool {
        self.implies(other) && other.implies(self)
    }

    /// Rename this object's schema positionally to `target`, α-renaming
    /// bound variables out of the way first.
    pub fn align_to(&self, target: &[Var]) -> CstObject {
        assert_eq!(target.len(), self.free.len());
        if target == self.free {
            return self.clone();
        }
        let fresh = self.freshen_bound();
        let map: BTreeMap<Var, Var> = fresh
            .free
            .iter()
            .cloned()
            .zip(target.iter().cloned())
            .collect();
        CstObject::new(
            target.to_vec(),
            fresh.disjuncts.iter().map(|d| d.rename(&map)),
        )
    }

    /// Rename schema variables (positionally-preserving); `map` entries for
    /// bound variables are ignored.
    pub fn rename_free(&self, map: &BTreeMap<Var, Var>) -> CstObject {
        let target: Vec<Var> = self
            .free
            .iter()
            .map(|v| map.get(v).unwrap_or(v).clone())
            .collect();
        self.align_to(&target)
    }

    /// Substitute a schema variable by a constant, dropping it from the
    /// schema (a geometric *slice*, e.g. the paper's "projection of their
    /// cut at the height of 1/2 feet").
    pub fn slice(&self, v: &Var, value: &Rational) -> CstObject {
        let free: Vec<Var> = self.free.iter().filter(|f| *f != v).cloned().collect();
        CstObject::new(
            free,
            self.disjuncts
                .iter()
                .map(|d| d.substitute(v, &LinExpr::constant(value.clone()))),
        )
    }

    /// Maximize a linear objective over the point set (the `MAX … SUBJECT
    /// TO` operator). The objective may only mention schema variables.
    pub fn maximize(&self, objective: &LinExpr) -> Extremum {
        self.optimize(objective, true)
    }

    /// Minimize a linear objective over the point set.
    pub fn minimize(&self, objective: &LinExpr) -> Extremum {
        self.optimize(objective, false)
    }

    fn optimize(&self, objective: &LinExpr, maximize: bool) -> Extremum {
        // α-rename bound vars away from objective variables, then optimize
        // each disjunct over all its variables: optimizing a function of
        // the free variables over the lifted set equals optimizing over the
        // projection.
        let obj_vars = objective.vars();
        assert!(
            obj_vars.iter().all(|v| self.free.contains(v)),
            "objective mentions non-schema variables"
        );
        let safe = self.freshen_bound();
        let mut best: Option<Extremum> = None;
        for d in &safe.disjuncts {
            // Ground objective vars that the disjunct leaves unconstrained
            // would be unbounded — Conjunction::optimize handles that; but a
            // schema var absent from the disjunct must still be seen as
            // free, which it is.
            let e = if maximize {
                d.maximize(objective)
            } else {
                d.minimize(objective)
            };
            match e {
                Extremum::Infeasible => continue,
                Extremum::Unbounded => return Extremum::Unbounded,
                Extremum::Finite {
                    bound,
                    attained,
                    witness,
                } => {
                    let replace = match &best {
                        None => true,
                        Some(Extremum::Finite {
                            bound: b,
                            attained: a,
                            ..
                        }) => {
                            if maximize {
                                bound > *b || (bound == *b && attained && !a)
                            } else {
                                bound < *b || (bound == *b && attained && !a)
                            }
                        }
                        Some(_) => false,
                    };
                    if replace {
                        best = Some(Extremum::Finite {
                            bound,
                            attained,
                            witness,
                        });
                    }
                }
            }
        }
        best.unwrap_or(Extremum::Infeasible)
    }

    /// Per-dimension bounds of the point set: `(min, max)` per schema
    /// variable, `None` for an unbounded side. Empty sets return `None`
    /// overall.
    #[allow(clippy::type_complexity)]
    pub fn bounding_box(&self) -> Option<Vec<(Option<Rational>, Option<Rational>)>> {
        if !self.satisfiable() {
            return None;
        }
        let mut out = Vec::with_capacity(self.free.len());
        for v in &self.free {
            let e = LinExpr::var(v.clone());
            let lo = match self.minimize(&e) {
                Extremum::Finite { bound, .. } => Some(bound),
                _ => None,
            };
            let hi = match self.maximize(&e) {
                Extremum::Finite { bound, .. } => Some(bound),
                _ => None,
            };
            out.push((lo, hi));
        }
        Some(out)
    }
}

impl fmt::Display for CstObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "((")?;
        for (i, v) in self.free.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") | ")?;
        if self.disjuncts.is_empty() {
            write!(f, "false")?;
        }
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            let bound = self.bound_vars(d);
            if bound.is_empty() {
                write!(f, "{d}")?;
            } else {
                write!(f, "∃")?;
                for (j, b) in bound.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ". {d}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn e(n: &str) -> LinExpr {
        LinExpr::var(v(n))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }
    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    /// The desk extent of Figure 2: −4 ≤ w ≤ 4 ∧ −2 ≤ z ≤ 2.
    fn desk_extent() -> CstObject {
        CstObject::from_conjunction(
            vec![v("w"), v("z")],
            Conjunction::of([
                Atom::ge(e("w"), c(-4)),
                Atom::le(e("w"), c(4)),
                Atom::ge(e("z"), c(-2)),
                Atom::le(e("z"), c(2)),
            ]),
        )
    }

    /// The desk translation of Figure 2: u = x + w ∧ v = y + z.
    fn desk_translation() -> CstObject {
        CstObject::from_conjunction(
            vec![v("w"), v("z"), v("x"), v("y"), v("u"), v("v")],
            Conjunction::of([
                Atom::eq(e("u"), e("x") + e("w")),
                Atom::eq(e("v"), e("y") + e("z")),
            ]),
        )
    }

    #[test]
    fn family_classification() {
        assert_eq!(desk_extent().family(), CstFamily::Conjunctive);
        let two = desk_extent().or(&desk_extent()
            .slice(&v("z"), &r(0))
            .project(vec![v("w"), v("z")]));
        // (slice + reproject keeps it quantifier-free; two distinct disjuncts)
        assert!(matches!(
            two.family(),
            CstFamily::Disjunctive | CstFamily::Conjunctive
        ));
        let lazy = desk_translation().project(vec![v("u"), v("v")]);
        assert_eq!(lazy.family(), CstFamily::ExistentialConjunctive);
    }

    #[test]
    fn paper_worked_example_extent_in_room_coordinates() {
        // ((u,v) | E(w,z) ∧ D(w,z,x,y,u,v) ∧ x = 6 ∧ y = 4), §4.1 —
        // must denote 2 ≤ u ≤ 10 ∧ 2 ≤ v ≤ 6.
        let formula = desk_extent()
            .and(&desk_translation())
            .and(&CstObject::from_conjunction(
                vec![v("x"), v("y")],
                Conjunction::of([Atom::eq(e("x"), c(6)), Atom::eq(e("y"), c(4))]),
            ));
        let projected = formula.project_eager(vec![v("u"), v("v")]);
        let expected = CstObject::from_conjunction(
            vec![v("u"), v("v")],
            Conjunction::of([
                Atom::ge(e("u"), c(2)),
                Atom::le(e("u"), c(10)),
                Atom::ge(e("v"), c(2)),
                Atom::le(e("v"), c(6)),
            ]),
        );
        assert!(projected.denotes_same(&expected), "got {projected}");
        // The lazy projection denotes the same set without eliminating.
        let lazy = formula.project(vec![v("u"), v("v")]);
        assert!(lazy.denotes_same(&expected));
    }

    #[test]
    fn and_joins_on_shared_names_or_renames_bound_apart() {
        // Two unit intervals on the same variable intersect...
        let a = CstObject::from_conjunction(
            vec![v("t")],
            Conjunction::of([Atom::ge(e("t"), c(0)), Atom::le(e("t"), c(10))]),
        );
        let b = CstObject::from_conjunction(
            vec![v("t")],
            Conjunction::of([Atom::ge(e("t"), c(5)), Atom::le(e("t"), c(20))]),
        );
        let both = a.and(&b);
        assert_eq!(both.arity(), 1);
        assert!(both.contains_point(&[r(7)]));
        assert!(!both.contains_point(&[r(2)]));
        // ...while bound variables never capture: ∃q. t = q over [0,1]
        // conjoined with ∃q. t = -q over [0,1] stays satisfiable.
        let c1 = CstObject::new(
            vec![v("t")],
            [Conjunction::of([
                Atom::eq(e("t"), e("q")),
                Atom::ge(e("q"), c(0)),
                Atom::le(e("q"), c(1)),
            ])],
        );
        let c2 = CstObject::new(
            vec![v("t")],
            [Conjunction::of([
                Atom::eq(e("t"), -&e("q")),
                Atom::ge(e("q"), c(-1)),
                Atom::le(e("q"), c(0)),
            ])],
        );
        let j = c1.and(&c2);
        // t ∈ [0,1] via q, and t ∈ [0,1] via the second q′: nonempty.
        assert!(j.satisfiable());
        assert!(j.contains_point(&[Rational::from_pair(1, 2)]));
    }

    #[test]
    fn or_union_and_membership() {
        let left = CstObject::from_conjunction(
            vec![v("x")],
            Conjunction::of([Atom::ge(e("x"), c(0)), Atom::le(e("x"), c(1))]),
        );
        let right = CstObject::from_conjunction(
            vec![v("x")],
            Conjunction::of([Atom::ge(e("x"), c(5)), Atom::le(e("x"), c(6))]),
        );
        let u = left.or(&right);
        assert!(u.contains_point(&[r(0)]));
        assert!(u.contains_point(&[r(6)]));
        assert!(!u.contains_point(&[r(3)]));
        assert_eq!(u.family(), CstFamily::Disjunctive);
    }

    #[test]
    fn negation_rules() {
        let box1 = desk_extent();
        let neg = box1.negate().unwrap();
        assert!(!neg.contains_point(&[r(0), r(0)]));
        assert!(neg.contains_point(&[r(9), r(0)]));
        // Disjunctive objects refuse negation.
        let u = box1.or(&CstObject::from_conjunction(
            vec![v("w"), v("z")],
            Conjunction::of([Atom::ge(e("w"), c(100))]),
        ));
        assert_eq!(u.negate(), Err(ConstraintError::NonConjunctiveNegation));
        // Bottom negates to top.
        let bot = CstObject::bottom(vec![v("w")]);
        assert!(bot.negate().unwrap().contains_point(&[r(42)]));
    }

    #[test]
    fn projection_adds_and_removes_dimensions() {
        // §3.1: "a projection can add new free variables".
        let seg = CstObject::from_conjunction(
            vec![v("x")],
            Conjunction::of([Atom::ge(e("x"), c(0)), Atom::le(e("x"), c(1))]),
        );
        let cyl = seg.project(vec![v("x"), v("y")]);
        assert_eq!(cyl.arity(), 2);
        assert!(cyl.contains_point(&[r(0), r(999)])); // y unconstrained
                                                      // Dropping a dimension quantifies it.
        let shadow = cyl.project_eager(vec![v("y")]);
        assert!(shadow.contains_point(&[r(-5)]));
    }

    #[test]
    fn restricted_projection_rule_on_objects() {
        let cube = CstObject::from_conjunction(
            vec![v("a"), v("b"), v("c"), v("d")],
            Conjunction::of([
                Atom::le(e("a") + e("b") + e("c") + e("d"), c(1)),
                Atom::ge(e("a"), c(0)),
                Atom::ge(e("b"), c(0)),
                Atom::ge(e("c"), c(0)),
                Atom::ge(e("d"), c(0)),
            ]),
        );
        assert!(cube
            .project_restricted(vec![v("a"), v("b"), v("c")])
            .is_ok());
        assert!(cube.project_restricted(vec![v("a")]).is_ok());
        assert!(matches!(
            cube.project_restricted(vec![v("a"), v("b")]),
            Err(ConstraintError::RestrictedProjection { .. })
        ));
    }

    #[test]
    fn implies_is_positional() {
        let named_uv = CstObject::from_conjunction(
            vec![v("u"), v("v")],
            Conjunction::of([Atom::ge(e("u"), c(0)), Atom::ge(e("v"), c(0))]),
        );
        let named_ab = CstObject::from_conjunction(
            vec![v("a"), v("b")],
            Conjunction::of([Atom::ge(e("a"), c(1)), Atom::ge(e("b"), c(1))]),
        );
        assert!(named_ab.implies(&named_uv));
        assert!(!named_uv.implies(&named_ab));
        assert!(named_uv.denotes_same(&named_uv.align_to(&[v("p"), v("q")])));
    }

    #[test]
    fn implies_discharges_quantifiers() {
        // ∃w. (u = w + 1 ∧ 0 ≤ w ≤ 1) |= 1 ≤ u ≤ 2.
        let lifted = CstObject::new(
            vec![v("u")],
            [Conjunction::of([
                Atom::eq(e("u"), e("w") + c(1)),
                Atom::ge(e("w"), c(0)),
                Atom::le(e("w"), c(1)),
            ])],
        );
        let direct = CstObject::from_conjunction(
            vec![v("u")],
            Conjunction::of([Atom::ge(e("u"), c(1)), Atom::le(e("u"), c(2))]),
        );
        assert!(lifted.denotes_same(&direct));
    }

    #[test]
    fn slice_cut_at_height() {
        // The §1.2 query: "show a projection of their cut at the height of
        // 1/2 feet" — slice z = 1/2 of the desk extent.
        let cut = desk_extent().slice(&v("z"), &Rational::from_pair(1, 2));
        assert_eq!(cut.arity(), 1);
        assert!(cut.contains_point(&[r(4)]));
        assert!(!cut.contains_point(&[r(5)]));
        // Slicing outside the extent gives the empty set.
        let empty = desk_extent().slice(&v("z"), &r(3));
        assert!(!empty.satisfiable());
    }

    #[test]
    fn optimization_over_union() {
        let u = CstObject::from_conjunction(
            vec![v("x")],
            Conjunction::of([Atom::ge(e("x"), c(0)), Atom::le(e("x"), c(1))]),
        )
        .or(&CstObject::from_conjunction(
            vec![v("x")],
            Conjunction::of([Atom::ge(e("x"), c(5)), Atom::lt(e("x"), c(7))]),
        ));
        match u.maximize(&e("x")) {
            Extremum::Finite {
                bound, attained, ..
            } => {
                assert_eq!(bound, r(7));
                assert!(!attained);
            }
            other => panic!("unexpected {other:?}"),
        }
        match u.minimize(&e("x")) {
            Extremum::Finite {
                bound, attained, ..
            } => {
                assert_eq!(bound, r(0));
                assert!(attained);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bounding_box() {
        let bb = desk_extent().bounding_box().unwrap();
        assert_eq!(bb[0], (Some(r(-4)), Some(r(4))));
        assert_eq!(bb[1], (Some(r(-2)), Some(r(2))));
        let half =
            CstObject::from_conjunction(vec![v("x")], Conjunction::of([Atom::ge(e("x"), c(0))]));
        assert_eq!(half.bounding_box().unwrap()[0], (Some(r(0)), None));
        assert!(CstObject::bottom(vec![v("x")]).bounding_box().is_none());
    }

    #[test]
    fn point_constructor_and_membership() {
        let p = CstObject::point(vec![v("x"), v("y")], &[r(3), r(-1)]);
        assert!(p.contains_point(&[r(3), r(-1)]));
        assert!(!p.contains_point(&[r(3), r(0)]));
        assert_eq!(p.find_point(), Some(vec![r(3), r(-1)]));
    }

    #[test]
    fn display_shows_schema_and_quantifiers() {
        let lazy = desk_translation().project(vec![v("u"), v("v")]);
        let s = lazy.to_string();
        assert!(s.starts_with("((u,v) |"), "{s}");
        assert!(s.contains("∃"), "{s}");
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_schema_rejected() {
        let _ = CstObject::top(vec![v("x"), v("x")]);
    }
}
