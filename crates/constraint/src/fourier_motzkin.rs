//! Variable elimination for conjunctions: equality substitution plus
//! Fourier–Motzkin.
//!
//! This implements the *projection* connective `((x₁,…,xₙ) | φ)` of §3.1
//! for the conjunctive family. A single elimination step is polynomial
//! (at worst `|L|·|U|` new atoms from `|L|+|U|` old ones); it is the
//! *composition* of many steps that can explode, which is precisely why the
//! paper restricts conjunctive/disjunctive projection to "one or all but
//! one" variables per operator and keeps general existential quantification
//! lazy. The unrestricted [`eliminate_all`] entry point is still provided —
//! the existential family uses it for *simplifying* eliminations, and the
//! E5 benchmark measures the growth boundary the families are designed
//! around.

use crate::atom::{Atom, NormOp};
use crate::conjunction::Conjunction;
use crate::error::ConstraintError;
use crate::linexpr::LinExpr;
use crate::var::Var;
use lyric_arith::Pool;

thread_local! {
    /// Recycled buffers for one elimination step: lower bounds, upper
    /// bounds, and the surviving/product atoms.
    #[allow(clippy::type_complexity)]
    static FM_POOLS: (
        Pool<Vec<(LinExpr, bool)>>,
        Pool<Vec<(LinExpr, bool)>>,
        Pool<Vec<Atom>>,
    ) = (Pool::new(), Pool::new(), Pool::new());
}

impl Conjunction {
    /// Eliminate a single variable: `∃v. self`, as a conjunction.
    ///
    /// Strategy: if `v` occurs in an equality atom, solve it for `v` and
    /// substitute (exact, size-non-increasing); otherwise combine every
    /// lower bound on `v` with every upper bound (Fourier–Motzkin), the
    /// result being strict iff either side is strict.
    ///
    /// Fails with [`ConstraintError::DisequationElimination`] when `v`
    /// occurs in a `≠` atom and no equality can substitute it away: the
    /// projection of a punctured polyhedron is not in general a single
    /// conjunction. (DNF-level elimination case-splits instead.)
    pub fn eliminate(&self, v: &Var) -> Result<Conjunction, ConstraintError> {
        let _span = lyric_engine::span(
            lyric_engine::SpanKind::FmEliminate,
            || v.name().to_string(),
            None,
        );
        lyric_engine::tally(|s| s.eliminations += 1);
        // Equality substitution first: an equality `c·v + e = 0` gives
        // `v = -e/c`, valid for every other atom including disequations.
        if let Some(eq) = self
            .atoms()
            .iter()
            .find(|a| a.op() == NormOp::Eq && a.contains(v))
        {
            let solved = solve_for(eq.expr(), v);
            let eq = eq.clone();
            return Ok(Conjunction::of(
                self.atoms()
                    .iter()
                    .filter(|a| **a != eq)
                    .map(|a| a.substitute(v, &solved)),
            ));
        }
        if self
            .atoms()
            .iter()
            .any(|a| a.op() == NormOp::Neq && a.contains(v))
        {
            return Err(ConstraintError::DisequationElimination(v.clone()));
        }
        // Fourier–Motzkin over the inequalities. The bound lists and the
        // output atom set come from thread-local pools: an elimination
        // sweep reuses the same buffers instead of reallocating per step.
        let (mut lowers, mut uppers, mut rest) =
            FM_POOLS.with(|(lo, hi, out)| (lo.acquire(), hi.acquire(), out.acquire()));
        for a in self.atoms() {
            let c = a.expr().coeff(v);
            if c.is_zero() {
                rest.push(a.clone());
                continue;
            }
            let strict = a.op() == NormOp::Lt;
            // Atom is c·v + e ⊲ 0, i.e. v ⊲ -e/c (c > 0) or -e/c ⊲ v (c < 0).
            let e = a.expr().substitute(v, &LinExpr::zero());
            let bound = e.scale(&(-c.recip()));
            if c.is_positive() {
                uppers.push((bound, strict));
            } else {
                lowers.push((bound, strict));
            }
        }
        // A side with no bound leaves v unconstrained there: all of v's
        // atoms project away.
        if !lowers.is_empty() && !uppers.is_empty() {
            for (lo, lo_strict) in lowers.iter() {
                for (hi, hi_strict) in uppers.iter() {
                    lyric_engine::note(lyric_engine::Resource::FmAtoms);
                    let op = if *lo_strict || *hi_strict {
                        NormOp::Lt
                    } else {
                        NormOp::Le
                    };
                    rest.push(Atom::normalized(lo - hi, op));
                }
            }
        }
        // Deterministic arena accounting by logical element counts.
        let bytes = ((lowers.len() + uppers.len()) * std::mem::size_of::<(LinExpr, bool)>()
            + rest.len() * std::mem::size_of::<Atom>()) as u64;
        lyric_engine::tally(|s| s.arena_bytes += bytes);
        Ok(Conjunction::of(rest.drain(..)))
    }

    /// Eliminate every variable in `vs`, in order. Unrestricted — see the
    /// module docs for when this is appropriate.
    pub fn eliminate_all<'a>(
        &self,
        vs: impl IntoIterator<Item = &'a Var>,
    ) -> Result<Conjunction, ConstraintError> {
        let mut acc = self.clone();
        for v in vs {
            acc = acc.eliminate(v)?;
        }
        Ok(acc)
    }

    /// The paper's restricted projection for the conjunctive family: keep
    /// exactly the variables in `keep`, requiring that the step eliminates
    /// at most one variable or all but one (§3.1).
    pub fn project_restricted(&self, keep: &[Var]) -> Result<Conjunction, ConstraintError> {
        let vars = self.vars();
        let eliminate: Vec<Var> = vars.iter().filter(|v| !keep.contains(v)).cloned().collect();
        let n = vars.len();
        let k = eliminate.len();
        if !(k <= 1 || n - k <= 1) {
            return Err(ConstraintError::RestrictedProjection {
                eliminate: k,
                free: n,
            });
        }
        self.eliminate_all(&eliminate)
    }
}

/// Solve the equality expression `e = 0` for `v`: returns the expression
/// `(-e + c·v)/c` where `c` is `v`'s coefficient. Panics if `v` is absent.
pub(crate) fn solve_for(e: &LinExpr, v: &Var) -> LinExpr {
    let c = e.coeff(v);
    assert!(!c.is_zero(), "solve_for: variable not present");
    let without = e.substitute(v, &LinExpr::zero());
    without.scale(&(-c.recip()))
}

/// Convenience: `∃v. conj` for use in tests — checks whether a point over
/// the remaining variables extends to the eliminated one.
#[cfg(test)]
fn has_extension(conj: &Conjunction, v: &Var, partial: &crate::linexpr::Assignment) -> bool {
    let mut grounded = conj.clone();
    for (var, val) in partial {
        if var != v {
            grounded = grounded.substitute(var, &LinExpr::constant(val.clone()));
        }
    }
    grounded.satisfiable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::Assignment;
    use lyric_arith::Rational;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn x() -> LinExpr {
        LinExpr::var(v("x"))
    }
    fn y() -> LinExpr {
        LinExpr::var(v("y"))
    }
    fn z() -> LinExpr {
        LinExpr::var(v("z"))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }
    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn fm_basic_interval() {
        // ∃x. y <= x ∧ x <= 5  ⇒  y <= 5
        let cj = Conjunction::of([Atom::le(y(), x()), Atom::le(x(), c(5))]);
        let out = cj.eliminate(&v("x")).unwrap();
        assert_eq!(out, Conjunction::of([Atom::le(y(), c(5))]));
    }

    #[test]
    fn fm_strictness_propagates() {
        // ∃x. y < x ∧ x <= 5  ⇒  y < 5
        let cj = Conjunction::of([Atom::lt(y(), x()), Atom::le(x(), c(5))]);
        let out = cj.eliminate(&v("x")).unwrap();
        assert_eq!(out, Conjunction::of([Atom::lt(y(), c(5))]));
        // Both non-strict stays non-strict.
        let cj = Conjunction::of([Atom::le(y(), x()), Atom::le(x(), c(5))]);
        assert_eq!(
            cj.eliminate(&v("x")).unwrap(),
            Conjunction::of([Atom::le(y(), c(5))])
        );
    }

    #[test]
    fn fm_unbounded_side_drops_constraints() {
        // ∃x. x <= y (no lower bound on x) ⇒ true
        let cj = Conjunction::of([Atom::le(x(), y())]);
        assert!(cj.eliminate(&v("x")).unwrap().is_top());
    }

    #[test]
    fn fm_detects_emptiness() {
        // ∃x. 5 <= x ∧ x <= 3 ⇒ 5 <= 3 ⇒ false
        let cj = Conjunction::of([Atom::ge(x(), c(5)), Atom::le(x(), c(3))]);
        let out = cj.eliminate(&v("x")).unwrap();
        assert!(!out.satisfiable());
    }

    #[test]
    fn equality_substitution_path() {
        // ∃x. x = y + 1 ∧ x <= 5 ∧ x ≠ 3  ⇒  y <= 4 ∧ y ≠ 2
        let cj = Conjunction::of([
            Atom::eq(x(), y() + c(1)),
            Atom::le(x(), c(5)),
            Atom::neq(x(), c(3)),
        ]);
        let out = cj.eliminate(&v("x")).unwrap();
        assert!(out.implies_atom(&Atom::le(y(), c(4))));
        assert!(out.implies_atom(&Atom::neq(y(), c(2))));
        assert!(!out.vars().contains(&v("x")));
    }

    #[test]
    fn disequation_without_equality_blocks() {
        let cj = Conjunction::of([Atom::neq(x(), c(0)), Atom::le(x(), y())]);
        assert_eq!(
            cj.eliminate(&v("x")),
            Err(ConstraintError::DisequationElimination(v("x")))
        );
    }

    #[test]
    fn solve_for_coefficients() {
        // 2x + 3y - 6 = 0 solved for x gives x = 3 - 3y/2
        let e = x().scale(&r(2)) + y().scale(&r(3)) - c(6);
        let s = solve_for(&e, &v("x"));
        assert_eq!(s.coeff(&v("y")), Rational::from_pair(-3, 2));
        assert_eq!(s.constant_term(), &r(3));
    }

    #[test]
    fn paper_example_translation_projection() {
        // The §4.1 worked example: extent −4 ≤ w ≤ 4 ∧ −2 ≤ z ≤ 2, with
        // u = x + w, v = y + z, x = 6, y = 4; projecting on (u, v) must give
        // 2 ≤ u ≤ 10 ∧ 2 ≤ v ≤ 6.
        let w = LinExpr::var(v("w"));
        let zz = LinExpr::var(v("z"));
        let u = LinExpr::var(v("u"));
        let vv = LinExpr::var(v("v"));
        let cj = Conjunction::of([
            Atom::ge(w.clone(), c(-4)),
            Atom::le(w.clone(), c(4)),
            Atom::ge(zz.clone(), c(-2)),
            Atom::le(zz.clone(), c(2)),
            Atom::eq(u.clone(), x() + w.clone()),
            Atom::eq(vv.clone(), y() + zz.clone()),
            Atom::eq(x(), c(6)),
            Atom::eq(y(), c(4)),
        ]);
        let out = cj
            .eliminate_all([v("w"), v("z"), v("x"), v("y")].iter())
            .unwrap();
        let expected = Conjunction::of([
            Atom::ge(u.clone(), c(2)),
            Atom::le(u, c(10)),
            Atom::ge(vv.clone(), c(2)),
            Atom::le(vv, c(6)),
        ]);
        assert!(out.equivalent(&expected), "got {out}");
    }

    #[test]
    fn restricted_projection_rule() {
        // 3 variables: eliminating 1 is fine, keeping 1 is fine,
        // eliminating 2 of 4 is rejected.
        let cj = Conjunction::of([
            Atom::le(x() + y(), c(1)),
            Atom::le(y() + z(), c(1)),
            Atom::le(x() + z(), c(1)),
        ]);
        assert!(cj.project_restricted(&[v("x"), v("y")]).is_ok()); // eliminate 1
        assert!(cj.project_restricted(&[v("x")]).is_ok()); // all but one
        let four = cj.and_atom(Atom::le(LinExpr::var(v("q")), c(0)));
        assert_eq!(
            four.project_restricted(&[v("x"), v("y")]),
            Err(ConstraintError::RestrictedProjection {
                eliminate: 2,
                free: 4
            })
        );
    }

    #[test]
    fn elimination_is_sound_and_complete_on_samples() {
        // ∃x. (x >= y ∧ x <= z ∧ x >= 0): projection should equal
        // {(y,z) : y <= z ∧ z >= 0}.
        let cj = Conjunction::of([Atom::ge(x(), y()), Atom::le(x(), z()), Atom::ge(x(), c(0))]);
        let proj = cj.eliminate(&v("x")).unwrap();
        for yy in -3..=3i64 {
            for zz in -3..=3i64 {
                let mut p = Assignment::new();
                p.insert(v("y"), r(yy));
                p.insert(v("z"), r(zz));
                let in_proj = proj.eval(&p);
                let extends = has_extension(&cj, &v("x"), &p);
                assert_eq!(in_proj, extends, "mismatch at y={yy} z={zz}");
            }
        }
    }
}
