//! Errors of the constraint engine.

use crate::var::Var;
use std::fmt;

/// Why an operation on a constraint family was rejected.
///
/// These mirror the closure rules of §3.1 of the paper: each family is
/// defined by exactly the operations that keep its representation
/// polynomial, and asking for anything else is an error rather than a
/// silent blow-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// Eliminating a variable that occurs in a `≠` atom cannot stay within
    /// a single conjunction; the disjunctive families case-split instead.
    DisequationElimination(Var),
    /// The §3.1 restricted-projection rule for conjunctive / disjunctive
    /// constraints: a single projection may eliminate either at most one
    /// variable or all but one.
    RestrictedProjection {
        /// Variables the caller asked to eliminate.
        eliminate: usize,
        /// Free variables of the constraint.
        free: usize,
    },
    /// Entailment (`|=`) is defined on *disjunctive* formulas (§4.2); an
    /// operand still carrying existential quantifiers must be eagerly
    /// projected first.
    NonDisjunctiveEntailment,
    /// Negation is defined on conjunctive constraints (§3.1 rule (a) of the
    /// disjunctive family).
    NonConjunctiveNegation,
    /// A projection of a disjunctive-existential constraint must retain all
    /// free variables (§3.1 rule (b) of that family).
    DisjunctiveExistentialProjection,
    /// A geometric operation received an object of the wrong shape
    /// (dimension, quantifiers, boundedness) — details in the message.
    Geometry(String),
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::DisequationElimination(v) => write!(
                f,
                "cannot eliminate {v} within a conjunction: it occurs in a disequation \
                 (case-split into a disjunction first)"
            ),
            ConstraintError::RestrictedProjection { eliminate, free } => write!(
                f,
                "restricted projection violated: eliminating {eliminate} of {free} free \
                 variables (only one, or all but one, may be eliminated per step)"
            ),
            ConstraintError::NonDisjunctiveEntailment => {
                write!(f, "|= requires disjunctive (quantifier-free) operands")
            }
            ConstraintError::NonConjunctiveNegation => {
                write!(f, "negation is only defined for conjunctive constraints")
            }
            ConstraintError::DisjunctiveExistentialProjection => write!(
                f,
                "projection of a disjunctive existential constraint must retain all free variables"
            ),
            ConstraintError::Geometry(msg) => write!(f, "geometry: {msg}"),
        }
    }
}

impl std::error::Error for ConstraintError {}
