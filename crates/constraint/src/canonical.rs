//! Canonical forms (§3.1).
//!
//! The paper deliberately picks *cheap* canonical forms: full redundancy
//! elimination for disjunctions is co-NP-complete (it cites Srivastava) and
//! eager quantifier elimination can explode, so the chosen form performs
//!
//! 1. per-atom normalization (done on atom construction — primitive
//!    integer coefficients, sign normalization),
//! 2. deletion of inconsistent disjuncts,
//! 3. deletion of syntactic duplicates, and
//! 4. *simplifying* quantifier eliminations only (CLP(R)-style): equality
//!    substitution and Fourier–Motzkin steps guaranteed not to grow the
//!    conjunction.
//!
//! The expensive alternatives — LP-based redundant-atom removal
//! ([`Conjunction::remove_redundant`]) and pairwise disjunct subsumption —
//! are exposed as [`CstObject::strong_canonical`] / [`Dnf::strong_simplify`]
//! and compared against the cheap form in benchmark **E4**.

use crate::atom::NormOp;
use crate::conjunction::Conjunction;
use crate::cst_object::CstObject;
use crate::dnf::Dnf;
use crate::var::Var;
use std::collections::BTreeMap;

impl Dnf {
    /// The paper's chosen disjunction simplification: drop semantically
    /// inconsistent disjuncts (one feasibility check each) and syntactic
    /// duplicates (already maintained by construction).
    ///
    /// The per-disjunct feasibility checks are independent LP solves, so
    /// they run parallel under a multi-threaded engine context; the
    /// surviving disjuncts keep their order either way.
    pub fn simplify(&self) -> Dnf {
        let sat = lyric_engine::parallel_map(self.disjuncts(), |_, d| d.satisfiable());
        let out = Dnf::of(
            self.disjuncts()
                .iter()
                .zip(&sat)
                .filter(|&(_, &s)| s)
                .map(|(d, _)| d.clone()),
        );
        let pruned = (self.disjuncts().len() - out.disjuncts().len()) as u64;
        lyric_engine::tally(|s| s.disjuncts_pruned += pruned);
        if pruned > 0 {
            lyric_engine::trace_event(|| lyric_engine::EventKind::DisjunctsPruned {
                count: pruned,
            });
        }
        out
    }

    /// Strong (expensive) simplification: [`Dnf::simplify`] plus per-
    /// disjunct LP redundancy removal plus pairwise disjunct subsumption
    /// (`Dᵢ` dropped when some other single `Dⱼ` contains it). Full minimal
    /// DNF would be co-NP; pairwise subsumption is the polynomial-LP-calls
    /// fragment.
    pub fn strong_simplify(&self) -> Dnf {
        // Feasibility + per-disjunct redundancy removal are independent;
        // only the pairwise subsumption pass below needs the full set.
        let reduced: Vec<Conjunction> = lyric_engine::parallel_map(self.disjuncts(), |_, d| {
            d.satisfiable().then(|| d.remove_redundant())
        })
        .into_iter()
        .flatten()
        .collect();
        Dnf::of(prune_subsumed(reduced, |a, b| b.implies(a)))
    }
}

/// Remove elements contained in some other single element.
/// `contains(a, b)` must answer "does a contain b".
fn prune_subsumed<T: Clone>(items: Vec<T>, contains: impl Fn(&T, &T) -> bool) -> Vec<T> {
    let mut keep: Vec<bool> = vec![true; items.len()];
    for i in 0..items.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..items.len() {
            if i == j || !keep[j] {
                continue;
            }
            if contains(&items[i], &items[j]) {
                keep[j] = false;
            }
        }
    }
    items
        .into_iter()
        .zip(keep)
        .filter_map(|(x, k)| k.then_some(x))
        .collect()
}

impl CstObject {
    /// The paper's canonical form: simplifying quantifier eliminations per
    /// disjunct, deletion of inconsistent disjuncts, deletion of syntactic
    /// duplicates. Polynomial.
    ///
    /// Each disjunct is simplified and feasibility-checked independently —
    /// parallel under a multi-threaded engine context, with the surviving
    /// disjuncts kept in order.
    pub fn canonicalize(&self) -> CstObject {
        let ds: Vec<Conjunction> = lyric_engine::parallel_map(self.disjuncts(), |_, d| {
            let s = self.simplify_disjunct(d);
            s.satisfiable().then_some(s)
        })
        .into_iter()
        .flatten()
        .collect();
        let pruned = (self.disjuncts().len() - ds.len()) as u64;
        lyric_engine::tally(|s| s.disjuncts_pruned += pruned);
        if pruned > 0 {
            lyric_engine::trace_event(|| lyric_engine::EventKind::DisjunctsPruned {
                count: pruned,
            });
        }
        CstObject::new(self.free().to_vec(), ds)
    }

    /// Strong canonical form: [`canonicalize`](Self::canonicalize) plus LP
    /// redundancy removal per disjunct plus pairwise disjunct subsumption
    /// (on quantifier-free disjuncts).
    pub fn strong_canonical(&self) -> CstObject {
        let base = self.canonicalize();
        let reduced: Vec<Conjunction> =
            lyric_engine::parallel_map(base.disjuncts(), |_, d| d.remove_redundant());
        let pruned = prune_subsumed(reduced, |a, b| {
            // Only compare quantifier-free disjuncts; quantified ones would
            // need eager elimination (out of canonical-form budget).
            if !base.bound_vars(a).is_empty() || !base.bound_vars(b).is_empty() {
                return false;
            }
            b.implies(a)
        });
        CstObject::new(self.free().to_vec(), pruned)
    }

    /// Simplifying eliminations on one disjunct: substitute out bound
    /// variables constrained by an equality; Fourier–Motzkin-eliminate a
    /// bound variable when the step does not grow the conjunction
    /// (`|L|·|U| ≤ |L|+|U|`, no disequation occurrence).
    fn simplify_disjunct(&self, d: &Conjunction) -> Conjunction {
        let mut cur = d.clone();
        loop {
            let bound = self.bound_vars(&cur);
            // Equality substitution first (always shrinking).
            let eq_var = bound.iter().find(|v| {
                cur.atoms()
                    .iter()
                    .any(|a| a.op() == NormOp::Eq && a.contains(v))
            });
            if let Some(v) = eq_var {
                let v = v.clone();
                cur = cur
                    .eliminate(&v)
                    .expect("equality elimination cannot block");
                continue;
            }
            // Cheap FM next.
            let fm_var = bound.iter().find(|v| {
                let mut lowers = 0usize;
                let mut uppers = 0usize;
                for a in cur.atoms() {
                    if !a.contains(v) {
                        continue;
                    }
                    match a.op() {
                        NormOp::Neq => return false,
                        NormOp::Eq => return false, // handled above
                        NormOp::Le | NormOp::Lt => {
                            if a.expr().coeff(v).is_positive() {
                                uppers += 1;
                            } else {
                                lowers += 1;
                            }
                        }
                    }
                }
                lowers * uppers <= lowers + uppers
            });
            match fm_var {
                Some(v) => {
                    let v = v.clone();
                    cur = cur.eliminate(&v).expect("checked no blocking disequation");
                }
                None => return cur,
            }
        }
    }

    /// A name-independent canonical copy for **object identity**: schema
    /// variables are renamed positionally to `$0, $1, …` and the surviving
    /// bound variables of each disjunct to `?0, ?1, …` in order of first
    /// occurrence. Two structurally identical constraints over different
    /// variable names get equal canonical forms (§4.1: "CST expressions in
    /// LyriC queries are invariant to variable names"). Canonical forms are
    /// still not unique across *semantically* equal objects — use
    /// [`CstObject::denotes_same`] for that.
    pub fn canonical_form(&self) -> CstObject {
        let canon = self.canonicalize();
        let free_map: BTreeMap<Var, Var> = canon
            .free()
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), Var::new(format!("${i}"))))
            .collect();
        let new_free: Vec<Var> = (0..canon.free().len())
            .map(|i| Var::new(format!("${i}")))
            .collect();
        let ds: Vec<Conjunction> = canon
            .disjuncts()
            .iter()
            .map(|d| {
                let mut map = free_map.clone();
                let mut next = 0usize;
                for a in d.atoms() {
                    for v in a.vars() {
                        if let std::collections::btree_map::Entry::Vacant(e) = map.entry(v) {
                            e.insert(Var::new(format!("?{next}")));
                            next += 1;
                        }
                    }
                }
                d.rename(&map)
            })
            .collect();
        CstObject::new(new_free, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::linexpr::LinExpr;
    use lyric_arith::Rational;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn e(n: &str) -> LinExpr {
        LinExpr::var(v(n))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }

    #[test]
    fn simplify_drops_inconsistent_disjuncts() {
        let sat = Conjunction::of([Atom::ge(e("x"), c(0))]);
        let unsat = Conjunction::of([Atom::ge(e("x"), c(1)), Atom::le(e("x"), c(0))]);
        let d = Dnf::of([sat.clone(), unsat]);
        assert_eq!(d.disjuncts().len(), 2);
        let s = d.simplify();
        assert_eq!(s.disjuncts().len(), 1);
        assert_eq!(s.disjuncts()[0], sat);
    }

    #[test]
    fn strong_simplify_prunes_subsumed_disjuncts() {
        let small = Conjunction::of([Atom::ge(e("x"), c(0)), Atom::le(e("x"), c(1))]);
        let big = Conjunction::of([Atom::ge(e("x"), c(-5)), Atom::le(e("x"), c(5))]);
        let d = Dnf::of([small, big.clone()]);
        let s = d.strong_simplify();
        assert_eq!(s.disjuncts().len(), 1);
        assert!(s.disjuncts()[0].equivalent(&big));
    }

    #[test]
    fn strong_simplify_removes_redundant_atoms() {
        let cj = Conjunction::of([
            Atom::le(e("x"), c(1)),
            Atom::le(e("x"), c(2)),
            Atom::ge(e("x"), c(0)),
        ]);
        let s = Dnf::from_conjunction(cj).strong_simplify();
        assert_eq!(s.disjuncts()[0].atoms().len(), 2);
    }

    #[test]
    fn canonicalize_substitutes_equalities() {
        // ((u) | ∃w,x. u = x + w ∧ x = 6 ∧ -4 <= w <= 4) → 2 <= u <= 10
        let obj = CstObject::new(
            vec![v("u")],
            [Conjunction::of([
                Atom::eq(e("u"), e("x") + e("w")),
                Atom::eq(e("x"), c(6)),
                Atom::ge(e("w"), c(-4)),
                Atom::le(e("w"), c(4)),
            ])],
        );
        let canon = obj.canonicalize();
        assert!(
            !canon.has_bound_vars(),
            "quantifiers should be discharged: {canon}"
        );
        let expected = CstObject::from_conjunction(
            vec![v("u")],
            Conjunction::of([Atom::ge(e("u"), c(2)), Atom::le(e("u"), c(10))]),
        );
        assert_eq!(canon.canonical_form(), expected.canonical_form());
    }

    #[test]
    fn canonicalize_keeps_expensive_quantifiers_lazy() {
        // A bound variable with 3 lower and 3 upper bounds (9 > 6 products)
        // stays quantified under the cheap form.
        let mut atoms = Vec::new();
        for i in 1..=3i64 {
            atoms.push(Atom::ge(e("q"), e(&format!("a{i}")) + c(i)));
            atoms.push(Atom::le(e("q"), e(&format!("b{i}")) - c(i)));
        }
        let free: Vec<Var> = ["a1", "a2", "a3", "b1", "b2", "b3"]
            .iter()
            .map(|s| v(s))
            .collect();
        let obj = CstObject::new(free, [Conjunction::of(atoms)]);
        let canon = obj.canonicalize();
        assert!(
            canon.has_bound_vars(),
            "9-product FM must not fire: {canon}"
        );
        // But eager elimination still gets the same point set.
        assert!(canon.denotes_same(&obj.eliminate_bound()));
    }

    #[test]
    fn canonicalize_drops_unsat_disjuncts() {
        let obj = CstObject::new(
            vec![v("x")],
            [
                Conjunction::of([Atom::ge(e("x"), c(0))]),
                Conjunction::of([Atom::ge(e("x"), c(1)), Atom::le(e("x"), c(0))]),
            ],
        );
        assert_eq!(obj.canonicalize().disjuncts().len(), 1);
    }

    #[test]
    fn canonical_form_is_name_invariant() {
        let a = CstObject::from_conjunction(
            vec![v("u"), v("v")],
            Conjunction::of([Atom::ge(e("u"), c(0)), Atom::le(e("v"), c(1))]),
        );
        let b = CstObject::from_conjunction(
            vec![v("p"), v("q")],
            Conjunction::of([Atom::ge(e("p"), c(0)), Atom::le(e("q"), c(1))]),
        );
        assert_eq!(a.canonical_form(), b.canonical_form());
        // Different structure → different canonical form.
        let c_ = CstObject::from_conjunction(
            vec![v("p"), v("q")],
            Conjunction::of([Atom::ge(e("q"), c(0)), Atom::le(e("p"), c(1))]),
        );
        assert_ne!(a.canonical_form(), c_.canonical_form());
    }

    #[test]
    fn canonical_form_renames_bound_vars() {
        let a = CstObject::new(
            vec![v("u")],
            [Conjunction::of([
                Atom::le(e("u"), e("w")),
                Atom::le(e("w"), e("t")),
                Atom::le(e("t"), c(0)),
                // three uppers/lowers prevent cheap elimination of both
                Atom::ge(e("w"), c(-10)),
                Atom::ge(e("t"), c(-10)),
            ])],
        );
        let b = CstObject::new(
            vec![v("u")],
            [Conjunction::of([
                Atom::le(e("u"), e("m")),
                Atom::le(e("m"), e("n")),
                Atom::le(e("n"), c(0)),
                Atom::ge(e("m"), c(-10)),
                Atom::ge(e("n"), c(-10)),
            ])],
        );
        assert_eq!(a.canonical_form(), b.canonical_form());
    }
}
