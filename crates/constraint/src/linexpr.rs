//! Linear expressions `Σ cᵢ·xᵢ + c₀` with exact rational coefficients.

use crate::var::Var;
use lyric_arith::Rational;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A total assignment of rational values to variables. Variables absent
/// from the map are taken to be 0 when an expression is evaluated.
pub type Assignment = BTreeMap<Var, Rational>;

/// A linear expression over constraint variables.
///
/// Invariant: `terms` never maps a variable to a zero coefficient, so two
/// expressions are structurally equal iff they are the same polynomial.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: impl Into<Rational>) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c.into(),
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(v: impl Into<Var>) -> LinExpr {
        LinExpr::term(v, Rational::one())
    }

    /// `coeff · v`.
    pub fn term(v: impl Into<Var>, coeff: impl Into<Rational>) -> LinExpr {
        let mut terms = BTreeMap::new();
        let c = coeff.into();
        if !c.is_zero() {
            terms.insert(v.into(), c);
        }
        LinExpr {
            terms,
            constant: Rational::zero(),
        }
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: &Var) -> Rational {
        self.terms.get(v).cloned().unwrap_or_else(Rational::zero)
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// Iterate over (variable, nonzero coefficient) pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (&Var, &Rational)> {
        self.terms.iter()
    }

    /// Number of variables with nonzero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True iff the expression is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// The set of variables occurring with nonzero coefficient.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms.keys().cloned().collect()
    }

    /// Whether `v` occurs in the expression.
    pub fn contains(&self, v: &Var) -> bool {
        self.terms.contains_key(v)
    }

    /// Add `coeff · v` in place.
    pub fn add_term(&mut self, v: Var, coeff: &Rational) {
        if coeff.is_zero() {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.terms.entry(v) {
            Entry::Vacant(e) => {
                e.insert(coeff.clone());
            }
            Entry::Occupied(mut e) => {
                let sum = e.get() + coeff;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, c: &Rational) {
        self.constant += c;
    }

    /// Multiply every coefficient and the constant by `c`.
    pub fn scale(&self, c: &Rational) -> LinExpr {
        if c.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(v, a)| (v.clone(), a * c)).collect(),
            constant: &self.constant * c,
        }
    }

    /// Evaluate at a point; unbound variables read as 0.
    pub fn eval(&self, point: &Assignment) -> Rational {
        let mut acc = self.constant.clone();
        for (v, c) in &self.terms {
            if let Some(x) = point.get(v) {
                acc += &(c * x);
            }
        }
        acc
    }

    /// Replace `v` by the expression `by` (used by equality substitution in
    /// Fourier–Motzkin and by canonical simplification).
    pub fn substitute(&self, v: &Var, by: &LinExpr) -> LinExpr {
        match self.terms.get(v) {
            None => self.clone(),
            Some(c) => {
                let c = c.clone();
                let mut out = self.clone();
                out.terms.remove(v);
                &out + &by.scale(&c)
            }
        }
    }

    /// Rename variables according to `map` (variables not in the map are
    /// unchanged). Renaming may merge terms, e.g. `x + y` with `y ↦ x`
    /// becomes `2x`.
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> LinExpr {
        let mut out = LinExpr::constant(self.constant.clone());
        for (v, c) in &self.terms {
            let target = map.get(v).unwrap_or(v).clone();
            out.add_term(target, c);
        }
        out
    }
}

impl From<Rational> for LinExpr {
    fn from(c: Rational) -> LinExpr {
        LinExpr::constant(c)
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(c))
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> LinExpr {
        LinExpr::var(v)
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in &other.terms {
            out.add_term(v.clone(), c);
        }
        out.constant += &other.constant;
        out
    }
}

impl Sub for &LinExpr {
    type Output = LinExpr;
    fn sub(self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in &other.terms {
            out.add_term(v.clone(), &-c);
        }
        out.constant -= &other.constant;
        out
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, other: LinExpr) -> LinExpr {
        &self + &other
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, other: LinExpr) -> LinExpr {
        &self - &other
    }
}

impl Neg for &LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(&-Rational::one())
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -&self
    }
}

impl Mul<&Rational> for &LinExpr {
    type Output = LinExpr;
    fn mul(self, c: &Rational) -> LinExpr {
        self.scale(c)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if c == &Rational::one() {
                    write!(f, "{v}")?;
                } else if c == &-Rational::one() {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a == Rational::one() {
                    write!(f, " - {v}")?;
                } else {
                    write!(f, " - {a}{v}")?;
                }
            } else if c == &Rational::one() {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}{v}")?;
            }
        }
        if !self.constant.is_zero() {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant.is_negative() {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn y() -> Var {
        Var::new("y")
    }
    fn r(v: i64) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn construction_and_coefficients() {
        let e = LinExpr::term(x(), r(2)) + LinExpr::var(y()) + LinExpr::constant(r(5));
        assert_eq!(e.coeff(&x()), r(2));
        assert_eq!(e.coeff(&y()), r(1));
        assert_eq!(e.constant_term(), &r(5));
        assert_eq!(e.num_terms(), 2);
    }

    #[test]
    fn zero_coefficients_are_pruned() {
        let e = LinExpr::term(x(), r(0));
        assert!(e.is_zero());
        let e = LinExpr::var(x()) - LinExpr::var(x());
        assert!(e.is_zero());
        assert!(!e.contains(&x()));
    }

    #[test]
    fn arithmetic() {
        let e = LinExpr::var(x()) + LinExpr::constant(r(1));
        let f = LinExpr::term(x(), r(2)) - LinExpr::var(y());
        let sum = &e + &f;
        assert_eq!(sum.coeff(&x()), r(3));
        assert_eq!(sum.coeff(&y()), r(-1));
        assert_eq!(sum.constant_term(), &r(1));
        let neg = -&sum;
        assert_eq!(neg.coeff(&x()), r(-3));
        let scaled = sum.scale(&Rational::from_pair(1, 3));
        assert_eq!(scaled.coeff(&x()), r(1));
    }

    #[test]
    fn evaluation() {
        let e = LinExpr::term(x(), r(2)) + LinExpr::term(y(), r(-1)) + LinExpr::constant(r(3));
        let mut p = Assignment::new();
        p.insert(x(), r(5));
        p.insert(y(), r(4));
        assert_eq!(e.eval(&p), r(9));
        // Unbound variable reads as zero.
        let mut q = Assignment::new();
        q.insert(x(), r(1));
        assert_eq!(e.eval(&q), r(5));
    }

    #[test]
    fn substitution() {
        // (2x + y).substitute(x, y + 1) = 3y + 2
        let e = LinExpr::term(x(), r(2)) + LinExpr::var(y());
        let by = LinExpr::var(y()) + LinExpr::constant(r(1));
        let s = e.substitute(&x(), &by);
        assert_eq!(s.coeff(&y()), r(3));
        assert_eq!(s.constant_term(), &r(2));
        assert!(!s.contains(&x()));
        // Substituting an absent variable is the identity.
        assert_eq!(s.substitute(&x(), &by), s);
    }

    #[test]
    fn renaming_merges_terms() {
        let e = LinExpr::var(x()) + LinExpr::term(y(), r(3));
        let mut map = BTreeMap::new();
        map.insert(y(), x());
        let renamed = e.rename(&map);
        assert_eq!(renamed.coeff(&x()), r(4));
        assert!(!renamed.contains(&y()));
    }

    #[test]
    fn display() {
        let e = LinExpr::term(x(), r(2)) - LinExpr::var(y()) + LinExpr::constant(r(-3));
        assert_eq!(e.to_string(), "2x - y - 3");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!(LinExpr::constant(r(7)).to_string(), "7");
        let neg_lead = -LinExpr::var(x());
        assert_eq!(neg_lead.to_string(), "-x");
    }
}
