//! Memoization of satisfiability and entailment answers.
//!
//! Query evaluation re-asks the same questions constantly: the same stored
//! constraint object is tested for feasibility once per binding, and
//! entailment predicates re-derive `C ∧ ¬a` for every enumerated row. Both
//! answers depend only on the conjunction itself — [`Conjunction`] is kept
//! normalized and ordered by construction, so the value *is* its canonical
//! cache key.
//!
//! The caches are process-global and *sharded*: each map is split across
//! [`SHARDS`] hash-partitioned segments behind their own mutexes, so the
//! worker threads of a parallel region (and fully independent queries on
//! different threads) share memo entries without contending on one lock.
//! They are only consulted while an engine context with caching enabled is
//! installed ([`lyric_engine::cache_enabled`]); standalone library use
//! pays nothing. Entries carry the [`lyric_engine::generation`] they were
//! stored under — a probe under a different generation is a miss (all
//! workers of one parallel region share their query's generation, so they
//! do share entries), and each shard is bounded: on overflow it is cleared
//! rather than grown, keeping worst-case memory flat.
//!
//! Solving happens *outside* the shard lock, so two threads missing on the
//! same key may both solve it (benign duplicated work, last write wins);
//! a lock is only ever held for a probe or an insert, never across a
//! recursive solve, which also rules out lock-order deadlocks.

use crate::atom::Atom;
use crate::conjunction::Conjunction;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{LazyLock, Mutex, MutexGuard};

/// Number of hash-partitioned segments per cache. More shards than any
/// plausible thread budget, so workers rarely collide on a lock.
const SHARDS: usize = 16;

/// Per-shard entry bound; crossing it clears the shard (cheap, and the
/// generation mechanism already makes entries short-lived).
const MAX_SHARD_ENTRIES: usize = 1_024;

/// Lock a shard, surviving poisoning: a budget abort can unwind a worker
/// thread at any `note` site, but never while a shard lock is held (locks
/// only guard pure map operations), so the data is always consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Values carry the generation they were stored under instead of the maps
/// being cleared on a generation change: probing compares generations, so
/// stale entries die lazily (and are overwritten in place on re-solve).
struct ShardedMemo<K> {
    shards: Vec<Mutex<HashMap<K, (u64, bool)>>>,
}

impl<K: Hash + Eq> ShardedMemo<K> {
    fn new() -> Self {
        ShardedMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, (u64, bool)>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn probe(&self, key: &K, generation: u64) -> Option<bool> {
        lock(self.shard(key))
            .get(key)
            .filter(|&&(g, _)| g == generation)
            .map(|&(_, answer)| answer)
    }

    fn insert(&self, key: K, generation: u64, answer: bool) {
        let mut shard = lock(self.shard(&key));
        if shard.len() >= MAX_SHARD_ENTRIES {
            shard.clear();
        }
        shard.insert(key, (generation, answer));
    }
}

static SAT: LazyLock<ShardedMemo<Conjunction>> = LazyLock::new(ShardedMemo::new);
static ENTAIL: LazyLock<ShardedMemo<(Conjunction, Atom)>> = LazyLock::new(ShardedMemo::new);

/// Point-in-time occupancy of one process-global memo cache, for the
/// `/debug/caches` introspection surface. `entries` counts live map
/// entries of *any* generation (stale ones die lazily, so they still
/// occupy memory); `capacity` is the hard bound (shards × per-shard
/// limit) past which a shard clears.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheOccupancy {
    /// Entries currently held, across every shard.
    pub entries: usize,
    /// Bound on held entries: shard count × per-shard entry limit.
    pub capacity: usize,
}

impl<K: Hash + Eq> ShardedMemo<K> {
    fn occupancy(&self) -> CacheOccupancy {
        CacheOccupancy {
            entries: self.shards.iter().map(|s| lock(s).len()).sum(),
            capacity: SHARDS * MAX_SHARD_ENTRIES,
        }
    }
}

/// Occupancy of the satisfiability memo.
pub fn sat_occupancy() -> CacheOccupancy {
    SAT.occupancy()
}

/// Occupancy of the entailment memo.
pub fn entail_occupancy() -> CacheOccupancy {
    ENTAIL.occupancy()
}

fn memoized<K: Hash + Eq>(
    memo: &ShardedMemo<K>,
    key: impl FnOnce() -> K,
    solve: impl FnOnce() -> bool,
) -> bool {
    if !lyric_engine::cache_enabled() {
        return solve();
    }
    let generation = lyric_engine::generation();
    let key = key();
    if let Some(answer) = memo.probe(&key, generation) {
        lyric_engine::note_cache(true);
        return answer;
    }
    lyric_engine::note_cache(false);
    // Solve *outside* the lock: the solve path may recurse into another
    // cached query (entailment probes satisfiability underneath).
    let answer = solve();
    memo.insert(key, generation, answer);
    answer
}

/// Memoized satisfiability: `solve` runs on a miss and its answer is stored
/// under `c`'s value.
pub(crate) fn satisfiable(c: &Conjunction, solve: impl FnOnce() -> bool) -> bool {
    memoized(&SAT, || c.clone(), solve)
}

/// Memoized single-atom entailment, keyed on the (conjunction, atom) pair.
pub(crate) fn entails(c: &Conjunction, a: &Atom, solve: impl FnOnce() -> bool) -> bool {
    memoized(&ENTAIL, || (c.clone(), a.clone()), solve)
}

#[cfg(test)]
mod tests {
    use crate::{Atom, Conjunction, LinExpr, Var};
    use lyric_engine::{run_with, EngineBudget};

    fn x_box() -> Conjunction {
        let x = LinExpr::var(Var::new("x"));
        Conjunction::of([
            Atom::ge(x.clone(), LinExpr::from(0)),
            Atom::le(x, LinExpr::from(10)),
        ])
    }

    #[test]
    fn repeated_sat_checks_hit_the_cache() {
        let c = x_box();
        let ((), stats) = run_with(EngineBudget::unlimited(), true, || {
            assert!(c.satisfiable());
            assert!(c.satisfiable());
            assert!(c.satisfiable());
        })
        .unwrap();
        assert_eq!(stats.sat_checks, 3);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn cache_disabled_context_never_probes() {
        let c = x_box();
        let ((), stats) = run_with(EngineBudget::unlimited(), false, || {
            assert!(c.satisfiable());
            assert!(c.satisfiable());
        })
        .unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.lp_runs, 2);
    }

    #[test]
    fn entailment_answers_are_cached_per_atom() {
        let c = x_box();
        let a = Atom::le(LinExpr::var(Var::new("x")), LinExpr::from(20));
        let ((), stats) = run_with(EngineBudget::unlimited(), true, || {
            assert!(c.implies_atom(&a));
            assert!(c.implies_atom(&a));
        })
        .unwrap();
        assert_eq!(stats.entailment_checks, 2);
        assert!(stats.cache_hits >= 1, "second probe must hit: {stats}");
    }

    #[test]
    fn generations_isolate_contexts() {
        let c = x_box();
        let ((), first) =
            run_with(EngineBudget::unlimited(), true, || assert!(c.satisfiable())).unwrap();
        assert_eq!(first.cache_misses, 1);
        // A fresh context must not see the previous context's entries.
        let ((), second) =
            run_with(EngineBudget::unlimited(), true, || assert!(c.satisfiable())).unwrap();
        assert_eq!(second.cache_hits, 0);
        assert_eq!(second.cache_misses, 1);
    }

    #[test]
    fn workers_share_their_querys_entries() {
        // One parallel region: the first evaluation of each distinct key
        // misses, every repeat — on whichever worker — hits, because all
        // workers share the query's generation.
        let c = x_box();
        let opts = lyric_engine::ExecOptions::default().with_threads(4);
        let ((), stats) = lyric_engine::run_with_opts(opts, || {
            assert!(c.satisfiable()); // miss, on the coordinator
            let items = [(); 8];
            let answers = lyric_engine::parallel_map(&items, |_, _| c.satisfiable());
            assert!(answers.into_iter().all(|a| a));
        })
        .unwrap();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 8);
    }
}
