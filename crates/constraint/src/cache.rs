//! Memoization of satisfiability and entailment answers.
//!
//! Query evaluation re-asks the same questions constantly: the same stored
//! constraint object is tested for feasibility once per binding, and
//! entailment predicates re-derive `C ∧ ¬a` for every enumerated row. Both
//! answers depend only on the conjunction itself — [`Conjunction`] is kept
//! normalized and ordered by construction, so the value *is* its canonical
//! cache key.
//!
//! The caches are thread-local and only consulted while an engine context
//! with caching enabled is installed ([`lyric_engine::cache_enabled`]);
//! standalone library use pays nothing. Entries are invalidated wholesale
//! whenever [`lyric_engine::generation`] moves (a new context was
//! installed), and each map is bounded: on overflow it is cleared rather
//! than grown, keeping worst-case memory flat.

use crate::atom::Atom;
use crate::conjunction::Conjunction;
use std::cell::RefCell;
use std::collections::HashMap;

/// Per-cache entry bound; crossing it clears the cache (cheap, and the
/// generation mechanism already makes entries short-lived).
const MAX_ENTRIES: usize = 16_384;

struct Memo<K> {
    generation: u64,
    map: HashMap<K, bool>,
}

impl<K> Memo<K> {
    fn new() -> Self {
        Memo {
            generation: 0,
            map: HashMap::new(),
        }
    }
}

thread_local! {
    static SAT: RefCell<Memo<Conjunction>> = RefCell::new(Memo::new());
    static ENTAIL: RefCell<Memo<(Conjunction, Atom)>> = RefCell::new(Memo::new());
}

fn memoized<K: std::hash::Hash + Eq>(
    cell: &'static std::thread::LocalKey<RefCell<Memo<K>>>,
    key: impl FnOnce() -> K,
    solve: impl FnOnce() -> bool,
) -> bool {
    if !lyric_engine::cache_enabled() {
        return solve();
    }
    let generation = lyric_engine::generation();
    let key = key();
    let cached = cell.with(|c| {
        let mut memo = c.borrow_mut();
        if memo.generation != generation {
            memo.generation = generation;
            memo.map.clear();
        }
        memo.map.get(&key).copied()
    });
    if let Some(answer) = cached {
        lyric_engine::note_cache(true);
        return answer;
    }
    lyric_engine::note_cache(false);
    // Solve *outside* the borrow: the solve path may recurse into another
    // cached query (entailment probes satisfiability underneath).
    let answer = solve();
    cell.with(|c| {
        let mut memo = c.borrow_mut();
        if memo.map.len() >= MAX_ENTRIES {
            memo.map.clear();
        }
        memo.map.insert(key, answer);
    });
    answer
}

/// Memoized satisfiability: `solve` runs on a miss and its answer is stored
/// under `c`'s value.
pub(crate) fn satisfiable(c: &Conjunction, solve: impl FnOnce() -> bool) -> bool {
    memoized(&SAT, || c.clone(), solve)
}

/// Memoized single-atom entailment, keyed on the (conjunction, atom) pair.
pub(crate) fn entails(c: &Conjunction, a: &Atom, solve: impl FnOnce() -> bool) -> bool {
    memoized(&ENTAIL, || (c.clone(), a.clone()), solve)
}

#[cfg(test)]
mod tests {
    use crate::{Atom, Conjunction, LinExpr, Var};
    use lyric_engine::{run_with, EngineBudget};

    fn x_box() -> Conjunction {
        let x = LinExpr::var(Var::new("x"));
        Conjunction::of([
            Atom::ge(x.clone(), LinExpr::from(0)),
            Atom::le(x, LinExpr::from(10)),
        ])
    }

    #[test]
    fn repeated_sat_checks_hit_the_cache() {
        let c = x_box();
        let ((), stats) = run_with(EngineBudget::unlimited(), true, || {
            assert!(c.satisfiable());
            assert!(c.satisfiable());
            assert!(c.satisfiable());
        })
        .unwrap();
        assert_eq!(stats.sat_checks, 3);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn cache_disabled_context_never_probes() {
        let c = x_box();
        let ((), stats) = run_with(EngineBudget::unlimited(), false, || {
            assert!(c.satisfiable());
            assert!(c.satisfiable());
        })
        .unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.lp_runs, 2);
    }

    #[test]
    fn entailment_answers_are_cached_per_atom() {
        let c = x_box();
        let a = Atom::le(LinExpr::var(Var::new("x")), LinExpr::from(20));
        let ((), stats) = run_with(EngineBudget::unlimited(), true, || {
            assert!(c.implies_atom(&a));
            assert!(c.implies_atom(&a));
        })
        .unwrap();
        assert_eq!(stats.entailment_checks, 2);
        assert!(stats.cache_hits >= 1, "second probe must hit: {stats}");
    }

    #[test]
    fn generations_isolate_contexts() {
        let c = x_box();
        let ((), first) =
            run_with(EngineBudget::unlimited(), true, || assert!(c.satisfiable())).unwrap();
        assert_eq!(first.cache_misses, 1);
        // A fresh context must not see the previous context's entries.
        let ((), second) =
            run_with(EngineBudget::unlimited(), true, || assert!(c.satisfiable())).unwrap();
        assert_eq!(second.cache_hits, 0);
        assert_eq!(second.cache_misses, 1);
    }
}
