//! Generalized (constraint) relations.

use lyric_constraint::{Conjunction, Var};
use lyric_oodb::Oid;
use std::collections::BTreeSet;
use std::fmt;

/// One generalized tuple: oid values for the ordinary columns plus a
/// conjunction of linear constraints over the relation's constraint
/// variables. Per KKR93, the tuple denotes the (possibly infinite) set of
/// real instantiations of the constraint variables satisfying the
/// conjunction, tagged by the oid values; a relation denotes the
/// disjunction of its tuples.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConstraintTuple {
    pub values: Vec<Oid>,
    pub constraint: Conjunction,
}

/// A flat constraint relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    columns: Vec<String>,
    /// The constraint variables this relation's tuples may constrain.
    cst_vars: Vec<Var>,
    tuples: Vec<ConstraintTuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn new(name: impl Into<String>, columns: Vec<String>, cst_vars: Vec<Var>) -> Relation {
        let columns_set: BTreeSet<&String> = columns.iter().collect();
        assert_eq!(columns_set.len(), columns.len(), "duplicate column name");
        Relation {
            name: name.into(),
            columns,
            cst_vars,
            tuples: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn cst_vars(&self) -> &[Var] {
        &self.cst_vars
    }

    pub fn tuples(&self) -> &[ConstraintTuple] {
        &self.tuples
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Append a tuple. Panics on arity mismatch; tuples whose constraint
    /// is syntactically false are dropped.
    pub fn push(&mut self, values: Vec<Oid>, constraint: Conjunction) {
        assert_eq!(values.len(), self.columns.len(), "tuple arity mismatch");
        if constraint.is_syntactically_false() {
            return;
        }
        self.tuples.push(ConstraintTuple { values, constraint });
    }

    /// Append preserving duplicates policy: sorted/deduped on demand.
    pub fn dedup(&mut self) {
        self.tuples.sort();
        self.tuples.dedup();
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        if !self.cst_vars.is_empty() {
            write!(f, "; ")?;
            for (i, v) in self.cst_vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
        }
        writeln!(f, ") [{} tuples]", self.tuples.len())?;
        for t in &self.tuples {
            write!(f, "  (")?;
            for (i, v) in t.values.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ") | {}", t.constraint)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric_constraint::{Atom, LinExpr};

    #[test]
    fn schema_and_push() {
        let mut r = Relation::new("R", vec!["a".into(), "b".into()], vec![Var::new("x")]);
        assert_eq!(r.col("b"), Some(1));
        assert_eq!(r.col("z"), None);
        r.push(vec![Oid::Int(1), Oid::Int(2)], Conjunction::top());
        assert_eq!(r.len(), 1);
        // Syntactically false constraints are dropped at insert.
        r.push(vec![Oid::Int(3), Oid::Int(4)], Conjunction::bottom());
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut r = Relation::new("R", vec!["a".into()], vec![]);
        r.push(vec![Oid::Int(1), Oid::Int(2)], Conjunction::top());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let _ = Relation::new("R", vec!["a".into(), "a".into()], vec![]);
    }

    #[test]
    fn dedup() {
        let mut r = Relation::new("R", vec!["a".into()], vec![Var::new("x")]);
        let c = Conjunction::of([Atom::ge(LinExpr::var(Var::new("x")), LinExpr::from(0))]);
        r.push(vec![Oid::Int(1)], c.clone());
        r.push(vec![Oid::Int(1)], c);
        r.dedup();
        assert_eq!(r.len(), 1);
    }
}
