//! Flat constraint relations — the §5 substrate of the LyriC paper.
//!
//! §5 argues LyriC's PTIME data complexity by translation: a constraint
//! object base "is essentially a collection of flat relations" (class
//! extents plus attribute relations, set-valued ones unnested), and a
//! LyriC query flattens into SQL **with linear constraints** in the style
//! of KKR93/BJM93, where each tuple carries a conjunction of constraints
//! and a relation denotes the disjunction of its tuples.
//!
//! This crate implements that substrate from scratch:
//!
//! * [`Relation`] / [`ConstraintTuple`] — generalized relations whose
//!   tuples combine ordinary oid columns with a conjunctive constraint
//!   over named real variables;
//! * a relational **algebra** with constraint-aware selection, natural
//!   join (conjoining constraints), projection (with restricted variable
//!   elimination), union, and renaming;
//! * [`FlatDb::from_database`] — the §5 translation of an object database
//!   into flat relations;
//! * it serves as the *naive baseline* of experiment E7: paper queries
//!   expressed as algebra plans over the translation must return exactly
//!   the answers of the direct object evaluator.

//! # Example
//!
//! ```
//! use lyric_flatrel::Relation;
//! use lyric_constraint::{Atom, Conjunction, LinExpr, Var};
//! use lyric_oodb::Oid;
//!
//! // R(id; x): each tuple pairs an oid with a constraint over x.
//! let mut r = Relation::new("R", vec!["id".into()], vec![Var::new("x")]);
//! let x = || LinExpr::var(Var::new("x"));
//! r.push(vec![Oid::Int(1)],
//!        Conjunction::of([Atom::ge(x(), LinExpr::from(0)),
//!                         Atom::le(x(), LinExpr::from(10))]));
//! r.push(vec![Oid::Int(2)],
//!        Conjunction::of([Atom::ge(x(), LinExpr::from(20))]));
//!
//! // Constraint selection drops tuples that become infeasible.
//! let hot = r.select_constraint(&[Atom::ge(x(), LinExpr::from(15))]);
//! assert_eq!(hot.len(), 1);
//! assert_eq!(hot.tuples()[0].values[0], Oid::Int(2));
//! ```

mod algebra;
mod relation;
mod translate;

pub use algebra::JoinOn;
pub use relation::{ConstraintTuple, Relation};
pub use translate::FlatDb;
