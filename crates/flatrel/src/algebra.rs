//! Relational algebra over constraint relations (SQL with linear
//! constraints, KKR93/BJM93).
//!
//! Every operator is constraint-aware:
//!
//! * **selection** may filter on oid columns *or* conjoin constraint atoms
//!   (dropping tuples that become unsatisfiable — the paper's canonical
//!   "deletion of inconsistent disjuncts");
//! * **join** concatenates oid columns and conjoins constraints (shared
//!   constraint variable names unify, exactly the natural-join analogy of
//!   §3.2);
//! * **projection** keeps a subset of oid columns and a subset of
//!   constraint variables, eliminating the dropped ones per tuple with
//!   equality substitution + Fourier–Motzkin (disequation case-splits
//!   produce extra tuples, which DNF-at-the-relation-level makes legal).

use crate::relation::Relation;
use lyric_constraint::{Atom, Conjunction, Dnf, Var};
use lyric_oodb::Oid;
use std::collections::BTreeMap;

/// Equality join condition: pairs of (left column, right column).
pub type JoinOn<'a> = &'a [(&'a str, &'a str)];

impl Relation {
    /// σ: keep tuples whose column equals the oid.
    pub fn select_eq(&self, column: &str, value: &Oid) -> Relation {
        let idx = self.col(column).expect("unknown column in select_eq");
        let mut out = Relation::new(
            self.name().to_string(),
            self.columns().to_vec(),
            self.cst_vars().to_vec(),
        );
        for t in self.tuples() {
            if &t.values[idx] == value {
                out.push(t.values.clone(), t.constraint.clone());
            }
        }
        out
    }

    /// σ: conjoin constraint atoms to every tuple, dropping tuples that
    /// become unsatisfiable (one feasibility check per tuple).
    pub fn select_constraint(&self, atoms: &[Atom]) -> Relation {
        let extra = Conjunction::of(atoms.iter().cloned());
        let mut out = Relation::new(
            self.name().to_string(),
            self.columns().to_vec(),
            self.cst_vars().to_vec(),
        );
        for t in self.tuples() {
            let c = t.constraint.and(&extra);
            if c.satisfiable() {
                out.push(t.values.clone(), c);
            }
        }
        out
    }

    /// ⋈: natural join on explicit oid-column pairs; constraints conjoin
    /// (shared constraint variables unify by name).
    pub fn join(&self, other: &Relation, on: JoinOn<'_>) -> Relation {
        let left_idx: Vec<usize> = on
            .iter()
            .map(|(l, _)| self.col(l).expect("left join column"))
            .collect();
        let right_idx: Vec<usize> = on
            .iter()
            .map(|(_, r)| other.col(r).expect("right join column"))
            .collect();
        // Output columns: all left + right-except-join-columns. Name
        // clashes on non-join columns are prefixed with the relation name.
        let mut columns = self.columns().to_vec();
        let mut kept_right: Vec<usize> = Vec::new();
        for (i, c) in other.columns().iter().enumerate() {
            if right_idx.contains(&i) {
                continue;
            }
            kept_right.push(i);
            if columns.contains(c) {
                columns.push(format!("{}.{}", other.name(), c));
            } else {
                columns.push(c.clone());
            }
        }
        let mut cst_vars = self.cst_vars().to_vec();
        for v in other.cst_vars() {
            if !cst_vars.contains(v) {
                cst_vars.push(v.clone());
            }
        }
        let mut out = Relation::new(
            format!("({}⋈{})", self.name(), other.name()),
            columns,
            cst_vars,
        );
        for lt in self.tuples() {
            for rt in other.tuples() {
                if left_idx
                    .iter()
                    .zip(&right_idx)
                    .any(|(&li, &ri)| lt.values[li] != rt.values[ri])
                {
                    continue;
                }
                let mut values = lt.values.clone();
                for &i in &kept_right {
                    values.push(rt.values[i].clone());
                }
                let c = lt.constraint.and(&rt.constraint);
                if c.satisfiable() {
                    out.push(values, c);
                }
            }
        }
        out
    }

    /// π: keep the named oid columns and constraint variables, eliminating
    /// dropped constraint variables tuple-by-tuple (case-splitting
    /// disequations into extra tuples).
    pub fn project(&self, columns: &[&str], keep_vars: &[Var]) -> Relation {
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| self.col(c).expect("unknown column in project"))
            .collect();
        let drop_vars: Vec<Var> = self
            .cst_vars()
            .iter()
            .filter(|v| !keep_vars.contains(v))
            .cloned()
            .collect();
        let mut out = Relation::new(
            self.name().to_string(),
            columns.iter().map(|s| s.to_string()).collect(),
            keep_vars.to_vec(),
        );
        for t in self.tuples() {
            let values: Vec<Oid> = idx.iter().map(|&i| t.values[i].clone()).collect();
            let dnf = Dnf::from_conjunction(t.constraint.clone()).eliminate_all(drop_vars.iter());
            for d in dnf.disjuncts() {
                out.push(values.clone(), d.clone());
            }
        }
        out.dedup();
        out
    }

    /// ρ: rename constraint variables.
    pub fn rename_vars(&self, map: &BTreeMap<Var, Var>) -> Relation {
        let cst_vars: Vec<Var> = self
            .cst_vars()
            .iter()
            .map(|v| map.get(v).unwrap_or(v).clone())
            .collect();
        let mut out = Relation::new(self.name().to_string(), self.columns().to_vec(), cst_vars);
        for t in self.tuples() {
            out.push(t.values.clone(), t.constraint.rename(map));
        }
        out
    }

    /// ρ: rename a column.
    pub fn rename_col(&self, from: &str, to: &str) -> Relation {
        let columns: Vec<String> = self
            .columns()
            .iter()
            .map(|c| if c == from { to.to_string() } else { c.clone() })
            .collect();
        let mut out = Relation::new(self.name().to_string(), columns, self.cst_vars().to_vec());
        for t in self.tuples() {
            out.push(t.values.clone(), t.constraint.clone());
        }
        out
    }

    /// ∪: union of compatible relations.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.columns(), other.columns(), "union schema mismatch");
        let mut out = self.clone();
        for t in other.tuples() {
            out.push(t.values.clone(), t.constraint.clone());
        }
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric_constraint::LinExpr;

    fn x() -> LinExpr {
        LinExpr::var(Var::new("x"))
    }
    fn y() -> LinExpr {
        LinExpr::var(Var::new("y"))
    }

    fn interval_rel(name: &str, entries: &[(i64, i64, i64)]) -> Relation {
        // (id; x) with lo <= x <= hi
        let mut r = Relation::new(name, vec!["id".into()], vec![Var::new("x")]);
        for &(id, lo, hi) in entries {
            r.push(
                vec![Oid::Int(id)],
                Conjunction::of([
                    Atom::ge(x(), LinExpr::from(lo)),
                    Atom::le(x(), LinExpr::from(hi)),
                ]),
            );
        }
        r
    }

    #[test]
    fn select_eq_and_constraint() {
        let r = interval_rel("R", &[(1, 0, 10), (2, 20, 30)]);
        assert_eq!(r.select_eq("id", &Oid::Int(1)).len(), 1);
        // x >= 15 keeps only the second tuple.
        let s = r.select_constraint(&[Atom::ge(x(), LinExpr::from(15))]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.tuples()[0].values[0], Oid::Int(2));
    }

    #[test]
    fn join_unifies_constraint_vars() {
        let r = interval_rel("R", &[(1, 0, 10)]);
        let mut s = Relation::new("S", vec!["id".into()], vec![Var::new("x")]);
        s.push(
            vec![Oid::Int(1)],
            Conjunction::of([Atom::ge(x(), LinExpr::from(5))]),
        );
        // Same id, constraints on the same variable x: conjunction is
        // 5 <= x <= 10.
        let j = r.join(&s, &[("id", "id")]);
        assert_eq!(j.len(), 1);
        assert!(j.tuples()[0]
            .constraint
            .implies_atom(&Atom::ge(x(), LinExpr::from(5))));
        assert!(j.tuples()[0]
            .constraint
            .implies_atom(&Atom::le(x(), LinExpr::from(10))));
        // Disjoint id: no tuples.
        let mut s2 = Relation::new("S2", vec!["id".into()], vec![]);
        s2.push(vec![Oid::Int(9)], Conjunction::top());
        assert!(r.join(&s2, &[("id", "id")]).is_empty());
        // Unsatisfiable combination dropped.
        let mut s3 = Relation::new("S3", vec!["id".into()], vec![Var::new("x")]);
        s3.push(
            vec![Oid::Int(1)],
            Conjunction::of([Atom::ge(x(), LinExpr::from(99))]),
        );
        assert!(r.join(&s3, &[("id", "id")]).is_empty());
    }

    #[test]
    fn projection_eliminates_variables() {
        // R(id; x, y) with y = x + 1, 0 <= x <= 10; project out x.
        let mut r = Relation::new("R", vec!["id".into()], vec![Var::new("x"), Var::new("y")]);
        r.push(
            vec![Oid::Int(1)],
            Conjunction::of([
                Atom::eq(y(), x() + LinExpr::from(1)),
                Atom::ge(x(), LinExpr::from(0)),
                Atom::le(x(), LinExpr::from(10)),
            ]),
        );
        let p = r.project(&["id"], &[Var::new("y")]);
        assert_eq!(p.len(), 1);
        let c = &p.tuples()[0].constraint;
        assert!(c.implies_atom(&Atom::ge(y(), LinExpr::from(1))));
        assert!(c.implies_atom(&Atom::le(y(), LinExpr::from(11))));
        assert!(!c.vars().contains(&Var::new("x")));
    }

    #[test]
    fn projection_splits_disequations() {
        // 0 <= x <= 10 ∧ y <= x ∧ x ≠ 5: eliminating x case-splits.
        let mut r = Relation::new("R", vec![], vec![Var::new("x"), Var::new("y")]);
        r.push(
            vec![],
            Conjunction::of([
                Atom::ge(x(), LinExpr::from(0)),
                Atom::le(x(), LinExpr::from(10)),
                Atom::le(y(), x()),
                Atom::neq(x(), LinExpr::from(5)),
            ]),
        );
        let p = r.project(&[], &[Var::new("y")]);
        // The union of the disjuncts is y <= 10.
        let union = p.tuples().iter().fold(Dnf::bottom(), |acc, t| {
            acc.or(&Dnf::from_conjunction(t.constraint.clone()))
        });
        let expect = Dnf::from_conjunction(Conjunction::of([Atom::le(y(), LinExpr::from(10))]));
        assert!(union.equivalent(&expect), "got {union}");
    }

    #[test]
    fn rename_and_union() {
        let r = interval_rel("R", &[(1, 0, 1)]);
        let mut map = BTreeMap::new();
        map.insert(Var::new("x"), Var::new("t"));
        let renamed = r.rename_vars(&map);
        assert_eq!(renamed.cst_vars(), &[Var::new("t")]);
        let r2 = interval_rel("R", &[(2, 5, 6)]);
        let u = r.union(&r2);
        assert_eq!(u.len(), 2);
        // Union dedups.
        assert_eq!(u.union(&r2).len(), 2);
        let rc = r.rename_col("id", "obj");
        assert_eq!(rc.col("obj"), Some(0));
    }
}
