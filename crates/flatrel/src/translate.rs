//! The §5 translation: an object database as a collection of flat
//! constraint relations.
//!
//! * one **extent relation** `C(obj)` per class, containing the oids of
//!   all instances (subclasses included — the IS-A hierarchy is compiled
//!   away);
//! * one **attribute relation** `C_a(obj, val)` per class and visible
//!   attribute; set-valued attributes are unnested into one tuple per
//!   member (§5: "after unnesting them");
//! * CST attributes become **constraint relations** `C_a(obj; x₁,…,xₙ)`:
//!   one tuple per object per disjunct of the stored object, with the
//!   constraint aligned to the attribute's declared variable list —
//!   [BJM93]'s "constraint tuple = conjunction, relation = disjunction".

use crate::relation::Relation;
use lyric_oodb::{AttrTarget, Database, Oid, Value};
use std::collections::BTreeMap;

/// A flat image of an object database.
#[derive(Debug, Clone)]
pub struct FlatDb {
    extents: BTreeMap<String, Relation>,
    attributes: BTreeMap<(String, String), Relation>,
}

impl FlatDb {
    /// Translate a database. Every user class contributes an extent
    /// relation and one relation per visible attribute.
    pub fn from_database(db: &Database) -> FlatDb {
        let mut extents = BTreeMap::new();
        let mut attributes = BTreeMap::new();
        let class_names: Vec<String> = db.schema().class_names().map(str::to_string).collect();
        for class in &class_names {
            let members = db.extent(class);
            let mut ext = Relation::new(class.clone(), vec!["obj".into()], vec![]);
            for m in &members {
                ext.push(vec![m.clone()], lyric_constraint::Conjunction::top());
            }
            extents.insert(class.clone(), ext);

            for (attr, decl) in db.schema().attributes_of(class) {
                let rel_name = format!("{class}_{attr}");
                let mut rel = match &decl.target {
                    AttrTarget::Cst { vars } => {
                        Relation::new(rel_name, vec!["obj".into()], vars.clone())
                    }
                    AttrTarget::Class { .. } => {
                        Relation::new(rel_name, vec!["obj".into(), "val".into()], vec![])
                    }
                };
                for m in &members {
                    let Some(value) = db.attr(m, &attr) else {
                        continue;
                    };
                    push_attr(&mut rel, m, value, &decl.target);
                }
                attributes.insert((class.clone(), attr.clone()), rel);
            }
        }
        FlatDb {
            extents,
            attributes,
        }
    }

    /// The extent relation of a class.
    pub fn extent(&self, class: &str) -> Option<&Relation> {
        self.extents.get(class)
    }

    /// The attribute relation `class_attr`.
    pub fn attr(&self, class: &str, attr: &str) -> Option<&Relation> {
        self.attributes.get(&(class.to_string(), attr.to_string()))
    }

    /// Total number of flat tuples (used by the benchmarks to report the
    /// size of the translated database).
    pub fn total_tuples(&self) -> usize {
        self.extents.values().map(Relation::len).sum::<usize>()
            + self.attributes.values().map(Relation::len).sum::<usize>()
    }
}

fn push_attr(rel: &mut Relation, obj: &Oid, value: &Value, target: &AttrTarget) {
    match target {
        AttrTarget::Cst { vars } => {
            for member in value.iter() {
                let Some(cst) = member.as_cst() else { continue };
                // Align the stored object's schema to the declared
                // variable list; one flat tuple per disjunct.
                let aligned = cst.align_to(vars);
                for d in aligned.disjuncts() {
                    rel.push(vec![obj.clone()], d.clone());
                }
            }
        }
        AttrTarget::Class { .. } => {
            for member in value.iter() {
                rel.push(
                    vec![obj.clone(), member.clone()],
                    lyric_constraint::Conjunction::top(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric::paper_example;
    use lyric_constraint::{Atom, LinExpr, Var};

    #[test]
    fn translation_shapes() {
        let db = paper_example::database();
        let flat = FlatDb::from_database(&db);
        // Extents include subclass members.
        assert_eq!(flat.extent("Office_Object").unwrap().len(), 2);
        assert_eq!(flat.extent("Desk").unwrap().len(), 1);
        assert_eq!(flat.extent("Object_In_Room").unwrap().len(), 2);
        // Scalar attribute relation.
        let name = flat.attr("Office_Object", "name").unwrap();
        assert_eq!(name.len(), 2);
        assert_eq!(name.columns(), &["obj".to_string(), "val".to_string()]);
        // CST attribute relation carries the declared variables.
        let extent = flat.attr("Desk", "extent").unwrap();
        assert_eq!(extent.cst_vars(), &[Var::new("w"), Var::new("z")]);
        assert_eq!(extent.len(), 1);
        // Set-valued drawer_center unnests to two tuples.
        let centers = flat.attr("File_Cabinet", "drawer_center").unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn inherited_attributes_visible_on_subclass() {
        let db = paper_example::database();
        let flat = FlatDb::from_database(&db);
        // Desk inherits extent from Office_Object; the Desk_extent relation
        // exists and holds the desk's extent.
        let r = flat.attr("Desk", "extent").unwrap();
        assert_eq!(r.len(), 1);
        let c = &r.tuples()[0].constraint;
        assert!(c.implies_atom(&Atom::le(LinExpr::var(Var::new("w")), LinExpr::from(4))));
    }

    #[test]
    fn flat_query_first_paper_example() {
        // §5 flattening of `SELECT Y FROM Desk X WHERE X.drawer.extent[Y]`:
        // Desk(obj) ⋈ Desk_drawer(obj, val) ⋈ Drawer_extent(obj=val).
        let db = paper_example::database();
        let flat = FlatDb::from_database(&db);
        let plan = flat
            .extent("Desk")
            .unwrap()
            .join(flat.attr("Desk", "drawer").unwrap(), &[("obj", "obj")])
            .rename_col("val", "drawer_obj")
            .join(
                &flat
                    .attr("Drawer", "extent")
                    .unwrap()
                    .rename_col("obj", "drawer_obj"),
                &[("drawer_obj", "drawer_obj")],
            );
        assert_eq!(plan.len(), 1);
        let c = &plan.tuples()[0].constraint;
        // −1 ≤ w ≤ 1 ∧ −1 ≤ z ≤ 1
        assert!(c.implies_atom(&Atom::le(LinExpr::var(Var::new("w")), LinExpr::from(1))));
        assert!(c.implies_atom(&Atom::ge(LinExpr::var(Var::new("z")), LinExpr::from(-1))));
    }
}
