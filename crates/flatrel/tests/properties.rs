//! Property tests for the flat constraint algebra: operators respect the
//! KKR93 point-set semantics (a tuple denotes the instantiations of its
//! constraint variables; a relation denotes the disjunction of its
//! tuples).

use lyric_arith::Rational;
use lyric_constraint::{Assignment, Atom, Conjunction, LinExpr, RelOp, Var};
use lyric_flatrel::Relation;
use lyric_oodb::Oid;
use proptest::prelude::*;

const NVARS: usize = 2;

fn var(i: usize) -> Var {
    Var::new(format!("x{i}"))
}

#[derive(Debug, Clone)]
struct RawAtom {
    coeffs: Vec<i32>,
    op: u8,
    rhs: i32,
}

fn atom_strategy() -> impl Strategy<Value = RawAtom> {
    (
        proptest::collection::vec(-3..=3i32, NVARS),
        0..3u8,
        -6..=6i32,
    )
        .prop_map(|(coeffs, op, rhs)| RawAtom { coeffs, op, rhs })
}

fn build_atom(raw: &RawAtom) -> Atom {
    let mut e = LinExpr::zero();
    for (i, &c) in raw.coeffs.iter().enumerate() {
        if c != 0 {
            e = e + LinExpr::term(var(i), Rational::from_int(c as i64));
        }
    }
    let relop = match raw.op {
        0 => RelOp::Le,
        1 => RelOp::Ge,
        _ => RelOp::Eq,
    };
    Atom::new(e, relop, LinExpr::from(raw.rhs as i64))
}

/// A relation with one oid column `id` and constraint variables x0, x1.
fn relation_strategy(
    name: &'static str,
) -> impl Strategy<Value = (Relation, Vec<(i64, Vec<RawAtom>)>)> {
    proptest::collection::vec(
        (0..4i64, proptest::collection::vec(atom_strategy(), 0..3)),
        0..4,
    )
    .prop_map(move |tuples| {
        let mut r = Relation::new(name, vec!["id".into()], (0..NVARS).map(var).collect());
        for (id, atoms) in &tuples {
            r.push(
                vec![Oid::Int(*id)],
                Conjunction::of(atoms.iter().map(build_atom)),
            );
        }
        (r, tuples)
    })
}

fn assignment(p: &[i32]) -> Assignment {
    p.iter()
        .enumerate()
        .map(|(i, &v)| (var(i), Rational::from_int(v as i64)))
        .collect()
}

/// Does (id, point) belong to the relation's denotation?
fn denotes(raw: &[(i64, Vec<RawAtom>)], id: i64, point: &Assignment) -> bool {
    raw.iter()
        .any(|(tid, atoms)| *tid == id && atoms.iter().all(|a| build_atom(a).eval(point)))
}

proptest! {
    /// Join semantics: (idL, idR, point) is in the join's denotation iff
    /// it is in both operands' (with equal join keys and a shared point).
    #[test]
    fn join_pointwise(l in relation_strategy("L"), r in relation_strategy("R"),
                      id in 0..4i64, p in proptest::collection::vec(-4..=4i32, NVARS)) {
        let (lrel, lraw) = l;
        let (rrel, rraw) = r;
        let j = lrel.join(&rrel, &[("id", "id")]);
        let point = assignment(&p);
        let in_join = j.tuples().iter().any(|t| {
            t.values[0] == Oid::Int(id) && t.constraint.eval(&point)
        });
        let in_both = denotes(&lraw, id, &point) && denotes(&rraw, id, &point);
        prop_assert_eq!(in_join, in_both, "join mismatch at id={} {:?}", id, p);
    }

    /// Constraint selection: denotation intersects the selection atom.
    #[test]
    fn select_constraint_pointwise(rel in relation_strategy("R"), sel in atom_strategy(),
                                   id in 0..4i64,
                                   p in proptest::collection::vec(-4..=4i32, NVARS)) {
        let (r, raw) = rel;
        let atom = build_atom(&sel);
        let s = r.select_constraint(std::slice::from_ref(&atom));
        let point = assignment(&p);
        let in_sel = s.tuples().iter().any(|t| {
            t.values[0] == Oid::Int(id) && t.constraint.eval(&point)
        });
        let expect = denotes(&raw, id, &point) && atom.eval(&point);
        prop_assert_eq!(in_sel, expect);
    }

    /// Projection of a constraint variable: (id, x1) is in the projection
    /// iff some x0 extends it.
    #[test]
    fn project_pointwise(rel in relation_strategy("R"), id in 0..4i64, x1 in -4..=4i32) {
        let (r, raw) = rel;
        let projected = r.project(&["id"], &[var(1)]);
        let mut point = Assignment::new();
        point.insert(var(1), Rational::from_int(x1 as i64));
        let in_proj = projected.tuples().iter().any(|t| {
            t.values[0] == Oid::Int(id) && t.constraint.eval(&point)
        });
        // Reference: ground x1 in each tuple and test satisfiability over x0.
        let has_extension = raw.iter().any(|(tid, atoms)| {
            *tid == id && {
                let c = Conjunction::of(atoms.iter().map(build_atom))
                    .substitute(&var(1), &LinExpr::from(x1 as i64));
                c.satisfiable()
            }
        });
        prop_assert_eq!(in_proj, has_extension, "projection mismatch id={} x1={}", id, x1);
    }

    /// Union is denotation union and is idempotent after dedup.
    #[test]
    fn union_pointwise(a in relation_strategy("A"), id in 0..4i64,
                       p in proptest::collection::vec(-4..=4i32, NVARS)) {
        let (ra, raw) = a;
        let u = ra.union(&ra);
        let mut base = ra.clone();
        base.dedup();
        prop_assert_eq!(u.len(), base.len(), "self-union equals deduped original");
        let point = assignment(&p);
        let in_u = u.tuples().iter().any(|t| {
            t.values[0] == Oid::Int(id) && t.constraint.eval(&point)
        });
        prop_assert_eq!(in_u, denotes(&raw, id, &point));
    }
}
