//! Property tests for the object-oriented substrate: schema/extent
//! invariants under random class hierarchies and insertions.

use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};
use proptest::prelude::*;

/// A random forest-shaped hierarchy: class i may have any earlier class as
/// parent (guaranteeing acyclicity by construction).
#[derive(Debug, Clone)]
struct RawHierarchy {
    /// parent[i] = Some(j) with j < i, or None (root).
    parents: Vec<Option<usize>>,
    /// members[i] = how many objects inserted directly into class i.
    members: Vec<u8>,
}

fn hierarchy_strategy() -> impl Strategy<Value = RawHierarchy> {
    (2..8usize)
        .prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<Option<usize>>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        Just(None).boxed()
                    } else {
                        proptest::option::of(0..i).boxed()
                    }
                })
                .collect();
            (parents, proptest::collection::vec(0..4u8, n))
        })
        .prop_map(|(parents, members)| RawHierarchy { parents, members })
}

fn class_name(i: usize) -> String {
    format!("C{i}")
}

fn build(h: &RawHierarchy) -> Database {
    let mut schema = Schema::new();
    for (i, parent) in h.parents.iter().enumerate() {
        let mut def = ClassDef::new(class_name(i));
        if let Some(p) = parent {
            def = def.is_a(class_name(*p));
        }
        schema.add_class(def).expect("acyclic by construction");
    }
    let mut db = Database::new(schema).expect("validates");
    for (i, &count) in h.members.iter().enumerate() {
        for k in 0..count {
            db.insert(
                Oid::named(format!("obj_{i}_{k}")),
                &class_name(i),
                [] as [(&str, Value); 0],
            )
            .expect("plain insert");
        }
    }
    db
}

proptest! {
    /// Extents are the union of direct members over all (transitive)
    /// subclasses; is_instance agrees with extent membership; subclass
    /// extents are contained in superclass extents.
    #[test]
    fn extent_semantics(h in hierarchy_strategy()) {
        let db = build(&h);
        let n = h.parents.len();
        // Reference model: direct members.
        let direct: Vec<Vec<Oid>> = (0..n)
            .map(|i| (0..h.members[i]).map(|k| Oid::named(format!("obj_{i}_{k}"))).collect())
            .collect();
        // is_subclass reference via parent chains.
        let is_sub = |mut a: usize, b: usize| -> bool {
            loop {
                if a == b {
                    return true;
                }
                match h.parents[a] {
                    Some(p) => a = p,
                    None => return false,
                }
            }
        };
        for b in 0..n {
            let extent = db.extent(&class_name(b));
            // Model extent: all direct members of classes a with a ⊑ b.
            let mut expect: Vec<Oid> = (0..n)
                .filter(|&a| is_sub(a, b))
                .flat_map(|a| direct[a].iter().cloned())
                .collect();
            expect.sort();
            prop_assert_eq!(extent.clone(), expect);
            for o in &extent {
                prop_assert!(db.is_instance(o, &class_name(b)));
                prop_assert!(db.is_instance(o, "object"));
            }
        }
        // Subclass extents are contained in parents'.
        for a in 0..n {
            if let Some(p) = h.parents[a] {
                let sub = db.extent(&class_name(a));
                let sup = db.extent(&class_name(p));
                for o in &sub {
                    prop_assert!(sup.contains(o));
                }
            }
        }
        // schema.is_subclass agrees with the model.
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    db.schema().is_subclass(&class_name(a), &class_name(b)),
                    is_sub(a, b),
                    "is_subclass({}, {})", a, b
                );
            }
        }
    }

    /// CST oid identity is invariant under variable renaming and stable
    /// under insert/lookup round-trips.
    #[test]
    fn cst_attribute_roundtrip(lo in -20..=0i64, hi in 0..=20i64) {
        let mut schema = Schema::new();
        schema
            .add_class(
                ClassDef::new("Holder")
                    .attr(AttrDef::scalar("region", AttrTarget::cst(["a", "b"]))),
            )
            .expect("fresh");
        let mut db = Database::new(schema).expect("validates");
        let mk = |vx: &str, vy: &str| {
            CstObject::from_conjunction(
                vec![Var::new(vx), Var::new(vy)],
                Conjunction::of([
                    Atom::ge(LinExpr::var(Var::new(vx)), LinExpr::from(lo)),
                    Atom::le(LinExpr::var(Var::new(vx)), LinExpr::from(hi)),
                    Atom::ge(LinExpr::var(Var::new(vy)), LinExpr::from(lo)),
                    Atom::le(LinExpr::var(Var::new(vy)), LinExpr::from(hi)),
                ]),
            )
        };
        db.insert(
            Oid::named("h"),
            "Holder",
            [("region", Value::Scalar(Oid::cst(mk("a", "b"))))],
        )
        .expect("insert");
        let stored = db.attr(&Oid::named("h"), "region").expect("stored");
        // The same region under different names is the same oid.
        let renamed = Oid::cst(mk("x", "y"));
        prop_assert_eq!(stored.as_scalar().expect("scalar"), &renamed);
    }
}
