//! Database schema: classes, IS-A, attributes, CST interfaces.

use crate::error::DbError;
use lyric_constraint::Var;
use std::collections::{BTreeMap, BTreeSet};

/// Names of the built-in literal classes. Literal oids are implicit
/// instances of these; any object is an instance of `object`.
pub const BUILTIN_CLASSES: &[&str] = &["int", "real", "string", "bool", "object"];

/// What an attribute ranges over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrTarget {
    /// A class of objects. `actuals`, when present, positionally renames
    /// the target class's interface variables into the owner's variable
    /// space — the paper's `drawer : (p,q)` against `Drawer(x,y)`.
    Class {
        class: String,
        actuals: Option<Vec<Var>>,
    },
    /// A constraint object with the given variable schema: `CST(w,z)`.
    Cst { vars: Vec<Var> },
}

impl AttrTarget {
    /// Attribute over a plain class.
    pub fn class(name: impl Into<String>) -> AttrTarget {
        AttrTarget::Class {
            class: name.into(),
            actuals: None,
        }
    }

    /// Attribute over a class with interface renaming.
    pub fn class_renamed(name: impl Into<String>, actuals: Vec<Var>) -> AttrTarget {
        AttrTarget::Class {
            class: name.into(),
            actuals: Some(actuals),
        }
    }

    /// CST attribute with a declared variable list.
    pub fn cst(vars: impl IntoIterator<Item = impl Into<Var>>) -> AttrTarget {
        AttrTarget::Cst {
            vars: vars.into_iter().map(Into::into).collect(),
        }
    }
}

/// An attribute declaration. Set-valued attributes correspond to the
/// paper's `)) ` signatures / asterisked names (`drawer_center*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    pub name: String,
    pub is_set: bool,
    pub target: AttrTarget,
}

impl AttrDef {
    /// A scalar attribute.
    pub fn scalar(name: impl Into<String>, target: AttrTarget) -> AttrDef {
        AttrDef {
            name: name.into(),
            is_set: false,
            target,
        }
    }

    /// A set-valued attribute.
    pub fn set(name: impl Into<String>, target: AttrTarget) -> AttrDef {
        AttrDef {
            name: name.into(),
            is_set: true,
            target,
        }
    }
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    pub name: String,
    /// The class interface `C(x₁,…,xₙ)`: variables of this class's CST
    /// attributes that referencing classes may constrain (§3.2).
    pub interface: Vec<Var>,
    /// Direct superclasses (IS-A).
    pub parents: Vec<String>,
    /// Own (non-inherited) attributes by name.
    pub attributes: BTreeMap<String, AttrDef>,
    /// When `Some(n)`, this class is a subclass of the built-in `CST(n)`
    /// superclass: its instances are n-dimensional constraint objects.
    pub cst_dim: Option<usize>,
}

impl ClassDef {
    /// A class with no interface, parents or attributes.
    pub fn new(name: impl Into<String>) -> ClassDef {
        ClassDef {
            name: name.into(),
            interface: Vec::new(),
            parents: Vec::new(),
            attributes: BTreeMap::new(),
            cst_dim: None,
        }
    }

    /// Builder: set the interface variable list.
    pub fn interface(mut self, vars: impl IntoIterator<Item = impl Into<Var>>) -> ClassDef {
        self.interface = vars.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: add a superclass.
    pub fn is_a(mut self, parent: impl Into<String>) -> ClassDef {
        self.parents.push(parent.into());
        self
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, def: AttrDef) -> ClassDef {
        self.attributes.insert(def.name.clone(), def);
        self
    }

    /// Builder: make this a CST class of the given dimension (a subclass of
    /// the abstract `CST(n)` — the paper's Region example).
    pub fn cst_class(mut self, dim: usize) -> ClassDef {
        self.cst_dim = Some(dim);
        self
    }
}

/// A validated collection of class definitions.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: BTreeMap<String, ClassDef>,
}

impl Schema {
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Add a class (validation is deferred to [`Schema::validate`], so
    /// classes may reference classes defined later).
    pub fn add_class(&mut self, def: ClassDef) -> Result<(), DbError> {
        if self.classes.contains_key(&def.name) || BUILTIN_CLASSES.contains(&def.name.as_str()) {
            return Err(DbError::DuplicateClass(def.name));
        }
        self.classes.insert(def.name.clone(), def);
        Ok(())
    }

    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Does the class exist (including built-ins)?
    pub fn has_class(&self, name: &str) -> bool {
        self.classes.contains_key(name) || BUILTIN_CLASSES.contains(&name)
    }

    /// All user-defined class names.
    pub fn class_names(&self) -> impl Iterator<Item = &str> {
        self.classes.keys().map(String::as_str)
    }

    /// Is `sub` a (possibly transitive, possibly reflexive) subclass of
    /// `sup`? Every class is a subclass of `object`.
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "object" {
            return true;
        }
        let mut stack = vec![sub];
        let mut seen = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            if c == sup {
                return true;
            }
            if let Some(def) = self.classes.get(c) {
                stack.extend(def.parents.iter().map(String::as_str));
            }
        }
        false
    }

    /// Direct and transitive subclasses of `name`, including itself.
    pub fn subclasses_of<'a>(&'a self, name: &'a str) -> Vec<&'a str> {
        let mut out = vec![name];
        // Fixed-point over the (small) class graph.
        loop {
            let before = out.len();
            for (c, def) in &self.classes {
                if out.contains(&c.as_str()) {
                    continue;
                }
                if def.parents.iter().any(|p| out.contains(&p.as_str())) {
                    out.push(c);
                }
            }
            if out.len() == before {
                return out;
            }
        }
    }

    /// The attribute `attr` as visible from `class`: the class's own
    /// declaration if any, otherwise the nearest inherited one
    /// (depth-first over parents, declaration order).
    pub fn attribute<'a>(&'a self, class: &str, attr: &str) -> Option<&'a AttrDef> {
        self.attribute_with_declarer(class, attr).map(|(_, a)| a)
    }

    /// Like [`Schema::attribute`], but also reports which class in the
    /// IS-A chain actually declares the attribute.
    pub fn attribute_with_declarer<'a>(
        &'a self,
        class: &str,
        attr: &str,
    ) -> Option<(&'a str, &'a AttrDef)> {
        let def = self.classes.get(class)?;
        if let Some(a) = def.attributes.get(attr) {
            return Some((def.name.as_str(), a));
        }
        for p in &def.parents {
            if let Some(hit) = self.attribute_with_declarer(p, attr) {
                return Some(hit);
            }
        }
        None
    }

    /// The IS-A chain searched during attribute lookup, starting at
    /// `class` and walking parents depth-first in declaration order
    /// (each class listed once).
    pub fn ancestors(&self, class: &str) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        fn walk<'a>(schema: &'a Schema, class: &str, out: &mut Vec<&'a str>) {
            if out.contains(&class) {
                return;
            }
            let Some(def) = schema.classes.get(class) else {
                return;
            };
            out.push(def.name.as_str());
            for p in &def.parents {
                walk(schema, p, out);
            }
        }
        walk(self, class, &mut out);
        out
    }

    /// All attributes visible from `class` (own shadowing inherited).
    pub fn attributes_of(&self, class: &str) -> BTreeMap<String, &AttrDef> {
        let mut out = BTreeMap::new();
        fn walk<'a>(schema: &'a Schema, class: &str, out: &mut BTreeMap<String, &'a AttrDef>) {
            if let Some(def) = schema.classes.get(class) {
                for p in &def.parents {
                    walk(schema, p, out);
                }
                for (name, a) in &def.attributes {
                    out.insert(name.clone(), a); // own shadows inherited
                }
            }
        }
        walk(self, class, &mut out);
        out
    }

    /// Full validation: parents exist, IS-A acyclic, attribute targets
    /// exist, interface renamings arity-match the target class interface.
    pub fn validate(&self) -> Result<(), DbError> {
        // Acyclicity by DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: BTreeMap<&str, Color> = self
            .classes
            .keys()
            .map(|k| (k.as_str(), Color::White))
            .collect();
        fn dfs<'a>(
            schema: &'a Schema,
            node: &'a str,
            color: &mut BTreeMap<&'a str, Color>,
        ) -> Result<(), DbError> {
            match color.get(node) {
                Some(Color::Black) | None => return Ok(()),
                Some(Color::Grey) => return Err(DbError::CyclicIsA(node.to_string())),
                Some(Color::White) => {}
            }
            color.insert(node, Color::Grey);
            let def = schema.classes.get(node).expect("colored node exists");
            for p in &def.parents {
                if !schema.has_class(p) {
                    return Err(DbError::UnknownClass(p.clone()));
                }
                if schema.classes.contains_key(p) {
                    dfs(schema, p, color)?;
                }
            }
            color.insert(node, Color::Black);
            Ok(())
        }
        let names: Vec<&str> = self.classes.keys().map(String::as_str).collect();
        for name in names {
            dfs(self, name, &mut color)?;
        }
        // Attribute targets and renaming arities.
        for def in self.classes.values() {
            for attr in def.attributes.values() {
                if let AttrTarget::Class { class, actuals } = &attr.target {
                    if !self.has_class(class) {
                        return Err(DbError::UnknownClass(class.clone()));
                    }
                    if let Some(actuals) = actuals {
                        let target_iface_len = self
                            .classes
                            .get(class)
                            .map(|c| c.interface.len())
                            .unwrap_or(0);
                        if actuals.len() != target_iface_len {
                            return Err(DbError::InterfaceArityMismatch {
                                class: def.name.clone(),
                                attr: attr.name.clone(),
                                expected: target_iface_len,
                                got: actuals.len(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn office_schema() -> Schema {
        let mut s = Schema::new();
        s.add_class(
            ClassDef::new("Office_Object")
                .interface(["x", "y"])
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar("color", AttrTarget::class("Color")))
                .attr(AttrDef::scalar("extent", AttrTarget::cst(["w", "z"]))),
        )
        .unwrap();
        s.add_class(ClassDef::new("Color")).unwrap();
        s.add_class(
            ClassDef::new("Drawer")
                .interface(["x", "y"])
                .attr(AttrDef::scalar("extent", AttrTarget::cst(["w", "z"]))),
        )
        .unwrap();
        s.add_class(
            ClassDef::new("Desk")
                .is_a("Office_Object")
                .attr(AttrDef::scalar(
                    "drawer_center",
                    AttrTarget::cst(["p", "q"]),
                ))
                .attr(AttrDef::scalar(
                    "drawer",
                    AttrTarget::class_renamed("Drawer", vec!["p".into(), "q".into()]),
                )),
        )
        .unwrap();
        s
    }

    #[test]
    fn builds_and_validates() {
        let s = office_schema();
        assert!(s.validate().is_ok());
        assert!(s.has_class("Desk"));
        assert!(s.has_class("string")); // builtin
        assert!(!s.has_class("Chair"));
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut s = office_schema();
        assert_eq!(
            s.add_class(ClassDef::new("Desk")),
            Err(DbError::DuplicateClass("Desk".into()))
        );
        assert_eq!(
            s.add_class(ClassDef::new("string")),
            Err(DbError::DuplicateClass("string".into()))
        );
    }

    #[test]
    fn subclass_relation() {
        let s = office_schema();
        assert!(s.is_subclass("Desk", "Office_Object"));
        assert!(s.is_subclass("Desk", "Desk"));
        assert!(s.is_subclass("Desk", "object"));
        assert!(!s.is_subclass("Office_Object", "Desk"));
        let subs = s.subclasses_of("Office_Object");
        assert!(subs.contains(&"Desk"));
        assert!(subs.contains(&"Office_Object"));
        assert!(!subs.contains(&"Drawer"));
    }

    #[test]
    fn attribute_inheritance_and_shadowing() {
        let mut s = office_schema();
        // Desk inherits extent from Office_Object.
        let a = s.attribute("Desk", "extent").unwrap();
        assert_eq!(a.target, AttrTarget::cst(["w", "z"]));
        // Shadowing: a subclass redefining `color` wins.
        s.add_class(
            ClassDef::new("Painted_Desk")
                .is_a("Desk")
                .attr(AttrDef::scalar("color", AttrTarget::class("string"))),
        )
        .unwrap();
        let shadowed = s.attribute("Painted_Desk", "color").unwrap();
        assert_eq!(shadowed.target, AttrTarget::class("string"));
        let all = s.attributes_of("Painted_Desk");
        assert!(all.contains_key("extent"));
        assert!(all.contains_key("drawer_center"));
        assert_eq!(all["color"].target, AttrTarget::class("string"));
    }

    #[test]
    fn cycle_detection() {
        let mut s = Schema::new();
        s.add_class(ClassDef::new("A").is_a("B")).unwrap();
        s.add_class(ClassDef::new("B").is_a("A")).unwrap();
        assert!(matches!(s.validate(), Err(DbError::CyclicIsA(_))));
    }

    #[test]
    fn unknown_parent_and_target() {
        let mut s = Schema::new();
        s.add_class(ClassDef::new("A").is_a("Missing")).unwrap();
        assert_eq!(s.validate(), Err(DbError::UnknownClass("Missing".into())));

        let mut s = Schema::new();
        s.add_class(ClassDef::new("A").attr(AttrDef::scalar("b", AttrTarget::class("Missing"))))
            .unwrap();
        assert_eq!(s.validate(), Err(DbError::UnknownClass("Missing".into())));
    }

    #[test]
    fn interface_arity_checked() {
        let mut s = Schema::new();
        s.add_class(ClassDef::new("Part").interface(["x", "y"]))
            .unwrap();
        s.add_class(ClassDef::new("Whole").attr(AttrDef::scalar(
            "part",
            AttrTarget::class_renamed("Part", vec!["p".into()]),
        )))
        .unwrap();
        assert!(matches!(
            s.validate(),
            Err(DbError::InterfaceArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn cst_class_marker() {
        let mut s = Schema::new();
        s.add_class(ClassDef::new("Region").cst_class(2)).unwrap();
        assert_eq!(s.class("Region").unwrap().cst_dim, Some(2));
        assert!(s.validate().is_ok());
    }
}
