//! Attribute values.

use crate::oid::Oid;
use std::collections::BTreeSet;
use std::fmt;

/// The value of an attribute on an object: a single oid for scalar
/// attributes, a set of oids for set-valued ones (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Scalar(Oid),
    Set(BTreeSet<Oid>),
}

impl Value {
    /// Build a set value from any iterator of oids.
    pub fn set(oids: impl IntoIterator<Item = Oid>) -> Value {
        Value::Set(oids.into_iter().collect())
    }

    pub fn is_set(&self) -> bool {
        matches!(self, Value::Set(_))
    }

    /// Iterate the oid(s): one for scalars, all members for sets. This is
    /// the iteration path expressions use — a scalar attribute continues a
    /// path to its value, a set-valued one to each member.
    pub fn iter(&self) -> Box<dyn Iterator<Item = &Oid> + '_> {
        match self {
            Value::Scalar(o) => Box::new(std::iter::once(o)),
            Value::Set(s) => Box::new(s.iter()),
        }
    }

    /// The scalar oid, if this is a scalar value.
    pub fn as_scalar(&self) -> Option<&Oid> {
        match self {
            Value::Scalar(o) => Some(o),
            Value::Set(_) => None,
        }
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Value {
        Value::Scalar(o)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(o) => write!(f, "{o}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, o) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_over_scalar_and_set() {
        let s = Value::Scalar(Oid::Int(1));
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.as_scalar(), Some(&Oid::Int(1)));
        let set = Value::set([Oid::Int(1), Oid::Int(2), Oid::Int(1)]);
        assert_eq!(set.iter().count(), 2); // deduped
        assert!(set.as_scalar().is_none());
        assert!(set.is_set());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Scalar(Oid::str("red")).to_string(), "'red'");
        assert_eq!(Value::set([Oid::Int(2), Oid::Int(1)]).to_string(), "{1, 2}");
    }
}
