//! The typed instance store.

use crate::error::DbError;
use crate::oid::Oid;
use crate::schema::{AttrTarget, ClassDef, Schema, BUILTIN_CLASSES};
use crate::value::Value;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};

/// Stored state of one object: its (most specific) class and attribute
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectData {
    class: String,
    attrs: BTreeMap<String, Value>,
}

impl ObjectData {
    /// The class the object was inserted into.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The stored value of an attribute, if set.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// Iterate stored (attribute, value) pairs.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// A generation-stamped, type-erased cache slot for a derived index over
/// the database (built and downcast by `lyric-store`). The slot lives on
/// the [`Database`] so index reuse survives across queries against the
/// same value, while any mutation — which bumps
/// [`Database::data_generation`] — makes the cached entry unreachable.
///
/// Cloning a database gives the clone a *fresh, empty* slot: the two
/// values mutate independently afterwards, so sharing a slot would make
/// them invalidate each other's caches.
pub struct IndexSlot {
    slot: RwLock<Option<(u64, Arc<dyn Any + Send + Sync>)>>,
}

impl IndexSlot {
    fn new() -> IndexSlot {
        IndexSlot {
            slot: RwLock::new(None),
        }
    }

    /// The cached value, if one was stored for exactly this generation.
    pub fn get(&self, generation: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        let guard = self.slot.read().ok()?;
        match &*guard {
            Some((gen, value)) if *gen == generation => Some(Arc::clone(value)),
            _ => None,
        }
    }

    /// Store a value for `generation`, replacing any previous entry.
    pub fn set(&self, generation: u64, value: Arc<dyn Any + Send + Sync>) {
        if let Ok(mut guard) = self.slot.write() {
            *guard = Some((generation, value));
        }
    }
}

impl Clone for IndexSlot {
    fn clone(&self) -> IndexSlot {
        IndexSlot::new()
    }
}

impl Default for IndexSlot {
    fn default() -> IndexSlot {
        IndexSlot::new()
    }
}

impl std::fmt::Debug for IndexSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let gen = self
            .slot
            .read()
            .ok()
            .and_then(|g| g.as_ref().map(|(gen, _)| *gen));
        f.debug_struct("IndexSlot")
            .field("generation", &gen)
            .finish()
    }
}

/// An object database: a validated [`Schema`], class extents, and typed
/// per-object attribute values.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Schema,
    objects: BTreeMap<Oid, ObjectData>,
    /// Direct extents: objects inserted *into* each class (subclass
    /// members are found by walking the hierarchy at read time).
    extents: BTreeMap<String, BTreeSet<Oid>>,
    /// Monotonic mutation counter: bumped by every successful write
    /// (insert, declare, attribute update, schema change). Derived
    /// structures — the store index, memo caches — stamp themselves with
    /// the generation they were built against and rebuild on mismatch.
    data_generation: u64,
    /// The novelty log: oids touched by writes, tagged with the
    /// generation of the write. Index probes merge
    /// [`Database::oids_touched_since`] the index build generation into
    /// their candidate sets, so an index built at an older generation
    /// stays *sound* (never prunes a freshly written object) even before
    /// it is rebuilt.
    touched: Vec<(u64, Oid)>,
    /// Cache slot for the store index (see [`IndexSlot`]).
    index_slot: IndexSlot,
}

impl Database {
    /// Validate the schema and create an empty database.
    pub fn new(schema: Schema) -> Result<Database, DbError> {
        schema.validate()?;
        Ok(Database {
            schema,
            objects: BTreeMap::new(),
            extents: BTreeMap::new(),
            data_generation: 0,
            touched: Vec::new(),
            index_slot: IndexSlot::new(),
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The current mutation generation: 0 for a fresh database, bumped by
    /// every successful write.
    pub fn data_generation(&self) -> u64 {
        self.data_generation
    }

    /// The sorted, duplicate-free run of oids touched by writes *after*
    /// `generation` — the novelty overlay an index built at `generation`
    /// must merge into every probe result to stay sound.
    pub fn oids_touched_since(&self, generation: u64) -> Vec<Oid> {
        let mut out: Vec<Oid> = self
            .touched
            .iter()
            .filter(|(gen, _)| *gen > generation)
            .map(|(_, oid)| oid.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The generation-stamped cache slot for the store index.
    pub fn index_slot(&self) -> &IndexSlot {
        &self.index_slot
    }

    /// Record a successful write: bump the generation and log the touched
    /// oid (schema-only changes pass `None`; they still invalidate).
    fn touch(&mut self, oid: Option<Oid>) {
        self.data_generation += 1;
        if let Some(oid) = oid {
            self.touched.push((self.data_generation, oid));
        }
    }

    /// Insert an object with attribute values. Typechecks cardinality, CST
    /// dimensions and literal classes eagerly; references to not-yet-
    /// inserted objects are deferred to [`Database::validate_references`].
    pub fn insert(
        &mut self,
        oid: Oid,
        class: &str,
        attrs: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) -> Result<(), DbError> {
        let class_def = self
            .schema
            .class(class)
            .ok_or_else(|| DbError::UnknownClass(class.to_string()))?
            .clone();
        if self.objects.contains_key(&oid) {
            return Err(DbError::DuplicateObject(oid.to_string()));
        }
        // CST classes: instances must be constraint oids of the declared
        // dimension (§3.2: CST objects are organized into classes by
        // dimension).
        if let Some(dim) = class_def.cst_dim {
            match oid.as_cst() {
                Some(c) if c.arity() == dim => {}
                Some(c) => {
                    return Err(DbError::CstClassInstance {
                        class: class.to_string(),
                        detail: format!("expected dimension {dim}, got {}", c.arity()),
                    })
                }
                None => {
                    return Err(DbError::CstClassInstance {
                        class: class.to_string(),
                        detail: "instance is not a constraint object".into(),
                    })
                }
            }
        }
        let visible = self.schema.attributes_of(class);
        let mut stored = BTreeMap::new();
        for (name, value) in attrs {
            let name = name.into();
            let decl = visible
                .get(&name)
                .ok_or_else(|| DbError::UnknownAttribute {
                    class: class.to_string(),
                    attr: name.clone(),
                })?;
            if decl.is_set != value.is_set() {
                return Err(DbError::Cardinality {
                    class: class.to_string(),
                    attr: name.clone(),
                    expected_set: decl.is_set,
                });
            }
            for member in value.iter() {
                self.check_target(class, &name, &decl.target, member)?;
            }
            stored.insert(name, value);
        }
        self.objects.insert(
            oid.clone(),
            ObjectData {
                class: class.to_string(),
                attrs: stored,
            },
        );
        self.extents
            .entry(class.to_string())
            .or_default()
            .insert(oid.clone());
        self.touch(Some(oid));
        Ok(())
    }

    /// Record class membership for an oid without attribute data — used
    /// for literal instances (`'red'` in `Color`) and for view
    /// materialization.
    pub fn declare_instance(&mut self, class: &str, oid: Oid) -> Result<(), DbError> {
        let def = self
            .schema
            .class(class)
            .ok_or_else(|| DbError::UnknownClass(class.to_string()))?;
        if let Some(dim) = def.cst_dim {
            match oid.as_cst() {
                Some(c) if c.arity() == dim => {}
                _ => {
                    return Err(DbError::CstClassInstance {
                        class: class.to_string(),
                        detail: format!("expected a constraint object of dimension {dim}"),
                    })
                }
            }
        }
        self.extents
            .entry(class.to_string())
            .or_default()
            .insert(oid.clone());
        self.touch(Some(oid));
        Ok(())
    }

    fn check_target(
        &self,
        class: &str,
        attr: &str,
        target: &AttrTarget,
        oid: &Oid,
    ) -> Result<(), DbError> {
        match target {
            AttrTarget::Cst { vars } => match oid.as_cst() {
                Some(c) if c.arity() == vars.len() => Ok(()),
                Some(c) => Err(DbError::CstMismatch {
                    class: class.to_string(),
                    attr: attr.to_string(),
                    detail: format!(
                        "declared {} variables, value has dimension {}",
                        vars.len(),
                        c.arity()
                    ),
                }),
                None => Err(DbError::CstMismatch {
                    class: class.to_string(),
                    attr: attr.to_string(),
                    detail: format!("value {oid} is not a constraint object"),
                }),
            },
            AttrTarget::Class {
                class: target_class,
                ..
            } => {
                // Literals are checked against built-in classes eagerly;
                // object references may be forward references and are
                // checked by validate_references().
                match oid {
                    Oid::Int(_) | Oid::Rat(_) | Oid::Str(_) | Oid::Bool(_) => {
                        if literal_instance_of(oid, target_class)
                            || self.declared_instance(oid, target_class)
                        {
                            Ok(())
                        } else {
                            Err(DbError::NotAnInstance {
                                oid: oid.to_string(),
                                class: target_class.clone(),
                            })
                        }
                    }
                    _ => Ok(()),
                }
            }
        }
    }

    /// Check that every object-valued attribute refers to a known instance
    /// of the declared class. Run after bulk loading.
    pub fn validate_references(&self) -> Result<(), DbError> {
        for data in self.objects.values() {
            let visible = self.schema.attributes_of(&data.class);
            for (name, value) in &data.attrs {
                let Some(decl) = visible.get(name) else {
                    continue;
                };
                if let AttrTarget::Class { class: target, .. } = &decl.target {
                    for member in value.iter() {
                        if matches!(member, Oid::Named(_) | Oid::Func(..) | Oid::Cst(_))
                            && !self.is_instance(member, target)
                        {
                            return Err(DbError::NotAnInstance {
                                oid: member.to_string(),
                                class: target.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The stored data of an object, if any.
    pub fn object(&self, oid: &Oid) -> Option<&ObjectData> {
        self.objects.get(oid)
    }

    /// The value of `attr` on `oid`, if stored.
    pub fn attr(&self, oid: &Oid, attr: &str) -> Option<&Value> {
        self.objects.get(oid)?.attrs.get(attr)
    }

    /// Update (or set) an attribute value. The paper is explicit that CST
    /// attributes update like any other ("there is no reason that moving a
    /// desk would be limited in any way", §6).
    pub fn set_attr(&mut self, oid: &Oid, attr: &str, value: Value) -> Result<(), DbError> {
        let class = self
            .objects
            .get(oid)
            .ok_or_else(|| DbError::UnknownObject(oid.to_string()))?
            .class
            .clone();
        let visible = self.schema.attributes_of(&class);
        let decl = visible.get(attr).ok_or_else(|| DbError::UnknownAttribute {
            class: class.clone(),
            attr: attr.to_string(),
        })?;
        if decl.is_set != value.is_set() {
            return Err(DbError::Cardinality {
                class,
                attr: attr.to_string(),
                expected_set: decl.is_set,
            });
        }
        let target = decl.target.clone();
        for member in value.iter() {
            self.check_target(&class, attr, &target, member)?;
        }
        self.objects
            .get_mut(oid)
            .expect("checked above")
            .attrs
            .insert(attr.to_string(), value);
        self.touch(Some(oid.clone()));
        Ok(())
    }

    /// Direct membership in a class (no hierarchy walk).
    fn declared_instance(&self, oid: &Oid, class: &str) -> bool {
        self.extents.get(class).is_some_and(|e| e.contains(oid))
    }

    /// Is `oid` an instance of `class` (hierarchy- and literal-aware)?
    pub fn is_instance(&self, oid: &Oid, class: &str) -> bool {
        if class == "object" {
            return true;
        }
        if literal_instance_of(oid, class) {
            return true;
        }
        self.schema
            .subclasses_of(class)
            .iter()
            .any(|c| self.declared_instance(oid, c))
    }

    /// All instances of `class`, including subclass members, in oid order.
    /// Built-in literal classes have unenumerable extents and return empty.
    pub fn extent(&self, class: &str) -> Vec<Oid> {
        let mut out = BTreeSet::new();
        for c in self.schema.subclasses_of(class) {
            if let Some(e) = self.extents.get(c) {
                out.extend(e.iter().cloned());
            }
        }
        out.into_iter().collect()
    }

    /// Direct members of a class: oids inserted or declared into exactly
    /// this class (no hierarchy walk). Used by persistence.
    pub fn direct_members(&self, class: &str) -> Vec<Oid> {
        self.extents
            .get(class)
            .map(|e| e.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Total number of stored objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Iterate all stored objects.
    pub fn objects(&self) -> impl Iterator<Item = (&Oid, &ObjectData)> {
        self.objects.iter()
    }

    /// Add a class to the schema of a live database (used by view
    /// materialization, which may need attribute declarations from a
    /// query's SIGNATURE clause). Re-validates the schema.
    pub fn add_class(&mut self, def: ClassDef) -> Result<(), DbError> {
        self.schema.add_class(def)?;
        self.schema.validate()?;
        self.touch(None);
        Ok(())
    }

    /// Create a view class (used by `CREATE VIEW name AS SUBCLASS OF
    /// parent`), then populate it with `members` via
    /// [`declare_instance`](Self::declare_instance). The class is added to
    /// the schema with the given parent.
    pub fn create_view_class(
        &mut self,
        name: &str,
        parent: Option<&str>,
        members: impl IntoIterator<Item = Oid>,
    ) -> Result<(), DbError> {
        if let Some(p) = parent {
            if !self.schema.has_class(p) {
                return Err(DbError::UnknownClass(p.to_string()));
            }
        }
        let mut def = ClassDef::new(name);
        if let Some(p) = parent {
            def = def.is_a(p);
        }
        // Views over CST classes keep the dimension marker so instance
        // checks stay meaningful.
        if let Some(p) = parent {
            if let Some(pd) = self.schema.class(p) {
                def.cst_dim = pd.cst_dim;
            }
        }
        self.schema.add_class(def)?;
        self.touch(None);
        for m in members {
            self.declare_instance(name, m)?;
        }
        Ok(())
    }
}

/// Literal-class membership: `Int ⊆ int ⊆ real`, `Rat ⊆ real`,
/// `Str ⊆ string`, `Bool ⊆ bool`.
fn literal_instance_of(oid: &Oid, class: &str) -> bool {
    debug_assert!(BUILTIN_CLASSES.contains(&"int"));
    matches!(
        (oid, class),
        (_, "object")
            | (Oid::Int(_), "int" | "real")
            | (Oid::Rat(_), "real")
            | (Oid::Str(_), "string")
            | (Oid::Bool(_), "bool")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;
    use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};

    fn interval(var: &str, lo: i64, hi: i64) -> CstObject {
        CstObject::from_conjunction(
            vec![Var::new(var)],
            Conjunction::of([
                Atom::ge(LinExpr::var(Var::new(var)), LinExpr::from(lo)),
                Atom::le(LinExpr::var(Var::new(var)), LinExpr::from(hi)),
            ]),
        )
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_class(ClassDef::new("Color")).unwrap();
        s.add_class(
            ClassDef::new("Furniture")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar("color", AttrTarget::class("Color")))
                .attr(AttrDef::scalar("span", AttrTarget::cst(["w"])))
                .attr(AttrDef::set("tags", AttrTarget::class("string"))),
        )
        .unwrap();
        s.add_class(ClassDef::new("Desk").is_a("Furniture"))
            .unwrap();
        s.add_class(ClassDef::new("Region").cst_class(1)).unwrap();
        s
    }

    fn db() -> Database {
        let mut db = Database::new(schema()).unwrap();
        db.declare_instance("Color", Oid::str("red")).unwrap();
        db
    }

    #[test]
    fn insert_and_read_back() {
        let mut db = db();
        db.insert(
            Oid::named("d1"),
            "Desk",
            [
                ("name", Value::Scalar(Oid::str("standard desk"))),
                ("color", Value::Scalar(Oid::str("red"))),
                ("span", Value::Scalar(Oid::cst(interval("w", -4, 4)))),
                ("tags", Value::set([Oid::str("a"), Oid::str("b")])),
            ],
        )
        .unwrap();
        let data = db.object(&Oid::named("d1")).unwrap();
        assert_eq!(data.class(), "Desk");
        assert_eq!(
            db.attr(&Oid::named("d1"), "name"),
            Some(&Value::Scalar(Oid::str("standard desk")))
        );
        assert!(db.validate_references().is_ok());
    }

    #[test]
    fn extent_includes_subclasses() {
        let mut db = db();
        db.insert(Oid::named("f1"), "Furniture", [] as [(&str, Value); 0])
            .unwrap();
        db.insert(Oid::named("d1"), "Desk", [] as [(&str, Value); 0])
            .unwrap();
        assert_eq!(db.extent("Furniture").len(), 2);
        assert_eq!(db.extent("Desk"), vec![Oid::named("d1")]);
        assert!(db.is_instance(&Oid::named("d1"), "Furniture"));
        assert!(db.is_instance(&Oid::named("d1"), "object"));
        assert!(!db.is_instance(&Oid::named("f1"), "Desk"));
    }

    #[test]
    fn typechecking_rejects_bad_inserts() {
        let mut db = db();
        // Unknown class.
        assert!(matches!(
            db.insert(Oid::named("x"), "Chair", [] as [(&str, Value); 0]),
            Err(DbError::UnknownClass(_))
        ));
        // Unknown attribute.
        assert!(matches!(
            db.insert(
                Oid::named("x"),
                "Desk",
                [("wheels", Value::Scalar(Oid::Int(4)))]
            ),
            Err(DbError::UnknownAttribute { .. })
        ));
        // Cardinality.
        assert!(matches!(
            db.insert(
                Oid::named("x"),
                "Desk",
                [("tags", Value::Scalar(Oid::str("a")))]
            ),
            Err(DbError::Cardinality { .. })
        ));
        // CST dimension mismatch (2-d value into 1-d attribute).
        let two_d = CstObject::top(vec![Var::new("a"), Var::new("b")]);
        assert!(matches!(
            db.insert(
                Oid::named("x"),
                "Desk",
                [("span", Value::Scalar(Oid::cst(two_d)))]
            ),
            Err(DbError::CstMismatch { .. })
        ));
        // Non-CST value into CST attribute.
        assert!(matches!(
            db.insert(
                Oid::named("x"),
                "Desk",
                [("span", Value::Scalar(Oid::Int(3)))]
            ),
            Err(DbError::CstMismatch { .. })
        ));
        // Wrong literal class.
        assert!(matches!(
            db.insert(
                Oid::named("x"),
                "Desk",
                [("name", Value::Scalar(Oid::Int(3)))]
            ),
            Err(DbError::NotAnInstance { .. })
        ));
        // Literal not declared in user class.
        assert!(matches!(
            db.insert(
                Oid::named("x"),
                "Desk",
                [("color", Value::Scalar(Oid::str("teal")))]
            ),
            Err(DbError::NotAnInstance { .. })
        ));
    }

    #[test]
    fn duplicate_oid_rejected() {
        let mut db = db();
        db.insert(Oid::named("d1"), "Desk", [] as [(&str, Value); 0])
            .unwrap();
        assert!(matches!(
            db.insert(Oid::named("d1"), "Desk", [] as [(&str, Value); 0]),
            Err(DbError::DuplicateObject(_))
        ));
    }

    #[test]
    fn forward_references_validated_lazily() {
        let mut s = Schema::new();
        s.add_class(ClassDef::new("A").attr(AttrDef::scalar("next", AttrTarget::class("A"))))
            .unwrap();
        let mut db = Database::new(s).unwrap();
        // a1 references a2 before a2 exists: insert succeeds...
        db.insert(
            Oid::named("a1"),
            "A",
            [("next", Value::Scalar(Oid::named("a2")))],
        )
        .unwrap();
        // ...but reference validation catches the dangling link...
        assert!(matches!(
            db.validate_references(),
            Err(DbError::NotAnInstance { .. })
        ));
        // ...until the target arrives.
        db.insert(Oid::named("a2"), "A", [] as [(&str, Value); 0])
            .unwrap();
        assert!(db.validate_references().is_ok());
    }

    #[test]
    fn cst_class_instances() {
        let mut db = db();
        let r1 = Oid::cst(interval("x", 0, 10));
        db.declare_instance("Region", r1.clone()).unwrap();
        assert!(db.is_instance(&r1, "Region"));
        assert_eq!(db.extent("Region"), vec![r1]);
        // Wrong dimension rejected.
        let r2 = Oid::cst(CstObject::top(vec![Var::new("a"), Var::new("b")]));
        assert!(matches!(
            db.declare_instance("Region", r2),
            Err(DbError::CstClassInstance { .. })
        ));
        // Non-CST rejected.
        assert!(matches!(
            db.declare_instance("Region", Oid::Int(3)),
            Err(DbError::CstClassInstance { .. })
        ));
    }

    #[test]
    fn cst_objects_can_carry_attributes() {
        // §3: constraints are first-class objects that "can have attributes
        // ... (e.g. names of regions in a GIS)".
        let mut s = schema();
        s = {
            let mut s2 = Schema::new();
            for name in s.class_names().map(str::to_string).collect::<Vec<_>>() {
                s2.add_class(s.class(&name).unwrap().clone()).unwrap();
            }
            s2
        };
        let mut s3 = Schema::new();
        for name in s.class_names().map(str::to_string).collect::<Vec<_>>() {
            if name == "Region" {
                s3.add_class(
                    ClassDef::new("Region")
                        .cst_class(1)
                        .attr(AttrDef::scalar("name", AttrTarget::class("string"))),
                )
                .unwrap();
            } else {
                s3.add_class(s.class(&name).unwrap().clone()).unwrap();
            }
        }
        let mut db = Database::new(s3).unwrap();
        let r = Oid::cst(interval("x", 0, 5));
        db.insert(
            r.clone(),
            "Region",
            [("name", Value::Scalar(Oid::str("lobby")))],
        )
        .unwrap();
        assert_eq!(db.attr(&r, "name"), Some(&Value::Scalar(Oid::str("lobby"))));
    }

    #[test]
    fn set_attr_updates() {
        let mut db = db();
        db.insert(
            Oid::named("d1"),
            "Desk",
            [("span", Value::Scalar(Oid::cst(interval("w", -4, 4))))],
        )
        .unwrap();
        // Moving the desk: completely general CST update (§6).
        db.set_attr(
            &Oid::named("d1"),
            "span",
            Value::Scalar(Oid::cst(interval("w", 0, 8))),
        )
        .unwrap();
        let v = db.attr(&Oid::named("d1"), "span").unwrap();
        let cst = v.as_scalar().unwrap().as_cst().unwrap();
        assert!(cst.contains_point(&[lyric_arith::Rational::from_int(8)]));
        // Bad update rejected.
        assert!(db
            .set_attr(&Oid::named("d1"), "span", Value::Scalar(Oid::Int(1)))
            .is_err());
        assert!(db
            .set_attr(&Oid::named("missing"), "span", Value::Scalar(Oid::Int(1)))
            .is_err());
    }

    #[test]
    fn view_classes() {
        let mut db = db();
        db.insert(Oid::named("d1"), "Desk", [] as [(&str, Value); 0])
            .unwrap();
        db.insert(Oid::named("d2"), "Desk", [] as [(&str, Value); 0])
            .unwrap();
        db.create_view_class("Red_Desk", Some("Desk"), [Oid::named("d1")])
            .unwrap();
        assert!(db.is_instance(&Oid::named("d1"), "Red_Desk"));
        assert!(!db.is_instance(&Oid::named("d2"), "Red_Desk"));
        // The view is part of the Desk extent computation as a subclass.
        assert_eq!(db.extent("Desk").len(), 2);
        assert_eq!(db.extent("Red_Desk").len(), 1);
        // Unknown parent rejected.
        assert!(db.create_view_class("V2", Some("Nope"), []).is_err());
    }
}
