//! The object-oriented data model underlying LyriC (§2 and §3.2 of the
//! paper).
//!
//! This crate provides the XSQL-style object-oriented substrate that the
//! LyriC language queries:
//!
//! * [`Oid`] — logical object identities: literals (integers, rationals,
//!   strings, booleans), named objects (`desk123`), id-function terms
//!   (`secretary(dept77)`, used by `OID FUNCTION OF`), and **constraint
//!   objects** ([`CstOid`]), whose identity is their canonical form (§3.1).
//! * [`Schema`] / [`ClassDef`] / [`AttrDef`] — classes with an acyclic IS-A
//!   hierarchy, scalar and set-valued attributes, **CST attributes with
//!   declared variable lists** (`extent : CST(w,z)`), **class interfaces**
//!   (`Drawer(x,y)`) and **interface renaming** (`drawer : (p,q)`), the
//!   §3.2 mechanism from which LyriC derives implicit inter-object
//!   equality constraints.
//! * [`Database`] — a typed instance store with class extents, inheritance
//!   -aware attribute resolution, and view classes (the `CREATE VIEW … AS
//!   SUBCLASS OF` target).

//! # Example
//!
//! ```
//! use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};
//! use lyric_constraint::{CstObject, Conjunction, Atom, LinExpr, Var};
//!
//! let mut schema = Schema::new();
//! schema.add_class(
//!     ClassDef::new("Zone")
//!         .attr(AttrDef::scalar("name", AttrTarget::class("string")))
//!         .attr(AttrDef::scalar("area", AttrTarget::cst(["u", "v"]))),
//! ).unwrap();
//! let mut db = Database::new(schema).unwrap();
//!
//! let area = CstObject::from_conjunction(
//!     vec![Var::new("u"), Var::new("v")],
//!     Conjunction::of([
//!         Atom::ge(LinExpr::var(Var::new("u")), LinExpr::from(0)),
//!         Atom::le(LinExpr::var(Var::new("u")), LinExpr::from(5)),
//!     ]),
//! );
//! db.insert(Oid::named("z1"), "Zone", [
//!     ("name", Value::Scalar(Oid::str("loading dock"))),
//!     ("area", Value::Scalar(Oid::cst(area))),
//! ]).unwrap();
//!
//! assert_eq!(db.extent("Zone").len(), 1);
//! let stored = db.attr(&Oid::named("z1"), "area").unwrap();
//! assert!(stored.as_scalar().unwrap().as_cst().unwrap().contains_point(
//!     &[3.into(), 100.into()]));
//! ```

mod database;
mod error;
mod oid;
mod schema;
mod value;

pub use database::{Database, IndexSlot, ObjectData};
pub use error::DbError;
pub use oid::{CstOid, Oid};
pub use schema::{AttrDef, AttrTarget, ClassDef, Schema};
pub use value::Value;
