//! Logical object identities.

use lyric_arith::Rational;
use lyric_constraint::CstObject;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A constraint-object oid.
///
/// Per §3.1, the logical oid of a CST object *is* its canonical form: two
/// `CstOid`s compare equal iff their canonical forms (paper-cheap
/// canonicalization plus positional variable renaming) coincide. The
/// original, human-named object is retained for display, so query answers
/// print like the paper's `((u,v) | 2 <= u <= 10 ∧ 2 <= v <= 6)`.
///
/// Canonical forms are not unique across semantically equal objects
/// (acknowledged in §3.1); use [`CstObject::denotes_same`] when point-set
/// equality is needed.
#[derive(Clone)]
pub struct CstOid {
    display: Arc<CstObject>,
    canonical: Arc<CstObject>,
}

impl CstOid {
    /// Canonicalize and wrap a constraint object.
    pub fn new(obj: CstObject) -> CstOid {
        let display = obj.canonicalize();
        let canonical = display.canonical_form();
        CstOid {
            display: Arc::new(display),
            canonical: Arc::new(canonical),
        }
    }

    /// The canonicalized object with its original variable names.
    pub fn object(&self) -> &CstObject {
        &self.display
    }

    /// The name-independent canonical form (the identity carrier).
    pub fn canonical(&self) -> &CstObject {
        &self.canonical
    }
}

impl PartialEq for CstOid {
    fn eq(&self, other: &Self) -> bool {
        self.canonical == other.canonical
    }
}
impl Eq for CstOid {}

impl PartialOrd for CstOid {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CstOid {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical.cmp(&other.canonical)
    }
}
impl Hash for CstOid {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical.hash(state)
    }
}

impl fmt::Debug for CstOid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CstOid({})", self.display)
    }
}

impl fmt::Display for CstOid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display)
    }
}

/// A logical object id (§2.1). Oids may carry semantic information: `Int`,
/// `Rat`, `Str` and `Bool` oids denote the corresponding abstract values,
/// `Cst` oids denote point sets, `Named` oids are opaque entities like
/// `desk123`, and `Func` oids are id-function terms such as
/// `pair(desk123, drawer1)` produced by `OID FUNCTION OF`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Oid {
    Int(i64),
    Rat(Rational),
    Str(String),
    Bool(bool),
    Named(String),
    Func(String, Vec<Oid>),
    Cst(CstOid),
}

impl Oid {
    /// A named (symbolic) oid, e.g. `Oid::named("desk123")`.
    pub fn named(s: impl Into<String>) -> Oid {
        Oid::Named(s.into())
    }

    /// A string-literal oid, e.g. `Oid::str("red")`.
    pub fn str(s: impl Into<String>) -> Oid {
        Oid::Str(s.into())
    }

    /// A constraint-object oid (canonicalizing).
    pub fn cst(obj: CstObject) -> Oid {
        Oid::Cst(CstOid::new(obj))
    }

    /// An id-function term.
    pub fn func(name: impl Into<String>, args: Vec<Oid>) -> Oid {
        Oid::Func(name.into(), args)
    }

    /// The constraint object, if this oid is one.
    pub fn as_cst(&self) -> Option<&CstObject> {
        match self {
            Oid::Cst(c) => Some(c.object()),
            _ => None,
        }
    }

    /// The rational value of a numeric oid (`Int` or `Rat`).
    pub fn as_rational(&self) -> Option<Rational> {
        match self {
            Oid::Int(i) => Some(Rational::from_int(*i)),
            Oid::Rat(r) => Some(r.clone()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Oid::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Oid {
    fn from(v: i64) -> Oid {
        Oid::Int(v)
    }
}

impl From<Rational> for Oid {
    fn from(v: Rational) -> Oid {
        Oid::Rat(v)
    }
}

impl From<bool> for Oid {
    fn from(v: bool) -> Oid {
        Oid::Bool(v)
    }
}

impl From<CstObject> for Oid {
    fn from(v: CstObject) -> Oid {
        Oid::cst(v)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Oid::Int(v) => write!(f, "{v}"),
            Oid::Rat(v) => write!(f, "{v}"),
            Oid::Str(v) => write!(f, "'{v}'"),
            Oid::Bool(v) => write!(f, "{v}"),
            Oid::Named(v) => write!(f, "{v}"),
            Oid::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Oid::Cst(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric_constraint::{Atom, Conjunction, LinExpr, Var};

    fn interval(var: &str, lo: i64, hi: i64) -> CstObject {
        CstObject::from_conjunction(
            vec![Var::new(var)],
            Conjunction::of([
                Atom::ge(LinExpr::var(Var::new(var)), LinExpr::from(lo)),
                Atom::le(LinExpr::var(Var::new(var)), LinExpr::from(hi)),
            ]),
        )
    }

    #[test]
    fn literal_oids() {
        assert_eq!(Oid::from(3), Oid::Int(3));
        assert_ne!(Oid::Int(3), Oid::Str("3".into()));
        assert_eq!(Oid::str("red").to_string(), "'red'");
        assert_eq!(Oid::named("desk123").to_string(), "desk123");
        assert_eq!(
            Oid::func("pair", vec![Oid::Int(1), Oid::named("d")]).to_string(),
            "pair(1,d)"
        );
    }

    #[test]
    fn cst_oid_identity_is_name_invariant() {
        // Same constraint over different variable names: same oid (§4.1,
        // "invariant to variable names").
        let a = Oid::cst(interval("x", 0, 1));
        let b = Oid::cst(interval("t", 0, 1));
        assert_eq!(a, b);
        let c = Oid::cst(interval("x", 0, 2));
        assert_ne!(a, c);
    }

    #[test]
    fn cst_oid_identity_is_canonical_form_not_denotation() {
        // x ∈ [0,1] expressed with a redundant atom still canonicalizes to
        // a *different* cheap canonical form (redundancy removal is not
        // part of the paper's default canonicalization)...
        let redundant = CstObject::from_conjunction(
            vec![Var::new("x")],
            Conjunction::of([
                Atom::ge(LinExpr::var(Var::new("x")), LinExpr::from(0)),
                Atom::le(LinExpr::var(Var::new("x")), LinExpr::from(1)),
                Atom::le(LinExpr::var(Var::new("x")), LinExpr::from(5)),
            ]),
        );
        let plain = interval("x", 0, 1);
        let (a, b) = (CstOid::new(redundant.clone()), CstOid::new(plain.clone()));
        assert_ne!(a, b, "cheap canonical forms differ");
        // ...but they denote the same point set.
        assert!(redundant.denotes_same(&plain));
    }

    #[test]
    fn cst_oid_preserves_display_names() {
        let o = CstOid::new(interval("u", 2, 10));
        assert_eq!(o.object().free()[0].name(), "u");
        assert_eq!(o.canonical().free()[0].name(), "$0");
    }

    #[test]
    fn oids_order_totally() {
        let mut v = vec![
            Oid::named("b"),
            Oid::Int(1),
            Oid::cst(interval("x", 0, 1)),
            Oid::str("a"),
        ];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 4);
    }
}
