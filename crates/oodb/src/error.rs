//! Database errors.

use std::fmt;

/// Errors raised by schema validation and typed instance insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    DuplicateClass(String),
    UnknownClass(String),
    CyclicIsA(String),
    InterfaceArityMismatch {
        class: String,
        attr: String,
        expected: usize,
        got: usize,
    },
    UnknownAttribute {
        class: String,
        attr: String,
    },
    DuplicateObject(String),
    UnknownObject(String),
    /// Scalar value supplied for a set-valued attribute or vice versa.
    Cardinality {
        class: String,
        attr: String,
        expected_set: bool,
    },
    /// A CST attribute received a non-CST oid, or one of the wrong
    /// dimension.
    CstMismatch {
        class: String,
        attr: String,
        detail: String,
    },
    /// An attribute over class C received an oid that is not an instance
    /// of C.
    NotAnInstance {
        oid: String,
        class: String,
    },
    /// Instance of a CST class must be a constraint oid of the declared
    /// dimension.
    CstClassInstance {
        class: String,
        detail: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateClass(c) => write!(f, "class {c} already defined"),
            DbError::UnknownClass(c) => write!(f, "unknown class {c}"),
            DbError::CyclicIsA(c) => write!(f, "IS-A cycle through class {c}"),
            DbError::InterfaceArityMismatch {
                class,
                attr,
                expected,
                got,
            } => write!(
                f,
                "attribute {class}.{attr}: interface renaming has {got} variables, \
                 target class interface has {expected}"
            ),
            DbError::UnknownAttribute { class, attr } => {
                write!(f, "class {class} has no attribute {attr}")
            }
            DbError::DuplicateObject(o) => write!(f, "object {o} already exists"),
            DbError::UnknownObject(o) => write!(f, "unknown object {o}"),
            DbError::Cardinality {
                class,
                attr,
                expected_set,
            } => write!(
                f,
                "attribute {class}.{attr} is {}-valued",
                if *expected_set { "set" } else { "scalar" }
            ),
            DbError::CstMismatch {
                class,
                attr,
                detail,
            } => {
                write!(f, "CST attribute {class}.{attr}: {detail}")
            }
            DbError::NotAnInstance { oid, class } => {
                write!(f, "{oid} is not an instance of {class}")
            }
            DbError::CstClassInstance { class, detail } => {
                write!(f, "instance of CST class {class}: {detail}")
            }
        }
    }
}

impl std::error::Error for DbError {}
