//! A dependency-free stand-in for the subset of the `criterion` 0.5 API
//! used by this workspace's `[[bench]]` targets. The build environment has
//! no crates.io access, so external dependencies are replaced by in-tree
//! shims (see `DESIGN.md`).
//!
//! Measurement model: each benchmark closure is warmed up once, then timed
//! over enough iterations to fill a small measurement window; the median of
//! several samples is printed as `ns/iter`. There is no statistical
//! analysis, plotting, or baseline comparison — the point is that
//! `cargo bench` compiles, runs, and emits one stable line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size;
        run_benchmark(&id.into_benchmark_id().0, samples, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_benchmark(&label, self.sample_size, &mut wrapped);
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Units-of-work declaration; accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and iteration-count calibration: aim for ~2ms per sample
        // so fast routines are timed over many iterations.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_count: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<60} (no measurement)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!("{label:<60} {:>12} ns/iter", median.as_nanos());
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
