//! A dependency-free stand-in for the subset of the `proptest` 1.x API used
//! by this workspace. The build environment has no crates.io access, so
//! external dev-dependencies are replaced by in-tree shims (see `DESIGN.md`).
//!
//! Scope and deliberate omissions:
//!
//! * Strategies generate values directly from a seeded RNG; there is **no
//!   shrinking** and no `.proptest-regressions` persistence. A failing case
//!   panics with the generated value via the normal assert message.
//! * `prop_filter` retries its source locally instead of rejecting the whole
//!   test case; `prop_assume` skips the current case (counted as a pass).
//! * `prop_recursive` unrolls the recursion to the requested depth with a
//!   leaf/branch mix at every level, rather than sizing trees by node count.
//!
//! Seeds are derived from the test name, so runs are deterministic.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// How many times a filtered strategy re-samples before giving up and
    /// reporting a rejection to the runner.
    const FILTER_RETRIES: usize = 100;

    /// A generator of random values. `generate` returns `None` when a
    /// filter could not be satisfied; the runner re-samples on `None`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

        fn prop_map<T, F>(self, fun: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, fun }
        }

        fn prop_filter<F>(self, _whence: &'static str, fun: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, fun }
        }

        fn prop_flat_map<S2, F>(self, fun: F) -> Flatten<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            Flatten { source: self, fun }
        }

        /// Unrolled recursion: at each of `depth` levels the result is a
        /// weighted choice between the original leaf and one more layer of
        /// `recurse` applied to the previous level.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf: BoxedStrategy<Self::Value> = self.clone().boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            self.0.generate(rng)
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        fun: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            self.source.generate(rng).map(&self.fun)
        }
    }

    #[derive(Clone)]
    pub struct Filter<S, F> {
        source: S,
        fun: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = self.source.generate(rng) {
                    if (self.fun)(&v) {
                        return Some(v);
                    }
                }
            }
            None
        }
    }

    #[derive(Clone)]
    pub struct Flatten<S, F> {
        source: S,
        fun: F,
    }

    impl<S, S2, F> Strategy for Flatten<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<S2::Value> {
            let seed = self.source.generate(rng)?;
            (self.fun)(seed).generate(rng)
        }
    }

    /// Weighted choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A vector of strategies generates element-wise (used for per-index
    /// strategies, e.g. random forest parents in the oodb tests).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Option<S::Value>> {
            if rng.gen_range(0..4usize) == 0 {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Full-range value generation for `any::<T>()`, with a mild bias
    /// toward boundary values (zero, ±1, MIN, MAX).
    pub trait ArbitraryValue: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(T::arbitrary_value(rng))
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    if rng.gen_range(0..8usize) == 0 {
                        // (0 - 1) wraps to -1 for signed types and to MAX
                        // for unsigned ones — both useful edge values.
                        const EDGES: [$t; 5] =
                            [0, 1, (0 as $t).wrapping_sub(1), <$t>::MIN, <$t>::MAX];
                        EDGES[rng.gen_range(0..EDGES.len())]
                    } else {
                        let lo = rng.next_u64() as u128;
                        let hi = rng.next_u64() as u128;
                        ((hi << 64) | lo) as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` is honoured; the struct is
    /// non-exhaustive-in-spirit to keep call sites source-compatible.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a keeps runs deterministic per test without colliding
        // across sibling tests in one binary.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn run<S, F>(name: &str, config: &ProptestConfig, strategy: S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value),
    {
        let mut rng = StdRng::seed_from_u64(seed_from_name(name));
        let mut done = 0u32;
        let mut rejects = 0u32;
        while done < config.cases {
            match strategy.generate(&mut rng) {
                Some(value) => {
                    body(value);
                    done += 1;
                }
                None => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "test `{name}`: too many strategy rejections \
                         ({rejects}); loosen the filters"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::Strategy;

/// Weighted or unweighted choice over heterogeneous strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The test-block macro: expands each `fn name(arg in strategy, ...)` item
/// into a plain `#[test]` driving [`test_runner::run`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                stringify!($name),
                &config,
                strategy,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Skips the current case when the hypothesis fails (counted as a pass —
/// this shim has no rejection bookkeeping at the case level).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let u = prop_oneof![9 => 0..1i32, 1 => 1..2i32];
        let mut rng = StdRng::seed_from_u64(3);
        let ones = (0..1000)
            .filter(|_| u.generate(&mut rng) == Some(1))
            .count();
        assert!((50..200).contains(&ones), "got {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in -5..=5i64, b in 0..10usize) {
            prop_assert!((-5..=5).contains(&a));
            prop_assert!(b < 10);
        }

        #[test]
        fn filters_hold(v in (0..100i32).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_sizes_hold(v in crate::collection::vec(0..3u8, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn assume_skips(v in 0..10i32) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }
}
