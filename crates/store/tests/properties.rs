//! Property tests for the store: every probe family differential-tested
//! against a naive scan oracle over random databases, the snapshot
//! container round-tripped byte-identically, and the sorted-run
//! combinators checked against set semantics.

use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, Interval, LinExpr, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};
use lyric_store::snapshot::{read_container, write_container};
use lyric_store::{intersect_sorted, merge_with_novelty, StoreIndex};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One randomly generated object: a numeric weight (or none — the
/// missing-attribute case every ordered probe must keep), and a 1-d
/// `span` constraint over `[lo, lo + width]` (or none).
#[derive(Debug, Clone)]
struct Item {
    weight: Option<i64>,
    span: Option<(i64, i64)>,
}

fn item_strategy() -> impl Strategy<Value = Item> {
    (
        proptest::option::of(-50i64..50),
        proptest::option::of((-50i64..50, 0i64..20)),
    )
        .prop_map(|(weight, span)| Item { weight, span })
}

fn items_strategy() -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(item_strategy(), 0..40)
}

fn build_db(items: &[Item]) -> Database {
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Item")
                .attr(AttrDef::scalar("weight", AttrTarget::class("int")))
                .attr(AttrDef::scalar("span", AttrTarget::cst(["s"]))),
        )
        .expect("fresh schema");
    let mut db = Database::new(schema).expect("schema validates");
    for (i, item) in items.iter().enumerate() {
        let mut attrs: Vec<(&str, Value)> = Vec::new();
        if let Some(w) = item.weight {
            attrs.push(("weight", Value::Scalar(Oid::Int(w))));
        }
        if let Some((lo, width)) = item.span {
            let c = CstObject::from_conjunction(
                vec![Var::new("s")],
                Conjunction::of([
                    Atom::ge(LinExpr::var(Var::new("s")), LinExpr::from(lo)),
                    Atom::le(LinExpr::var(Var::new("s")), LinExpr::from(lo + width)),
                ]),
            );
            attrs.push(("span", Value::Scalar(Oid::cst(c))));
        }
        db.insert(Oid::named(format!("item_{i}")), "Item", attrs)
            .expect("item insert");
    }
    db
}

/// A closed numeric window from two draws (normalized so lo <= hi).
fn window(a: i64, b: i64) -> Interval {
    let (lo, hi) = (a.min(b), a.max(b));
    Interval::of_bounds(
        Some((Rational::from_int(lo), false)),
        Some((Rational::from_int(hi), false)),
    )
}

fn oids_of(indices: impl Iterator<Item = usize>) -> Vec<Oid> {
    indices
        .map(|i| Oid::named(format!("item_{i}")))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `probe_eq` is *exact*: precisely the members whose stored weight
    /// equals the key (a scan of `weight = k` keeps exactly those —
    /// missing values compare plain-false, never error).
    #[test]
    fn eq_probe_matches_scan_oracle(items in items_strategy(), k in -50i64..50) {
        let db = build_db(&items);
        let idx = StoreIndex::build(&db);
        let Some(got) = idx.probe_eq("Item", "weight", &Oid::Int(k)) else {
            // An empty extent builds no column: the probe refuses to
            // prune, which is vacuously sound.
            prop_assert!(items.is_empty());
            return;
        };
        let oracle = oids_of((0..items.len()).filter(|&i| items[i].weight == Some(k)));
        prop_assert_eq!(got, oracle);
    }

    /// `probe_range` keeps every member a scan of the ordered comparison
    /// could keep *or error on*: numeric weights inside the window plus
    /// every member whose weight is missing (the scan type-errors there,
    /// so pruning one would change an `Err` answer into `Ok`).
    #[test]
    fn range_probe_matches_scan_oracle(items in items_strategy(), a in -60i64..60, b in -60i64..60) {
        let db = build_db(&items);
        let idx = StoreIndex::build(&db);
        let Some(got) = idx.probe_range("Item", "weight", &window(a, b)) else {
            // An empty extent builds no column: the probe refuses to
            // prune, which is vacuously sound.
            prop_assert!(items.is_empty());
            return;
        };
        let (lo, hi) = (a.min(b), a.max(b));
        let oracle = oids_of((0..items.len()).filter(|&i| match items[i].weight {
            Some(v) => (lo..=hi).contains(&v),
            None => true, // scan errors: must survive the probe
        }));
        prop_assert_eq!(got, oracle);
    }

    /// `probe_box` candidates are exactly the members owning a span that
    /// meets the window — computed naively per object here, so the paged
    /// hull level can only differ by pruning a page it should not
    /// (unsound) or keeping one it could drop (covered elsewhere).
    #[test]
    fn box_probe_matches_scan_oracle(items in items_strategy(), a in -60i64..60, b in -60i64..60) {
        let db = build_db(&items);
        let idx = StoreIndex::build(&db);
        let Some(got) = idx.probe_box("Item", "span", &[window(a, b)]) else {
            // An empty extent builds no column: the probe refuses to
            // prune, which is vacuously sound.
            prop_assert!(items.is_empty());
            return;
        };
        let (lo, hi) = (a.min(b), a.max(b));
        let oracle = oids_of((0..items.len()).filter(|&i| match items[i].span {
            // Closed boxes: [slo, slo + width] meets [lo, hi].
            Some((slo, width)) => slo <= hi && lo <= slo + width,
            None => false, // missing attribute: the path predicate is false
        }));
        prop_assert_eq!(got, oracle);
    }

    /// Container round trip: write → read → write is byte-identical and
    /// the decoded sections equal the originals.
    #[test]
    fn container_round_trip_is_byte_identical(
        raw in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 4), proptest::collection::vec(any::<u8>(), 1..200)),
            0..6,
        )
    ) {
        let sections: Vec<([u8; 4], Vec<u8>)> = raw
            .into_iter()
            .map(|(tag, payload)| (<[u8; 4]>::try_from(tag.as_slice()).unwrap(), payload))
            .collect();
        let bytes = write_container(&sections);
        let decoded = read_container(&bytes).expect("own output decodes");
        prop_assert_eq!(&decoded, &sections);
        prop_assert_eq!(write_container(&decoded), bytes);
    }

    /// Truncating a container anywhere yields a structured error, never a
    /// panic or a successful partial decode.
    #[test]
    fn truncated_containers_never_decode(
        payload in proptest::collection::vec(any::<u8>(), 1..100),
        cut_pct in 0usize..100,
    ) {
        let bytes = write_container(&[(*b"META", payload)]);
        let cut = (bytes.len() - 1) * cut_pct / 100;
        prop_assert!(read_container(&bytes[..cut]).is_err());
    }

    /// `merge_with_novelty` is set union and `intersect_sorted` is set
    /// intersection; both outputs are sorted and duplicate-free.
    #[test]
    fn sorted_run_combinators_have_set_semantics(
        araw in proptest::collection::vec(0i64..100, 0..30),
        braw in proptest::collection::vec(0i64..100, 0..30),
    ) {
        let a: BTreeSet<i64> = araw.into_iter().collect();
        let b: BTreeSet<i64> = braw.into_iter().collect();
        let av: Vec<Oid> = a.iter().map(|&v| Oid::Int(v)).collect();
        let bv: Vec<Oid> = b.iter().map(|&v| Oid::Int(v)).collect();
        let merged = merge_with_novelty(&av, &bv);
        let union: Vec<Oid> = a.union(&b).map(|&v| Oid::Int(v)).collect();
        prop_assert_eq!(&merged, &union);
        prop_assert!(merged.windows(2).all(|w| w[0] < w[1]), "merge sorted, dup-free");
        let inter = intersect_sorted(&av, &bv);
        let expected: Vec<Oid> = a.intersection(&b).map(|&v| Oid::Int(v)).collect();
        prop_assert_eq!(&inter, &expected);
        prop_assert!(inter.windows(2).all(|w| w[0] < w[1]), "intersection sorted, dup-free");
    }
}
