//! The versioned binary snapshot container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------------------+  8 bytes   magic  "LYRICSNP"
//! | magic              |
//! +--------------------+  4 bytes   format version (VERSION)
//! | version            |
//! +--------------------+  4 bytes   number of sections
//! | section count      |
//! +--------------------+
//! | section 0          |  tag[4] | len u64 | payload[len] | fnv64(payload)
//! | section 1          |  ...
//! +--------------------+
//! ```
//!
//! Readers verify, in order: magic, version, per-section header
//! completeness, non-empty payloads, the FNV-1a checksum of every
//! payload, and the absence of trailing bytes. Every failure mode is a
//! distinct [`SnapshotError`] variant so callers can report *what* is
//! corrupt, and no partially-decoded data ever escapes.

use std::fmt;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"LYRICSNP";

/// The current container format version.
pub const VERSION: u32 = 1;

/// A structured snapshot decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before `context` could be read.
    Truncated {
        /// What the reader was trying to decode.
        context: &'static str,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The version field is not [`VERSION`].
    BadVersion {
        /// The version tag found in the file.
        found: u32,
        /// The version this reader understands.
        expected: u32,
    },
    /// A section payload does not match its stored checksum.
    BadChecksum {
        /// The section's 4-byte tag, rendered as ASCII.
        tag: String,
    },
    /// A section declared a zero-length payload.
    EmptySection {
        /// The section's 4-byte tag, rendered as ASCII.
        tag: String,
    },
    /// Bytes remain after the declared sections.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A required section is missing or an unexpected one is present.
    BadLayout {
        /// What the decoder expected to find.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "bad magic (not a LyriC snapshot)"),
            SnapshotError::BadVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {expected})"
                )
            }
            SnapshotError::BadChecksum { tag } => {
                write!(f, "checksum mismatch in section '{tag}'")
            }
            SnapshotError::EmptySection { tag } => {
                write!(f, "zero-length section '{tag}'")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last section")
            }
            SnapshotError::BadLayout { detail } => write!(f, "bad section layout: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// 64-bit FNV-1a over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn tag_string(tag: &[u8; 4]) -> String {
    tag.iter()
        .map(|&b| if b.is_ascii_graphic() { b as char } else { '?' })
        .collect()
}

/// One decoded section: its 4-byte tag and its payload.
pub type Section = ([u8; 4], Vec<u8>);

/// Serialize sections into a container byte stream. Deterministic:
/// identical sections produce identical bytes.
pub fn write_container(sections: &[Section]) -> Vec<u8> {
    let body: usize = sections.iter().map(|(_, p)| 4 + 8 + p.len() + 8).sum();
    let mut out = Vec::with_capacity(8 + 4 + 4 + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in sections {
        out.extend_from_slice(tag);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&fnv64(payload).to_le_bytes());
    }
    out
}

/// Decode and fully verify a container byte stream.
pub fn read_container(bytes: &[u8]) -> Result<Vec<Section>, SnapshotError> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize, context: &'static str| -> Result<usize, SnapshotError> {
        let start = *at;
        let end = start
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or(SnapshotError::Truncated { context })?;
        *at = end;
        Ok(start)
    };

    let magic_at = take(&mut at, 8, "magic")?;
    if bytes[magic_at..magic_at + 8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version_at = take(&mut at, 4, "version")?;
    let found = u32::from_le_bytes(bytes[version_at..version_at + 4].try_into().unwrap());
    if found != VERSION {
        return Err(SnapshotError::BadVersion {
            found,
            expected: VERSION,
        });
    }
    let count_at = take(&mut at, 4, "section count")?;
    let count = u32::from_le_bytes(bytes[count_at..count_at + 4].try_into().unwrap());

    let mut sections = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let tag_at = take(&mut at, 4, "section tag")?;
        let tag: [u8; 4] = bytes[tag_at..tag_at + 4].try_into().unwrap();
        let len_at = take(&mut at, 8, "section length")?;
        let len = u64::from_le_bytes(bytes[len_at..len_at + 8].try_into().unwrap());
        if len == 0 {
            return Err(SnapshotError::EmptySection {
                tag: tag_string(&tag),
            });
        }
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated {
            context: "section payload",
        })?;
        let payload_at = take(&mut at, len, "section payload")?;
        let payload = &bytes[payload_at..payload_at + len];
        let sum_at = take(&mut at, 8, "section checksum")?;
        let stored = u64::from_le_bytes(bytes[sum_at..sum_at + 8].try_into().unwrap());
        if fnv64(payload) != stored {
            return Err(SnapshotError::BadChecksum {
                tag: tag_string(&tag),
            });
        }
        sections.push((tag, payload.to_vec()));
    }
    if at != bytes.len() {
        return Err(SnapshotError::TrailingBytes {
            extra: bytes.len() - at,
        });
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Section> {
        vec![
            (*b"META", b"hello".to_vec()),
            (*b"DBTX", vec![0, 1, 2, 3, 255]),
        ]
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let bytes = write_container(&sample());
        let sections = read_container(&bytes).unwrap();
        assert_eq!(sections, sample());
        assert_eq!(write_container(&sections), bytes);
    }

    #[test]
    fn corruption_modes_are_distinguished() {
        let bytes = write_container(&sample());
        // Truncation, at every possible cut point, never panics.
        for cut in 0..bytes.len() {
            let err = read_container(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. })
                    || matches!(err, SnapshotError::BadChecksum { .. }),
                "cut at {cut}: {err}"
            );
        }
        // Flipped magic byte.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(read_container(&bad).unwrap_err(), SnapshotError::BadMagic);
        // Version skew.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert_eq!(
            read_container(&bad).unwrap_err(),
            SnapshotError::BadVersion {
                found: 99,
                expected: VERSION
            }
        );
        // Flipped payload byte: checksum catches it and names the section.
        let mut bad = bytes.clone();
        let payload_at = 8 + 4 + 4 + 4 + 8; // first payload byte
        bad[payload_at] ^= 0x01;
        assert_eq!(
            read_container(&bad).unwrap_err(),
            SnapshotError::BadChecksum { tag: "META".into() }
        );
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(
            read_container(&bad).unwrap_err(),
            SnapshotError::TrailingBytes { extra: 1 }
        );
        // Zero-length section.
        let zero = write_container(&[(*b"META", vec![])]);
        assert_eq!(
            read_container(&zero).unwrap_err(),
            SnapshotError::EmptySection { tag: "META".into() }
        );
    }

    #[test]
    fn fnv_reference_values() {
        // FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
