//! The immutable, generation-stamped store index.
//!
//! Built once per database generation by [`index_for`] and cached on the
//! database's [`IndexSlot`](lyric_oodb::IndexSlot). Two column families:
//!
//! * [`ScalarColumn`] — per `(class, scalar attribute)`: a sorted run of
//!   `(value, oid)` postings for numeric values (equality and range
//!   probes by binary search), exact-match buckets for strings and
//!   booleans, and a `nonnum` posting list of every extent member whose
//!   stored value is *not* a plain numeric scalar (missing attribute,
//!   named/function/CST value). Range probes must return `nonnum` too:
//!   under a full scan those objects make an ordered comparison *error*,
//!   and pruning them would turn an `Err` answer into `Ok`.
//! * [`BoxColumn`] — per `(class, CST attribute)`: one positional
//!   interval vector per stored constraint member (its `IntervalBox`
//!   read off in declared-variable order), packed into [`BOX_PAGE`]-sized
//!   pages with a per-page hull. A probe intersects the query window
//!   against page hulls first and only descends into surviving pages —
//!   a two-level packed R-tree.

use lyric_arith::Rational;
use lyric_constraint::Interval;
use lyric_oodb::{AttrTarget, Database, Oid, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Entries per bounding-box page. Probes test one hull per page, so the
/// page size trades hull-test savings against per-entry tests inside
/// surviving pages; 64 keeps both levels cache-friendly.
pub const BOX_PAGE: usize = 64;

/// Sorted postings for one `(class, scalar attribute)` column.
#[derive(Debug, Clone, Default)]
pub struct ScalarColumn {
    /// `(value, oid)` for members whose stored value is numeric, sorted.
    nums: Vec<(Rational, Oid)>,
    /// Exact-match buckets for string values.
    strs: BTreeMap<String, Vec<Oid>>,
    /// Exact-match buckets for boolean values.
    bools: BTreeMap<bool, Vec<Oid>>,
    /// Every member whose value is not a numeric scalar: missing
    /// attribute, string, boolean, named, function, or CST value.
    /// Ordered probes must include these (the scan would error on them).
    nonnum: Vec<Oid>,
}

/// One page of the bounding-box index: entries plus their positional hull.
#[derive(Debug, Clone)]
pub struct BoxPage {
    /// Positional hull of every entry box in the page.
    hull: Vec<Interval>,
    /// `(oid, positional box)` — one entry per stored constraint member,
    /// so a set-valued attribute contributes several entries per oid.
    entries: Vec<(Oid, Vec<Interval>)>,
}

/// The paged bounding-box index for one `(class, CST attribute)` column.
#[derive(Debug, Clone)]
pub struct BoxColumn {
    /// Declared dimension of the attribute; probes with a different
    /// window arity are refused (no pruning).
    arity: usize,
    pages: Vec<BoxPage>,
}

impl BoxColumn {
    /// Number of pages (two-level structure; exposed for tests).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }
}

/// The immutable index over one database generation.
#[derive(Debug, Clone, Default)]
pub struct StoreIndex {
    generation: u64,
    scalars: BTreeMap<(String, String), ScalarColumn>,
    boxes: BTreeMap<(String, String), BoxColumn>,
}

impl StoreIndex {
    /// Build the full index for the database's current generation:
    /// a scalar column per declared single-valued scalar attribute and a
    /// box column per declared CST attribute, over the (inheritance-
    /// aware) extent of every class.
    pub fn build(db: &Database) -> StoreIndex {
        let mut idx = StoreIndex {
            generation: db.data_generation(),
            ..StoreIndex::default()
        };
        let classes: Vec<String> = db.schema().class_names().map(str::to_string).collect();
        for class in classes {
            let extent = db.extent(&class);
            if extent.is_empty() {
                continue;
            }
            for (attr, decl) in db.schema().attributes_of(&class) {
                match &decl.target {
                    AttrTarget::Cst { vars } => {
                        let col = build_box_column(db, &extent, &attr, vars.len());
                        idx.boxes.insert((class.clone(), attr.clone()), col);
                    }
                    AttrTarget::Class { .. } if !decl.is_set => {
                        let col = build_scalar_column(db, &extent, &attr);
                        idx.scalars.insert((class.clone(), attr.clone()), col);
                    }
                    _ => {}
                }
            }
        }
        idx
    }

    /// The database generation this index was built against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Candidates for `class.attr = value` where `value` is a literal.
    /// Exact: equality on a missing or differently-valued attribute is
    /// plain `false` under a scan (never an error), so only true matches
    /// are returned. `None` when the column does not exist (no pruning).
    pub fn probe_eq(&self, class: &str, attr: &str, value: &Oid) -> Option<Vec<Oid>> {
        let col = self.scalars.get(&(class.to_string(), attr.to_string()))?;
        let mut out: Vec<Oid> = match value {
            Oid::Int(_) | Oid::Rat(_) => {
                let v = value.as_rational().expect("numeric oid");
                let start = col.nums.partition_point(|(r, _)| *r < v);
                col.nums[start..]
                    .iter()
                    .take_while(|(r, _)| *r == v)
                    .map(|(_, o)| o.clone())
                    .collect()
            }
            Oid::Str(s) => col.strs.get(s).cloned().unwrap_or_default(),
            Oid::Bool(b) => col.bools.get(b).cloned().unwrap_or_default(),
            // Only literal comparands are planned as probes.
            _ => return None,
        };
        out.sort();
        out.dedup();
        Some(out)
    }

    /// Candidates for an ordered comparison of `class.attr` against the
    /// numeric `window`: numeric postings inside the window **plus every
    /// non-numeric/missing member** (the scan errors on those, so they
    /// must survive). `None` when the column does not exist.
    pub fn probe_range(&self, class: &str, attr: &str, window: &Interval) -> Option<Vec<Oid>> {
        let col = self.scalars.get(&(class.to_string(), attr.to_string()))?;
        let start = match window.lo() {
            None => 0,
            Some((b, strict)) => {
                if strict {
                    col.nums.partition_point(|(r, _)| r <= b)
                } else {
                    col.nums.partition_point(|(r, _)| r < b)
                }
            }
        };
        let end = match window.hi() {
            None => col.nums.len(),
            Some((b, strict)) => {
                if strict {
                    col.nums.partition_point(|(r, _)| r < b)
                } else {
                    col.nums.partition_point(|(r, _)| r <= b)
                }
            }
        };
        let mut out: Vec<Oid> = col.nums[start..end.max(start)]
            .iter()
            .map(|(_, o)| o.clone())
            .collect();
        out.extend(col.nonnum.iter().cloned());
        out.sort();
        out.dedup();
        Some(out)
    }

    /// Candidates for a bounding-box probe of the CST attribute: every
    /// oid with at least one stored member whose box intersects the
    /// positional `window` on every coordinate. Objects without the
    /// attribute are *not* candidates (a path predicate on a missing
    /// attribute is plain `false`). `None` when the column does not exist
    /// or the window arity mismatches.
    pub fn probe_box(&self, class: &str, attr: &str, window: &[Interval]) -> Option<Vec<Oid>> {
        let col = self.boxes.get(&(class.to_string(), attr.to_string()))?;
        if window.len() != col.arity {
            return None;
        }
        let mut out = Vec::new();
        for page in &col.pages {
            if boxes_disjoint(&page.hull, window) {
                continue;
            }
            for (oid, ivs) in &page.entries {
                if !boxes_disjoint(ivs, window) {
                    out.push(oid.clone());
                }
            }
        }
        out.sort();
        out.dedup();
        Some(out)
    }
}

/// Positional disjointness: two boxes are disjoint iff they are disjoint
/// on some coordinate.
fn boxes_disjoint(a: &[Interval], b: &[Interval]) -> bool {
    a.iter().zip(b).any(|(x, y)| x.intersect(y).is_empty())
}

fn build_scalar_column(db: &Database, extent: &[Oid], attr: &str) -> ScalarColumn {
    let mut col = ScalarColumn::default();
    for oid in extent {
        let value = db.object(oid).and_then(|data| data.attr(attr));
        match value {
            Some(Value::Scalar(v)) => match v {
                Oid::Int(_) | Oid::Rat(_) => {
                    let r = v.as_rational().expect("numeric oid");
                    col.nums.push((r, oid.clone()));
                }
                Oid::Str(s) => {
                    col.strs.entry(s.clone()).or_default().push(oid.clone());
                    col.nonnum.push(oid.clone());
                }
                Oid::Bool(b) => {
                    col.bools.entry(*b).or_default().push(oid.clone());
                    col.nonnum.push(oid.clone());
                }
                _ => col.nonnum.push(oid.clone()),
            },
            // A set value under a scalar declaration cannot happen
            // (cardinality-checked at insert), but stay conservative.
            Some(Value::Set(_)) | None => col.nonnum.push(oid.clone()),
        }
    }
    col.nums.sort();
    for bucket in col.strs.values_mut().chain(col.bools.values_mut()) {
        bucket.sort();
        bucket.dedup();
    }
    col.nonnum.sort();
    col.nonnum.dedup();
    col
}

fn build_box_column(db: &Database, extent: &[Oid], attr: &str, arity: usize) -> BoxColumn {
    let mut entries: Vec<(Oid, Vec<Interval>)> = Vec::new();
    for oid in extent {
        let Some(value) = db.object(oid).and_then(|data| data.attr(attr)) else {
            continue; // missing attribute: prunable, no entry
        };
        for member in value.iter() {
            let ivs = match member.as_cst() {
                Some(c) if c.arity() == arity => {
                    let b = c.interval_box();
                    c.free().iter().map(|v| b.interval(v)).collect()
                }
                // Dimension mismatch or non-CST member: keep the object
                // as an always-candidate rather than risk pruning it.
                _ => vec![Interval::top(); arity],
            };
            entries.push((oid.clone(), ivs));
        }
    }
    let pages = entries
        .chunks(BOX_PAGE)
        .map(|chunk| {
            let mut hull = chunk[0].1.clone();
            for (_, ivs) in &chunk[1..] {
                for (h, iv) in hull.iter_mut().zip(ivs) {
                    *h = h.hull(iv);
                }
            }
            BoxPage {
                hull,
                entries: chunk.to_vec(),
            }
        })
        .collect();
    BoxColumn { arity, pages }
}

/// The index for the database's *current* generation: answered from the
/// database's cache slot when possible, otherwise built and cached.
pub fn index_for(db: &Database) -> Arc<StoreIndex> {
    let generation = db.data_generation();
    if let Some(cached) = db.index_slot().get(generation) {
        if let Ok(idx) = cached.downcast::<StoreIndex>() {
            return idx;
        }
    }
    let idx = Arc::new(StoreIndex::build(db));
    db.index_slot().set(
        generation,
        idx.clone() as Arc<dyn std::any::Any + Send + Sync>,
    );
    idx
}

/// Merge a sorted candidate run with the sorted novelty overlay (oids
/// written after the index build): the union, sorted and duplicate-free.
/// Novelty oids are never pruned — the index knows nothing about them.
pub fn merge_with_novelty(candidates: &[Oid], novelty: &[Oid]) -> Vec<Oid> {
    let mut out = Vec::with_capacity(candidates.len() + novelty.len());
    let (mut i, mut j) = (0, 0);
    while i < candidates.len() && j < novelty.len() {
        let next = match candidates[i].cmp(&novelty[j]) {
            std::cmp::Ordering::Less => {
                i += 1;
                candidates[i - 1].clone()
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                novelty[j - 1].clone()
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                candidates[i - 1].clone()
            }
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    for oid in candidates[i..].iter().chain(novelty[j..].iter()) {
        if out.last() != Some(oid) {
            out.push(oid.clone());
        }
    }
    out
}

/// Intersection of two sorted, duplicate-free oid runs (used to combine
/// the candidate sets of several probes on the same FROM variable).
pub fn intersect_sorted(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
    use lyric_oodb::{AttrDef, ClassDef, Schema};

    fn span(lo: i64, hi: i64) -> CstObject {
        CstObject::from_conjunction(
            vec![Var::new("w"), Var::new("z")],
            Conjunction::of([
                Atom::ge(LinExpr::var(Var::new("w")), LinExpr::from(lo)),
                Atom::le(LinExpr::var(Var::new("w")), LinExpr::from(hi)),
                Atom::ge(LinExpr::var(Var::new("z")), LinExpr::from(lo)),
                Atom::le(LinExpr::var(Var::new("z")), LinExpr::from(hi)),
            ]),
        )
    }

    fn test_db(n: i64) -> Database {
        let mut schema = Schema::new();
        schema
            .add_class(
                ClassDef::new("Item")
                    .attr(AttrDef::scalar("weight", AttrTarget::class("int")))
                    .attr(AttrDef::scalar("label", AttrTarget::class("string")))
                    .attr(AttrDef::scalar("region", AttrTarget::cst(["w", "z"]))),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        for i in 0..n {
            db.insert(
                Oid::named(format!("item_{i}")),
                "Item",
                [
                    ("weight", Value::Scalar(Oid::Int(i))),
                    ("label", Value::Scalar(Oid::str(format!("L{}", i % 3)))),
                    ("region", Value::Scalar(Oid::cst(span(10 * i, 10 * i + 5)))),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn eq_and_range_probes_match_scan() {
        let db = test_db(20);
        let idx = StoreIndex::build(&db);
        let eq = idx.probe_eq("Item", "weight", &Oid::Int(7)).unwrap();
        assert_eq!(eq, vec![Oid::named("item_7")]);
        let window = Interval::of_bounds(
            Some((Rational::from_int(3), false)),
            Some((Rational::from_int(5), true)),
        );
        let range = idx.probe_range("Item", "weight", &window).unwrap();
        assert_eq!(range, vec![Oid::named("item_3"), Oid::named("item_4")]);
        let s = idx.probe_eq("Item", "label", &Oid::str("L1")).unwrap();
        assert_eq!(s.len(), 7); // 1, 4, 7, 10, 13, 16, 19
        assert!(idx.probe_eq("Item", "nope", &Oid::Int(0)).is_none());
    }

    #[test]
    fn box_probe_prunes_disjoint_objects() {
        let db = test_db(100); // two pages
        let idx = StoreIndex::build(&db);
        let window = vec![
            Interval::of_bounds(
                Some((Rational::from_int(205), false)),
                Some((Rational::from_int(212), false)),
            ),
            Interval::top(),
        ];
        let hits = idx.probe_box("Item", "region", &window).unwrap();
        // item_20 spans [200,205], item_21 spans [210,215]: both touch.
        assert_eq!(hits, vec![Oid::named("item_20"), Oid::named("item_21")]);
        // Arity mismatch: refuse to prune.
        assert!(idx.probe_box("Item", "region", &window[..1]).is_none());
    }

    #[test]
    fn index_is_cached_per_generation() {
        let mut db = test_db(3);
        let a = index_for(&db);
        let b = index_for(&db);
        assert!(Arc::ptr_eq(&a, &b));
        db.insert(Oid::named("item_99"), "Item", [] as [(&str, Value); 0])
            .unwrap();
        let c = index_for(&db);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.generation(), db.data_generation());
        // The clone starts with a fresh slot but the same data.
        let clone = db.clone();
        let d = index_for(&clone);
        assert!(!Arc::ptr_eq(&c, &d));
        assert_eq!(d.generation(), c.generation());
    }

    #[test]
    fn novelty_merge_and_intersection() {
        let a: Vec<Oid> = [1, 3, 5].into_iter().map(Oid::Int).collect();
        let b: Vec<Oid> = [2, 3, 5, 7].into_iter().map(Oid::Int).collect();
        let merged = merge_with_novelty(&a, &b);
        assert_eq!(
            merged,
            [1, 2, 3, 5, 7]
                .into_iter()
                .map(Oid::Int)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            intersect_sorted(&a, &b),
            [3, 5].into_iter().map(Oid::Int).collect::<Vec<_>>()
        );
        assert_eq!(merge_with_novelty(&[], &[]), Vec::<Oid>::new());
    }
}
