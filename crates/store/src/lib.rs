//! `lyric-store` — the immutable, snapshot-persistent storage layer
//! behind [`lyric_oodb::Database`].
//!
//! Two halves, both dependency-free:
//!
//! * **The store index** ([`StoreIndex`], built by [`index_for`]): a
//!   sorted columnar index over `(class, attribute, scalar value)` with
//!   oid postings for equality/range probes, plus a paged bounding-box
//!   index over CST attributes (each object's `IntervalBox`, packed into
//!   hulled pages — a two-level packed R-tree) so FROM bindings can be
//!   pruned by box intersection *before* any formula is instantiated.
//!   The index is immutable and generation-stamped: it is built once per
//!   [`Database::data_generation`](lyric_oodb::Database::data_generation) and cached on the database's
//!   [`IndexSlot`](lyric_oodb::IndexSlot). Writes after a build surface
//!   through the **novelty overlay** — a sorted run of touched oids that
//!   [`merge_with_novelty`] folds into every probe result, so a stale
//!   index stays sound (it may under-prune, never over-prune).
//!
//! * **The snapshot container** ([`snapshot`]): a versioned, hand-rolled
//!   binary on-disk format — magic + version header followed by
//!   length-prefixed, FNV-1a-checksummed sections — that `lyric`'s
//!   `Database::{save_snapshot, load_snapshot}` wraps around the textual
//!   object dump. Every corruption mode (truncation, bit flips, version
//!   skew, empty sections, trailing bytes) is detected and reported as a
//!   structured [`snapshot::SnapshotError`].
//!
//! Probe soundness contract: every probe returns a *superset* of the
//! oids that could satisfy the probed predicate under full-scan
//! evaluation, including any object on which the scan would *error*
//! (e.g. an ordered comparison against a non-numeric or missing
//! attribute). Pruning the complement is therefore observationally free.

mod index;
pub mod snapshot;

pub use index::{
    index_for, intersect_sorted, merge_with_novelty, BoxColumn, BoxPage, ScalarColumn, StoreIndex,
    BOX_PAGE,
};
